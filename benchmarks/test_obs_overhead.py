"""Benchmark: telemetry overhead on the serving dispatch path must stay ≤5%.

Not a paper figure — this gates the observability layer.  Two otherwise
identical serving stacks answer the same encoded windows:

* **baseline** — the service is built on :class:`~repro.obs.NullRegistry`,
  so every counter/gauge/histogram touch is a no-op;
* **instrumented** — a real :class:`~repro.obs.Registry` plus a
  :class:`~repro.obs.FprEstimator` at its production-default sample rate,
  shadow-checking positive verdicts against the build keys — the full
  telemetry configuration a production gateway would run.

The gated measurement drives ``query_batch`` over freshly encoded
``KeyBatch`` windows — exactly the work the asyncio micro-batcher's
flusher dispatches per window — and times it with ``process_time``.  The
end-to-end asyncio serving benchmark is wall-clock dominated by adaptive
window *waits*, which makes its run-to-run timing far too noisy to gate a
5% budget; the dispatch loop is deterministic, so the **median of paired
rounds** (instrumented/baseline, interleaved so both sample the same
machine state) converges to the true overhead within a fraction of a
percent.  The gate reads the lower quartile of the paired ratios: a real
regression shifts the entire distribution past the budget, while a
contended CI session only fattens the upper tail — the cleanest quarter
of rounds stays honest.  A single end-to-end async round per stack runs
afterwards
— it produces the sample ``/metrics`` scrape artifact, exercises tracer
and span log, and reports (ungated) closed-loop throughput for the trend.

Results land in ``BENCH_obs_overhead.json`` at the repo root; the scrape
is written next to it (CI uploads both as artifacts).
"""

from __future__ import annotations

import asyncio
import json
import random
import statistics
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.metrics.benchmeta import bench_environment
from repro.hashing import vectorized as vec
from repro.obs import FprEstimator, NullRegistry, Registry, Tracer, render_text
from repro.service import MembershipService
from repro.service.aserve import AdaptiveMicroBatcher
from repro.workloads.shalla import generate_shalla_like

NUM_CLIENTS = 64
KEYS_PER_CLIENT = 100
#: Keys per client request in the async smoke round (keeps flush windows
#: size-driven: 64 concurrent 32-key requests ≫ max_batch).
CHUNK = 32
NUM_POSITIVES = 12_000
WINDOW = 256  # keys per dispatched KeyBatch, matching max_batch
ROUNDS = 30
#: Max tolerated cost of full instrumentation on the dispatch path, as a
#: fraction of the NullRegistry baseline, judged on the lower quartile of
#: the paired rounds.
MAX_OVERHEAD = 0.05

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"
SCRAPE_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_scrape.prom"


def _build_service(registry, fpr_estimator=None):
    dataset = generate_shalla_like(
        num_positives=NUM_POSITIVES, num_negatives=NUM_POSITIVES, seed=29
    )
    service = MembershipService(
        backend="bloom-dh",
        num_shards=4,
        bits_per_key=10.0,
        registry=registry,
        fpr_estimator=fpr_estimator,
    )
    service.load(dataset.positives, dataset.negatives[: NUM_POSITIVES // 2])
    half = NUM_CLIENTS * KEYS_PER_CLIENT // 2
    probe = dataset.negatives[:half] + dataset.positives[:half]
    expected = service.query_many(probe)
    return service, probe, expected


def _dispatch_round(service, probe):
    """One timed pass of the flusher's work: encode windows, dispatch each.

    Encoding happens inside the round on purpose — the micro-batcher
    encodes every window too — but fresh batches each round also keep the
    router-pass memoisation honest (nothing is reused across rounds).
    """
    batches = [
        vec.KeyBatch(probe[start : start + WINDOW])
        for start in range(0, len(probe), WINDOW)
    ]
    start = time.process_time()
    for batch in batches:
        service.query_batch(batch)
    return time.process_time() - start


async def _drive_clients(dispatch, probe):
    async def client(index):
        answers = []
        slice_ = probe[index * KEYS_PER_CLIENT : (index + 1) * KEYS_PER_CLIENT]
        for start in range(0, len(slice_), CHUNK):
            answers.extend(await dispatch(slice_[start : start + CHUNK]))
        return answers

    start = time.perf_counter()
    per_client = await asyncio.gather(*[client(i) for i in range(NUM_CLIENTS)])
    elapsed = time.perf_counter() - start
    return [answer for group in per_client for answer in group], elapsed


def _run_async(service, probe, tracer=None):
    async def scenario():
        async with AdaptiveMicroBatcher(
            service, max_batch=WINDOW, max_wait_ms=2.0, tracer=tracer
        ) as front:
            return await _drive_clients(front.query_many, probe)

    return asyncio.run(scenario())


@pytest.fixture(scope="module")
def overhead_report():
    baseline_service, probe, expected = _build_service(NullRegistry())

    registry = Registry()
    estimator = FprEstimator(rng=random.Random(11))  # production-default rate
    instrumented_service, _, _ = _build_service(registry, fpr_estimator=estimator)
    spans = []
    tracer = Tracer(
        registry=registry,
        sample_rate=0.01,
        span_log=spans.append,
        rng=random.Random(13),
    )

    # Unmeasured warmup: first-touch costs (lazy instrument children, numpy
    # dispatch tables, allocator growth) belong to neither measured mode.
    _dispatch_round(baseline_service, probe)
    _dispatch_round(instrumented_service, probe)

    ratios = []
    for _ in range(ROUNDS):
        # ABBA within a round cancels linear machine-state drift (frequency
        # scaling, a co-tenant ramping up) out of the paired ratio.
        base_first = _dispatch_round(baseline_service, probe)
        instr_first = _dispatch_round(instrumented_service, probe)
        instr_second = _dispatch_round(instrumented_service, probe)
        base_second = _dispatch_round(baseline_service, probe)
        ratios.append(
            (instr_first + instr_second) / (base_first + base_second)
        )
    quartiles = statistics.quantiles(ratios, n=4)

    # One end-to-end async round per stack: artifact + trend numbers only.
    answers, base_wall = _run_async(baseline_service, probe)
    assert answers == expected, "baseline verdicts diverged"
    answers, instr_wall = _run_async(instrumented_service, probe, tracer=tracer)
    assert answers == expected, "instrumented verdicts diverged"

    scrape = render_text(registry)
    SCRAPE_PATH.write_text(scrape)
    overall = estimator.overall(instrumented_service.stats().shards)
    total_keys = len(probe)
    report = {
        "benchmark": "obs_overhead",
        **bench_environment(),
        "backend": "bloom-dh",
        "window_keys": WINDOW,
        "rounds": ROUNDS,
        "p25_overhead_pct": round((quartiles[0] - 1.0) * 100, 2),
        "median_overhead_pct": round((quartiles[1] - 1.0) * 100, 2),
        "p75_overhead_pct": round((quartiles[2] - 1.0) * 100, 2),
        "max_overhead_pct": MAX_OVERHEAD * 100,
        "fpr_sample_rate": estimator.sample_rate,
        "fpr_sampled": overall.sampled if overall is not None else 0,
        "async_baseline_qps": round(total_keys / base_wall),
        "async_instrumented_qps": round(total_keys / instr_wall),
        "sampled_spans": len(spans),
        "scrape_families": sum(
            1 for line in scrape.splitlines() if line.startswith("# TYPE")
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_overhead_within_budget(overhead_report):
    print(
        f"\noverhead p25={overhead_report['p25_overhead_pct']}%  "
        f"median={overhead_report['median_overhead_pct']}%  "
        f"p75={overhead_report['p75_overhead_pct']}%  "
        f"async qps base={overhead_report['async_baseline_qps']:,} "
        f"instr={overhead_report['async_instrumented_qps']:,}  "
        f"families={overhead_report['scrape_families']}"
    )
    assert overhead_report["p25_overhead_pct"] <= MAX_OVERHEAD * 100, (
        f"telemetry costs {overhead_report['p25_overhead_pct']}% on the "
        f"dispatch path even in the cleanest quartile of rounds "
        f"(budget {MAX_OVERHEAD * 100}%)"
    )


def test_instrumented_run_produced_telemetry(overhead_report):
    # The cheap run still has to be a *real* one: the scrape must carry the
    # serving families and the estimator must have shadow-sampled verdicts.
    scrape = SCRAPE_PATH.read_text()
    for family in (
        "repro_service_queries_total",
        "repro_batch_flushes_total",
        "repro_shard_queries_total",
        "repro_stage_seconds",
    ):
        assert f"# TYPE {family}" in scrape, family
    assert overhead_report["fpr_sampled"] > 0


def test_report_written(overhead_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["benchmark"] == "obs_overhead"
    assert recorded["p25_overhead_pct"] == overhead_report["p25_overhead_pct"]
    assert recorded["rounds"] == ROUNDS
