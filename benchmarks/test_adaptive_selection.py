"""Benchmark: workload-adaptive backend selection vs every static choice.

Not a paper figure — this gates the adaptive serving tier.  The four
built-in streaming scenarios (:func:`repro.scenarios.builtin_scenarios`)
are replayed against four service configurations: one adaptive service
(xor everywhere at load — the best *analytic* static choice at this
budget — plus a live FPR estimator and a migration policy over
bloom/xor/habf), and a static single-backend service per candidate.
Every replay goes through the asyncio micro-batcher with concurrent
clients, and the harness scores it against ground truth it holds itself.

The headline gate: on total FPR-cost the adaptive service must beat
**every** static configuration in at least two of the four scenarios.
The honest scenario (``key_churn``: no shard-locality to exploit) is
where adaptation is allowed to lose — the gate checks it never loses by
much more than the estimator's sampling overhead costs.

``BENCH_adaptive.json`` records per-scenario FPR-cost, throughput,
migrations and final per-shard backends for every configuration, plus
the replay seed and environment, so the whole table is reproducible.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.metrics.benchmeta import bench_environment
from repro.obs import FprEstimator, Registry
from repro.scenarios import builtin_scenarios, run_scenario
from repro.service import MembershipService
from repro.service.adaptive import AdaptivePolicy, BackendCandidate, BackendScorer

SEED = 1
NUM_SHARDS = 8
BITS_PER_KEY = 10.0
SCALE = 1.0
STATIC_BACKENDS = ("bloom", "xor", "habf")
#: The adaptive service must beat every static config in this many scenarios.
REQUIRED_WINS = 2

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

pytestmark = pytest.mark.scenario


def _candidates():
    return [
        BackendCandidate(name, {"bits_per_key": BITS_PER_KEY})
        for name in STATIC_BACKENDS
    ]


def _adaptive_service():
    return MembershipService(
        backend="xor",
        num_shards=NUM_SHARDS,
        bits_per_key=BITS_PER_KEY,
        registry=Registry(),
        fpr_estimator=FprEstimator(sample_rate=1.0, rng=random.Random(SEED)),
        adaptive_policy=AdaptivePolicy(
            _candidates(), scorer=BackendScorer(min_sampled=120)
        ),
    )


def _static_service(backend):
    return MembershipService(
        backend=backend,
        num_shards=NUM_SHARDS,
        bits_per_key=BITS_PER_KEY,
        registry=Registry(),
    )


@pytest.fixture(scope="module")
def report():
    """Replay every scenario under every configuration; write the report."""
    rows = []
    for scenario in builtin_scenarios(seed=SEED, num_shards=NUM_SHARDS, scale=SCALE):
        configs = {"adaptive": _adaptive_service()}
        configs.update(
            {backend: _static_service(backend) for backend in STATIC_BACKENDS}
        )
        for config_name, service in configs.items():
            result = run_scenario(service, scenario)
            rows.append({"config": config_name, **result.to_dict()})
    full = {
        "benchmark": "adaptive_backend_selection",
        "environment": bench_environment(
            seed=SEED,
            num_shards=NUM_SHARDS,
            bits_per_key=BITS_PER_KEY,
            scale=SCALE,
            candidates=list(STATIC_BACKENDS),
        ),
        "results": rows,
    }
    RESULT_PATH.write_text(json.dumps(full, indent=2) + "\n")
    return full


def _by_scenario(report):
    table = {}
    for row in report["results"]:
        table.setdefault(row["scenario"], {})[row["config"]] = row
    return table


def test_adaptive_beats_every_static_config_in_enough_scenarios(report):
    table = _by_scenario(report)
    assert len(table) == 4
    wins = [
        name
        for name, configs in table.items()
        if all(
            configs["adaptive"]["fpr_cost"] < configs[backend]["fpr_cost"]
            for backend in STATIC_BACKENDS
        )
    ]
    assert len(wins) >= REQUIRED_WINS, (
        f"adaptive won only {wins!r} out of {sorted(table)} "
        f"(needs {REQUIRED_WINS})"
    )


def test_no_configuration_ever_returns_a_false_negative(report):
    for row in report["results"]:
        assert row["false_negatives"] == 0, (
            f"{row['config']} leaked false negatives in {row['scenario']}"
        )


def test_adaptive_migrations_happen_and_land_where_claimed(report):
    table = _by_scenario(report)
    adversarial = table["adversarial_negatives"]["adaptive"]
    assert adversarial["migrations"] > 0
    # Migrations target the flooded half of the shard space; the clean half
    # keeps the analytic best (xor) because unseen misses give a
    # negative-aware backend nothing to suppress.
    assert "habf" in adversarial["shard_backends"][: NUM_SHARDS // 2]
    assert adversarial["shard_backends"][NUM_SHARDS // 2 :] == (
        ["xor"] * (NUM_SHARDS // 2)
    )
    for backend in STATIC_BACKENDS:
        assert table["adversarial_negatives"][backend]["migrations"] == 0


def test_report_records_seeds_and_environment(report):
    environment = report["environment"]
    assert environment["seed"] == SEED
    assert environment["num_shards"] == NUM_SHARDS
    assert environment["python"]
    for row in report["results"]:
        assert row["seed"] == SEED
        assert row["throughput_qps"] > 0
    assert json.loads(RESULT_PATH.read_text())["results"]
