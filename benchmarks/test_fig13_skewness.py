"""Benchmark: regenerate Fig. 13 — weighted FPR as cost skewness increases."""

from __future__ import annotations

from repro.experiments import fig13_skewness


def test_fig13_varying_skewness(benchmark, quick_config):
    result = benchmark.pedantic(
        fig13_skewness.run, args=(quick_config,), iterations=1, rounds=1
    )
    # Every skewness point was measured for every algorithm.
    skews = sorted({row["skewness"] for row in result.rows})
    assert skews == sorted(fig13_skewness.SKEWNESS_SWEEP)

    habf_by_skew = {
        row["skewness"]: row["weighted_fpr"]
        for row in result.rows
        if row["algorithm"] == "HABF"
    }
    bf_by_skew = {
        row["skewness"]: row["weighted_fpr"]
        for row in result.rows
        if row["algorithm"] == "BF"
    }
    # The paper's claim: HABF tracks or beats BF at every skewness, and its
    # advantage at high skew is at least as large as at the uniform point.
    for skew in skews:
        assert habf_by_skew[skew] <= bf_by_skew[skew] + 1e-9
    high_skew_gap = bf_by_skew[3.0] - habf_by_skew[3.0]
    uniform_gap = bf_by_skew[0.0] - habf_by_skew[0.0]
    assert high_skew_gap >= 0.0
    assert uniform_gap >= 0.0
