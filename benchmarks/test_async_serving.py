"""Benchmark: adaptive micro-batching vs unbatched dispatch, 64 async clients.

Not a paper figure — this gates the serving front-end added on top of the
batch engine.  64 concurrent *scalar* clients (each awaiting its answer
before sending the next key — the closed-loop shape network callers
produce) drive the same loaded ``MembershipService`` two ways:

* **unbatched dispatch** — every key is its own engine call: the client
  awaits ``run_in_executor(service.query, key)``, which is what an asyncio
  front-end without a coalescing layer would do;
* **micro-batched** — the same awaits go through
  :class:`~repro.service.aserve.AdaptiveMicroBatcher`, which coalesces the
  in-flight keys of all 64 clients into shared ``query_batch`` windows.

Both modes dispatch on a single worker thread, so the measured difference
is batching, not parallelism.  The micro-batched mode must win by at least
``REQUIRED_SPEEDUP``; the measured numbers land in
``BENCH_async_serving.json`` at the repo root so successive PRs can track
the trend (the README table quotes a recent run).
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.metrics.benchmeta import bench_environment
from repro.service import MembershipService
from repro.service.aserve import AdaptiveMicroBatcher
from repro.workloads.shalla import generate_shalla_like

NUM_CLIENTS = 64
KEYS_PER_CLIENT = 100
NUM_POSITIVES = 12_000
#: Micro-batching must beat per-key dispatch by at least this factor under
#: 64 concurrent scalar clients (measured margin is far larger; 3x keeps the
#: gate robust on noisy CI).
REQUIRED_SPEEDUP = 3.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_async_serving.json"


@pytest.fixture(scope="module")
def serving_setup():
    dataset = generate_shalla_like(
        num_positives=NUM_POSITIVES, num_negatives=NUM_POSITIVES, seed=29
    )
    # bloom-dh is the serving-path backend shape: every probe derives from
    # one base pass, so a window costs one column pass shared across shards.
    service = MembershipService(backend="bloom-dh", num_shards=4, bits_per_key=10.0)
    service.load(dataset.positives, dataset.negatives[: NUM_POSITIVES // 2])
    half = NUM_CLIENTS * KEYS_PER_CLIENT // 2
    probe = dataset.negatives[:half] + dataset.positives[:half]
    assert len(probe) == NUM_CLIENTS * KEYS_PER_CLIENT
    expected = service.query_many(probe)
    return service, probe, expected


async def _drive_clients(dispatch, probe):
    """64 closed-loop clients, each awaiting its slice one key at a time."""

    async def client(index):
        answers = []
        for key in probe[index * KEYS_PER_CLIENT : (index + 1) * KEYS_PER_CLIENT]:
            answers.append(await dispatch(key))
        return answers

    start = time.perf_counter()
    per_client = await asyncio.gather(*[client(i) for i in range(NUM_CLIENTS)])
    elapsed = time.perf_counter() - start
    answers = [answer for group in per_client for answer in group]
    return answers, elapsed


def _run_unbatched(service, probe):
    async def scenario():
        loop = asyncio.get_running_loop()
        with ThreadPoolExecutor(max_workers=1) as executor:
            return await _drive_clients(
                lambda key: loop.run_in_executor(executor, service.query, key), probe
            )

    return asyncio.run(scenario())


def _run_batched(service, probe):
    async def scenario():
        async with AdaptiveMicroBatcher(
            service, max_batch=256, max_wait_ms=2.0
        ) as front:
            answers, elapsed = await _drive_clients(front.query, probe)
            return answers, elapsed, front.batching_stats()

    return asyncio.run(scenario())


@pytest.fixture(scope="module")
def serving_report(serving_setup):
    service, probe, expected = serving_setup
    # Best-of-two per mode: one scheduler stall on a shared runner must not
    # decide the gated ratio.
    unbatched_seconds = batched_seconds = float("inf")
    stats = None
    for _ in range(2):
        answers, elapsed = _run_unbatched(service, probe)
        assert answers == expected, "unbatched dispatch verdicts diverged"
        unbatched_seconds = min(unbatched_seconds, elapsed)

        answers, elapsed, stats = _run_batched(service, probe)
        assert answers == expected, "micro-batched verdicts diverged"
        batched_seconds = min(batched_seconds, elapsed)

    total_keys = len(probe)
    report = {
        "benchmark": "async_serving",
        **bench_environment(),
        "clients": NUM_CLIENTS,
        "keys_per_client": KEYS_PER_CLIENT,
        "backend": "bloom-dh",
        "unbatched_qps": round(total_keys / unbatched_seconds),
        "batched_qps": round(total_keys / batched_seconds),
        "speedup": round(unbatched_seconds / batched_seconds, 2),
        "batch_size_p50": stats.batch_size.p50,
        "batch_size_p99": stats.batch_size.p99,
        "window_wait_p99_ms": round(stats.wait.p99 * 1e3, 3),
        "flushes": stats.flushes,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_micro_batching_speedup(serving_report):
    print(
        f"\nunbatched={serving_report['unbatched_qps']:,} q/s  "
        f"batched={serving_report['batched_qps']:,} q/s  "
        f"speedup={serving_report['speedup']}x  "
        f"batch p50={serving_report['batch_size_p50']:.0f} keys  "
        f"window p99={serving_report['window_wait_p99_ms']}ms"
    )
    assert serving_report["speedup"] >= REQUIRED_SPEEDUP, (
        f"micro-batching only {serving_report['speedup']}x over unbatched "
        f"dispatch (required {REQUIRED_SPEEDUP}x)"
    )


def test_windows_actually_coalesce(serving_report):
    # 6400 keys through far fewer engine dispatches, at real batch sizes.
    assert serving_report["flushes"] < NUM_CLIENTS * KEYS_PER_CLIENT / 4
    assert serving_report["batch_size_p50"] >= 8


def test_report_written(serving_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["clients"] == NUM_CLIENTS
    assert recorded["speedup"] == serving_report["speedup"]
