"""Benchmark: regenerate Fig. 9 (HABF parameter study: ∆, k, cell size)."""

from __future__ import annotations

from repro.experiments import fig09_parameters


def test_fig09_parameter_study(benchmark, quick_config):
    result = benchmark.pedantic(
        fig09_parameters.run, args=(quick_config,), iterations=1, rounds=1
    )
    delta_rows = {row["delta"]: row["weighted_fpr"] for row in result.filter_rows(panel="a (vary delta)")}
    k_rows = {row["k"]: row["weighted_fpr"] for row in result.filter_rows(panel="a (vary k)")}

    # Paper finding 1: the recommended ∆ = 0.25 beats the extreme splits.
    assert delta_rows[0.25] <= delta_rows[0.9]
    assert delta_rows[0.25] <= delta_rows[0.1] + 1e-9

    # Paper finding 2: k = 3 is no worse than the extremes of the sweep.
    assert k_rows[3] <= k_rows[8]

    # Paper finding 3: every (cell size, space) combination was measured.
    cell_rows = result.filter_rows(panel="b (vary cell size)")
    assert {row["cell_size"] for row in cell_rows} == {3, 4, 5}
