"""Shared configuration for the pytest-benchmark targets.

Every benchmark regenerates one of the paper's figures at the quick
configuration (smaller key counts, fewer space points) so the whole suite
finishes in a few minutes on a laptop; run the ``main()`` entry points of the
``repro.experiments.figXX_*`` modules for the full-scale series.

The benchmarks intentionally wrap the figure runners (not micro-operations):
the timing pytest-benchmark reports is the cost of regenerating the figure,
and the assertions check the *shape* of the result against the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import QUICK_CONFIG


@pytest.fixture(scope="session")
def quick_config():
    """The small configuration shared by every benchmark target."""
    return QUICK_CONFIG
