"""Benchmark: regenerate Fig. 8 (measured FPR vs the Eq. 19 theoretical bound)."""

from __future__ import annotations

from repro.experiments import fig08_bounds


def test_fig08_bound_verification(benchmark, quick_config):
    result = benchmark.pedantic(
        fig08_bounds.run, args=(quick_config,), iterations=1, rounds=1
    )
    # The paper's claim: the theoretical upper bound always exceeds the
    # measured FPR, for every k and every bits-per-key setting.
    assert result.rows, "Fig. 8 produced no data points"
    assert all(row["bound_holds"] for row in result.rows)
    # The bound must also be non-trivial (strictly below 100% FPR).
    assert all(row["theoretical_bound"] < 1.0 for row in result.rows)
