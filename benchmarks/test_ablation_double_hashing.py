"""Ablation: independent Table II hashes vs Kirsch–Mitzenmacher double hashing.

DESIGN.md lists this as a design choice worth ablating: f-HABF replaces the
22 independent hash functions with simulated hashes derived from two base
values.  The ablation checks the trade the paper describes — double hashing is
cheaper to evaluate while its accuracy stays in the same regime.
"""

from __future__ import annotations

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.hashing.double_hashing import DoubleHashFamily
from repro.metrics.fpr import false_positive_rate
from repro.metrics.timing import time_construction_best_of


def _build_pair(dataset, bits_per_key=10.0):
    total_bits = int(bits_per_key * dataset.num_positives)
    k = optimal_num_hashes(bits_per_key)

    def build_independent():
        bloom = BloomFilter(num_bits=total_bits, num_hashes=k)
        bloom.add_all(dataset.positives)
        return bloom

    def build_double():
        family = DoubleHashFamily(size=k, primitive="xxhash", seed=3)
        bloom = BloomFilter(num_bits=total_bits, num_hashes=k, family=family)
        bloom.add_all(dataset.positives)
        return bloom

    return build_independent, build_double


def test_ablation_double_hashing(benchmark, quick_config):
    dataset = quick_config.shalla_dataset()
    build_independent, build_double = _build_pair(dataset)

    def run():
        # Best-of-three: a single-shot ratio flakes when one scheduler stall
        # lands inside either ms-scale build.
        independent, t_independent = time_construction_best_of(
            build_independent, dataset.num_positives
        )
        double, t_double = time_construction_best_of(build_double, dataset.num_positives)
        return {
            "independent_fpr": false_positive_rate(independent, dataset.negatives),
            "double_fpr": false_positive_rate(double, dataset.negatives),
            "independent_ns": t_independent.ns_per_key,
            "double_ns": t_double.ns_per_key,
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    # Double hashing must be at least as fast to build with...
    assert results["double_ns"] <= results["independent_ns"]
    # ...while staying in the same accuracy regime (within 3x or 1 percentage
    # point, whichever is looser — the paper cites possible degradation [31]).
    assert results["double_fpr"] <= max(3 * results["independent_fpr"],
                                        results["independent_fpr"] + 0.01)
