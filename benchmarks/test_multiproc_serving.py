"""Benchmark: replica-pool serving vs single-process dispatch, 64 clients.

Not a paper figure — this gates the multi-process serving tier.  The same
64 concurrent closed-loop scalar clients from the async-serving benchmark
drive one loaded filter store two ways, both through
:class:`~repro.service.aserve.AdaptiveMicroBatcher`:

* **single-process** — the batcher dispatches windows to a
  :class:`~repro.service.server.MembershipService` in-process, one window in
  flight at a time (the pre-multiproc serving shape);
* **replica pool** — the batcher dispatches to a
  :class:`~repro.service.multiproc.ReplicaPool` of ``NUM_REPLICAS`` worker
  processes, keeping ``NUM_REPLICAS`` windows in flight; every replica
  serves from the *same* shared-memory arena.

With ≥ ``NUM_REPLICAS`` cores the pool must win by ``REQUIRED_SPEEDUP``;
on smaller machines (this container has 1) the numbers are still recorded
honestly in ``BENCH_multiproc_serving.json`` but the throughput gate is
skipped — CI's multi-core runners enforce it.  The memory side of the
claim is asserted everywhere Linux is available: the arena mapping must
show ~zero private bytes per replica, i.e. R replicas pay for one copy of
the filter bytes.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.metrics.benchmeta import bench_environment
from repro.service import MembershipService
from repro.service.aserve import AdaptiveMicroBatcher
from repro.service.multiproc import ReplicaPool, shared_mapping_memory
from repro.workloads.shalla import generate_shalla_like

NUM_CLIENTS = 64
KEYS_PER_CLIENT = 100
NUM_POSITIVES = 50_000
NUM_REPLICAS = 4
#: With one core per replica the pool must at least double single-process
#: closed-loop throughput (the measured margin on 4+ cores is larger; 2x
#: keeps the gate robust on shared CI runners).
REQUIRED_SPEEDUP = 2.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multiproc_serving.json"

BATCHER_OPTS = {"max_batch": 256, "max_wait_ms": 2.0}


@pytest.fixture(scope="module")
def dataset():
    data = generate_shalla_like(
        num_positives=NUM_POSITIVES, num_negatives=NUM_POSITIVES, seed=31
    )
    half = NUM_CLIENTS * KEYS_PER_CLIENT // 2
    probe = data.negatives[:half] + data.positives[:half]
    assert len(probe) == NUM_CLIENTS * KEYS_PER_CLIENT
    return data, probe


async def _drive_clients(dispatch, probe):
    async def client(index):
        answers = []
        for key in probe[index * KEYS_PER_CLIENT : (index + 1) * KEYS_PER_CLIENT]:
            answers.append(await dispatch(key))
        return answers

    start = time.perf_counter()
    per_client = await asyncio.gather(*[client(i) for i in range(NUM_CLIENTS)])
    elapsed = time.perf_counter() - start
    answers = [answer for group in per_client for answer in group]
    return answers, elapsed


def _closed_loop_qps(engine, probe, rounds: int = 2):
    """Best-of-N closed-loop run through a fresh batcher; returns seconds."""

    async def scenario():
        async with AdaptiveMicroBatcher(engine, **BATCHER_OPTS) as front:
            return await _drive_clients(front.query, probe)

    best = float("inf")
    answers = None
    for _ in range(rounds):
        answers, elapsed = asyncio.run(scenario())
        best = min(best, elapsed)
    return answers, best


@pytest.fixture(scope="module")
def multiproc_report(dataset):
    data, probe = dataset
    negatives = data.negatives[: NUM_POSITIVES // 2]

    service = MembershipService(backend="bloom-dh", num_shards=4, bits_per_key=10.0)
    service.load(data.positives, negatives)
    expected = service.query_many(probe)
    single_answers, single_seconds = _closed_loop_qps(service, probe)
    assert single_answers == expected, "single-process verdicts diverged"

    report = {
        "benchmark": "multiproc_serving",
        **bench_environment(),
        "clients": NUM_CLIENTS,
        "keys_per_client": KEYS_PER_CLIENT,
        "backend": "bloom-dh",
        "replicas": NUM_REPLICAS,
        "single_process_qps": round(len(probe) / single_seconds),
    }

    with ReplicaPool(
        replicas=NUM_REPLICAS, backend="bloom-dh", num_shards=4, bits_per_key=10.0
    ) as pool:
        pool.load(data.positives, negatives)
        pool_answers, pool_seconds = _closed_loop_qps(pool, probe)
        assert pool_answers == expected, "replica-pool verdicts diverged"

        filter_bytes = pool._builder.snapshot.store.size_in_bytes()
        arena = pool.arena
        report.update(
            {
                "replica_pool_qps": round(len(probe) / pool_seconds),
                "speedup": round(single_seconds / pool_seconds, 2),
                "filter_bytes": filter_bytes,
                "arena_frame_bytes": arena.frame_bytes,
            }
        )
        mappings = [
            shared_mapping_memory(pid, arena.name) for pid in pool.replica_pids
        ]
        if all(mapping is not None for mapping in mappings):
            report["arena_private_bytes_per_replica"] = [
                mapping["private"] for mapping in mappings
            ]
            report["arena_shared_bytes_per_replica"] = [
                mapping["shared"] for mapping in mappings
            ]

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_replica_pool_speedup(multiproc_report):
    print(
        f"\nsingle={multiproc_report['single_process_qps']:,} q/s  "
        f"pool({NUM_REPLICAS})={multiproc_report['replica_pool_qps']:,} q/s  "
        f"speedup={multiproc_report['speedup']}x  "
        f"cpus={multiproc_report['cpu_count']}"
    )
    cpus = multiproc_report["cpu_count"] or 1
    if cpus < NUM_REPLICAS:
        pytest.skip(
            f"{cpus} CPUs cannot run {NUM_REPLICAS} replicas in parallel; "
            "numbers recorded, gate enforced on multi-core CI"
        )
    assert multiproc_report["speedup"] >= REQUIRED_SPEEDUP, (
        f"replica pool only {multiproc_report['speedup']}x over single-process "
        f"dispatch (required {REQUIRED_SPEEDUP}x at {NUM_REPLICAS} replicas)"
    )


def test_filter_bytes_are_shared(multiproc_report):
    """Per-replica private bytes in the arena mapping must be ~nothing.

    The kernel's smaps accounting is the direct statement of the design
    goal: every page a replica privately dirtied in the filter mapping is a
    page the shared-memory tier failed to share.  Allow one page per
    replica for noise; the filter payload itself must be orders beyond it.
    """
    private = multiproc_report.get("arena_private_bytes_per_replica")
    if private is None:
        pytest.skip("smaps accounting unavailable (not Linux)")
    page = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
    assert multiproc_report["filter_bytes"] > 10 * page
    for replica_private in private:
        assert replica_private <= page, (
            f"replica privately holds {replica_private} bytes of the arena "
            "mapping; shard bytes are supposed to be shared"
        )


def test_report_written(multiproc_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["replicas"] == NUM_REPLICAS
    assert recorded["cpu_count"] == os.cpu_count()
    assert recorded["speedup"] == multiproc_report["speedup"]
