"""Benchmark: regenerate Fig. 15 — construction memory footprint."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # this figure includes the learned baselines

from repro.experiments import fig15_memory


def test_fig15_construction_memory(benchmark, quick_config):
    result = benchmark.pedantic(
        fig15_memory.run, args=(quick_config,), iterations=1, rounds=1
    )
    for dataset in ("shalla", "ycsb"):
        rows = {row["algorithm"]: row for row in result.filter_rows(dataset=dataset)}

        # The paper's ordering: BF needs the least construction memory, HABF a
        # constant factor more (negative keys + V and Γ indexes), f-HABF less
        # than HABF (no Γ), and the learned filters the most (training data).
        assert rows["BF"]["peak_construction_mb"] <= rows["HABF"]["peak_construction_mb"]
        assert rows["f-HABF"]["peak_construction_mb"] <= rows["HABF"]["peak_construction_mb"]
        for learned in ("LBF", "SLBF", "Ada-BF"):
            assert (
                rows[learned]["peak_construction_mb"]
                > rows["BF"]["peak_construction_mb"]
            )
