"""Benchmark: regenerate Fig. 12(a)/(b) — construction time per key."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # this figure includes the learned baselines

from repro.experiments import fig12_time


def test_fig12_construction_and_query_time(benchmark, quick_config):
    result = benchmark.pedantic(
        fig12_time.run, args=(quick_config,), iterations=1, rounds=1
    )
    for dataset in ("shalla", "ycsb"):
        rows = {row["algorithm"]: row for row in result.filter_rows(dataset=dataset)}

        # Construction-time ordering the paper reports: BF is the cheapest
        # hash-based build, HABF pays a constant factor over BF, and the
        # learned filters are the most expensive because of model training.
        assert rows["BF"]["construction_ns_per_key"] <= rows["HABF"]["construction_ns_per_key"]
        for learned in ("LBF", "SLBF", "Ada-BF"):
            assert (
                rows[learned]["construction_ns_per_key"]
                > rows["BF"]["construction_ns_per_key"]
            )

    # f-HABF's fast construction stays within a small factor of HABF (in the
    # paper it is ~7x cheaper; in pure Python the gap is smaller).  Since the
    # bulk-build engine, a quick-config build finishes in tens of
    # milliseconds, so the ratio is re-measured best-of-three rather than
    # read from the figure's single-shot timings, where one scheduler stall
    # can flip it.
    from repro.experiments.registry import build_filter
    from repro.metrics.timing import time_construction_best_of

    dataset = quick_config.shalla_dataset()
    total_bits = 10 * dataset.num_positives

    def best_seconds(algorithm):
        _, timing = time_construction_best_of(
            lambda: build_filter(
                algorithm, dataset, total_bits, costs=dataset.costs, seed=quick_config.seed
            ),
            num_keys=dataset.num_positives,
        )
        return timing.total_seconds

    assert best_seconds("f-HABF") <= 1.2 * best_seconds("HABF")
