"""Micro-benchmark: snapshot-delta size and follower apply latency.

Two gates guard the replication tier:

* **delta size**: with exactly one of 16 shards dirty, the encoded delta
  frame must be at most 1/8 the size of the encoded full-snapshot frame —
  the whole point of shipping diffs is that replication bandwidth tracks
  the size of the *change*, not the size of the key set;
* **end-to-end wire sync**: a follower connected to a
  :class:`BuilderPublisher` over real TCP must converge on a published
  1-dirty-shard rebuild, and its measured apply latency (decode → swap)
  is recorded for trajectory tracking.

Results land in ``BENCH_replication.json`` at the repo root (uploaded by
the matrixed CI bench job) so successive PRs can track the trajectory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.metrics.benchmeta import bench_environment
from repro.metrics.timing import Stopwatch
from repro.obs import Registry
from repro.service.replication import (
    BuilderPublisher,
    FollowerClient,
    apply_delta,
    decode_delta,
    encode_delta,
    full_snapshot,
    make_delta,
)
from repro.service.server import MembershipService
from repro.service.shards import ShardRouter, ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

NUM_KEYS = 40_000
NUM_SHARDS = 16
BACKEND = "bloom"
BITS_PER_KEY = 12.0
#: A 1-dirty-shard delta must be at most this fraction of the full frame.
REQUIRED_SIZE_RATIO = 1 / 8

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_replication.json"


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=NUM_KEYS, num_negatives=100, seed=89)


def _key_for_shard(router: ShardRouter, shard: int, tag: str) -> str:
    for attempt in range(1_000_000):
        key = f"{tag}-{attempt}"
        if router.shard_of(key) == shard:
            return key
    raise AssertionError("no key found for shard")  # pragma: no cover


@pytest.fixture(scope="module")
def replication_report(dataset):
    service = MembershipService(
        backend=BACKEND,
        num_shards=NUM_SHARDS,
        bits_per_key=BITS_PER_KEY,
        registry=Registry(),
    )
    service.load(dataset.positives)
    base = service.snapshot
    router = ShardRouter(NUM_SHARDS, seed=0)
    fresh = _key_for_shard(router, 0, "repl-dirty")

    # -- delta size: one dirty shard of 16 vs the full frame -------------- #
    successor, rebuilt, _ = ShardedFilterStore.rebuild_from(
        base.store,
        dataset.positives + [fresh],
        backend=BACKEND,
        bits_per_key=BITS_PER_KEY,
    )
    assert rebuilt == [0]
    delta = make_delta(base, successor)
    delta_bytes = len(encode_delta(delta))
    full_bytes = len(encode_delta(full_snapshot(successor, 2)))

    # -- local apply latency (no wire): decode + assemble + swap ---------- #
    encoded = encode_delta(delta)
    apply_best = float("inf")
    for _ in range(3):
        with Stopwatch() as watch:
            apply_delta(base, decode_delta(encoded))
        apply_best = min(apply_best, watch.seconds)

    # -- end-to-end: publisher ships the rebuild to a TCP follower -------- #
    follower = MembershipService(
        backend=BACKEND,
        num_shards=NUM_SHARDS,
        bits_per_key=BITS_PER_KEY,
        registry=Registry(),
    )
    registry = Registry()
    with BuilderPublisher(service, registry=Registry()) as publisher:
        host, port = publisher.start()
        publisher.publish()
        with FollowerClient(follower, host, port, registry=registry) as client:
            synced_initial = client.wait_for_generation(1, timeout=60)
            with Stopwatch() as wire_watch:
                publisher.publish_rebuild(dataset.positives + [fresh])
                synced_delta = client.wait_for_generation(2, timeout=60)
            assert synced_initial and synced_delta
            assert follower.query(fresh) is True
            apply_hist = client._apply_seconds
            wire_applies = int(apply_hist.count)
            wire_apply_seconds = (
                apply_hist.sum / apply_hist.count if apply_hist.count else None
            )

    report = {
        "benchmark": "replication",
        **bench_environment(),
        "cpu_count": os.cpu_count(),
        "num_keys": NUM_KEYS,
        "num_shards": NUM_SHARDS,
        "backend": BACKEND,
        "delta": {
            "dirty_shards": 1,
            "delta_bytes": delta_bytes,
            "full_bytes": full_bytes,
            "size_ratio": round(delta_bytes / full_bytes, 4),
            "required_ratio": round(REQUIRED_SIZE_RATIO, 4),
        },
        "apply": {
            "local_apply_seconds": round(apply_best, 6),
            "wire_frames_applied": wire_applies,
            "wire_mean_apply_seconds": (
                round(wire_apply_seconds, 6) if wire_apply_seconds else None
            ),
            "publish_to_synced_seconds": round(wire_watch.seconds, 4),
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_one_dirty_shard_delta_size_gate(replication_report):
    entry = replication_report["delta"]
    print(
        f"\ndelta size: 1 dirty shard of {NUM_SHARDS} = {entry['delta_bytes']}B  "
        f"full = {entry['full_bytes']}B  ratio = {entry['size_ratio']}"
    )
    assert entry["size_ratio"] <= REQUIRED_SIZE_RATIO, (
        f"1-dirty-shard delta is {entry['size_ratio']:.3f} of the full frame "
        f"(required <= {REQUIRED_SIZE_RATIO:.3f})"
    )


def test_follower_apply_latency_recorded(replication_report):
    entry = replication_report["apply"]
    print(
        f"\nfollower apply: local={entry['local_apply_seconds']}s  "
        f"wire-mean={entry['wire_mean_apply_seconds']}s over "
        f"{entry['wire_frames_applied']} frames  "
        f"publish-to-synced={entry['publish_to_synced_seconds']}s"
    )
    assert entry["wire_frames_applied"] >= 2  # initial full + the delta
    assert entry["wire_mean_apply_seconds"] is not None
    assert entry["local_apply_seconds"] > 0


def test_report_written(replication_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["benchmark"] == "replication"
    assert recorded["delta"]["size_ratio"] <= REQUIRED_SIZE_RATIO
    assert recorded["apply"]["wire_mean_apply_seconds"] is not None
