"""Benchmark: the LSM-tree read-path substrate (the paper's motivating example).

Not a paper figure, but the end-to-end effect the introduction promises: with
miss frequency and per-level cost information available, a HABF filter policy
saves at least as much simulated I/O as a standard Bloom filter policy of the
same bits-per-key.
"""

from __future__ import annotations

import random

from repro.kvstore import BloomFilterPolicy, HABFFilterPolicy, LSMTree, NoFilterPolicy
from repro.workloads.zipf import assign_zipf_costs


def _workload(seed=29, stored_count=4000, missing_count=3000):
    stored = [f"row:{i:07d}" for i in range(0, stored_count * 2, 2)]
    missing = [f"row:{i:07d}" for i in range(1, missing_count * 2, 2)]
    frequency = assign_zipf_costs(missing, skewness=1.1, seed=seed)
    rng = random.Random(seed)
    weights = [frequency[key] for key in missing]
    queries = rng.choices(missing, weights=weights, k=4000) + rng.choices(stored, k=2000)
    rng.shuffle(queries)
    return stored, missing, frequency, queries


def _run_policy(policy, stored, missing, frequency, queries):
    tree = LSMTree(
        memtable_capacity=512,
        filter_policy=policy,
        negative_hints=missing,
        negative_costs=frequency,
    )
    for key in stored:
        tree.put(key, 1)
    tree.flush()
    for key in queries:
        tree.get(key)
    return tree.stats


def test_lsm_read_path_io_savings(benchmark):
    stored, missing, frequency, queries = _workload()

    def run():
        return {
            "none": _run_policy(NoFilterPolicy(), stored, missing, frequency, queries),
            "bloom": _run_policy(BloomFilterPolicy(10), stored, missing, frequency, queries),
            "habf": _run_policy(HABFFilterPolicy(10), stored, missing, frequency, queries),
        }

    stats = benchmark.pedantic(run, iterations=1, rounds=1)
    assert stats["bloom"].wasted_io_cost < stats["none"].wasted_io_cost
    assert stats["habf"].wasted_io_cost <= stats["bloom"].wasted_io_cost
    # Correctness of the store itself is independent of the policy.
    assert stats["habf"].hits == stats["none"].hits
