"""Benchmark: regenerate Fig. 10 (weighted FPR vs space, uniform costs)."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # this figure includes the learned baselines

from repro.experiments import fig10_uniform


def test_fig10_uniform_costs(benchmark, quick_config):
    result = benchmark.pedantic(
        fig10_uniform.run, args=(quick_config,), iterations=1, rounds=1
    )
    # Shape check: HABF beats the standard Bloom filter at every space point
    # on both datasets (the paper's headline non-learned comparison).
    for panel in ("a (shalla, non-learned)", "c (ycsb, non-learned)"):
        habf = result.series("weighted_fpr", panel=panel, algorithm="HABF")
        bf = result.series("weighted_fpr", panel=panel, algorithm="BF")
        assert habf and bf
        assert all(h <= b for h, b in zip(habf, bf))

    # Zero false negatives for every method at every point.
    assert all(row["fnr"] == 0.0 for row in result.rows)

    # Weighted FPR decreases (weakly) as space grows for HABF.
    for panel in ("a (shalla, non-learned)", "c (ycsb, non-learned)"):
        series = result.series("weighted_fpr", panel=panel, algorithm="HABF")
        assert series[-1] <= series[0]
