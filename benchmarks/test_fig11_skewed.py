"""Benchmark: regenerate Fig. 11 (weighted FPR vs space, Zipf(1.0) costs)."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # this figure includes the learned baselines

from repro.experiments import fig11_skewed


def test_fig11_skewed_costs(benchmark, quick_config):
    result = benchmark.pedantic(
        fig11_skewed.run, args=(quick_config,), iterations=1, rounds=1
    )
    # The paper's claim: under skewed costs HABF has the smallest weighted FPR
    # of the non-learned methods at every space setting.
    for panel in ("a (shalla, non-learned)", "c (ycsb, non-learned)"):
        rows = result.filter_rows(panel=panel)
        assert rows
        for space in sorted({row["space_mb"] for row in rows}):
            at_space = [row for row in rows if row["space_mb"] == space]
            habf = next(row for row in at_space if row["algorithm"] == "HABF")
            minimum = min(row["weighted_fpr"] for row in at_space)
            assert habf["weighted_fpr"] <= minimum + 1e-9

    # WBF participates in the skewed non-learned comparison, as in the paper.
    assert result.filter_rows(panel="a (shalla, non-learned)", algorithm="WBF")
