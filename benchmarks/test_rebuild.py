"""Micro-benchmark: parallel shard builds and incremental rebuilds.

Two gates guard the rebuild pipeline introduced with the sharded store's
``workers=N`` builds and the service's fingerprint-diffed rebuilds:

* **parallel**: building the shards of one store on a process pool must be
  at least 2x faster than the sequential build of the same store (the gate
  is skipped below 4 cores, where the 2x floor is unreachable — 2 cores cap
  the ideal speedup at exactly 2.0x; the JSON still records the
  measurement, and CI's 4-vCPU runners enforce the gate);
* **incremental**: a rebuild that dirties exactly one shard must be at
  least 4x faster than a full (``incremental=False``) rebuild — the whole
  point of per-shard fingerprints is that rebuild latency tracks the size
  of the *change*, not the size of the key set.

Results land in ``BENCH_rebuild.json`` at the repo root (uploaded by the
matrixed CI bench job) so successive PRs can track the trajectory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.metrics.benchmeta import bench_environment
from repro.metrics.timing import Stopwatch
from repro.service import codec
from repro.service.server import MembershipService
from repro.service.shards import ShardRouter, ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

NUM_KEYS = 40_000
NUM_NEGATIVES = 10_000
NUM_SHARDS = 16
BACKEND = "habf"
BITS_PER_KEY = 10.0
PARALLEL_WORKERS = min(os.cpu_count() or 1, 8)
#: Process-pool builds must beat the sequential build by this factor.
REQUIRED_PARALLEL_SPEEDUP = 2.0
#: A 1-dirty-shard rebuild must beat a full rebuild by this factor
#: (measured ~6-7x at 16 shards; 4x keeps the gate robust on noisy CI).
REQUIRED_INCREMENTAL_SPEEDUP = 4.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rebuild.json"


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(
        num_positives=NUM_KEYS, num_negatives=NUM_NEGATIVES, seed=83
    )


def _best_of(action, rounds: int = 2) -> float:
    best = float("inf")
    for _ in range(rounds):
        with Stopwatch() as watch:
            action()
        best = min(best, watch.seconds)
    return best


def _key_for_shard(router: ShardRouter, shard: int, tag: str) -> str:
    for attempt in range(1_000_000):
        key = f"{tag}-{attempt}"
        if router.shard_of(key) == shard:
            return key
    raise AssertionError("no key found for shard")  # pragma: no cover


@pytest.fixture(scope="module")
def rebuild_report(dataset):
    build_kwargs = dict(
        negatives=dataset.negatives,
        num_shards=NUM_SHARDS,
        backend=BACKEND,
        bits_per_key=BITS_PER_KEY,
    )

    # -- parallel: same store, sequential vs process-pool construction ---- #
    stores = {}

    def sequential():
        stores["sequential"] = ShardedFilterStore.build(dataset.positives, **build_kwargs)

    def parallel():
        stores["parallel"] = ShardedFilterStore.build(
            dataset.positives,
            workers=PARALLEL_WORKERS,
            worker_mode="process",
            **build_kwargs,
        )

    sequential_seconds = _best_of(sequential)
    parallel_seconds = _best_of(parallel)
    # The speedup must not come from building something different: process
    # workers hand shards back as codec frames, and the assembled store must
    # serialize byte-for-byte like the sequential build.
    assert codec.dumps(stores["parallel"]) == codec.dumps(stores["sequential"])

    # -- incremental: full rebuild vs one dirty shard --------------------- #
    service = MembershipService(
        backend=BACKEND, num_shards=NUM_SHARDS, bits_per_key=BITS_PER_KEY
    )
    service.load(dataset.positives, dataset.negatives)
    full_seconds = _best_of(
        lambda: service.rebuild(
            dataset.positives, dataset.negatives, incremental=False
        )
    )
    router = ShardRouter(NUM_SHARDS, seed=0)
    before = service.stats()
    incremental_seconds = float("inf")
    for round_number in range(3):
        # Each round adds a fresh key routed to shard 0 (and drops the
        # previous round's), so exactly one shard is dirty every time.
        fresh = _key_for_shard(router, 0, f"dirty-{round_number}")
        with Stopwatch() as watch:
            service.rebuild(dataset.positives + [fresh], dataset.negatives)
        incremental_seconds = min(incremental_seconds, watch.seconds)
    after = service.stats()
    assert after.shards_rebuilt - before.shards_rebuilt == 3
    assert after.shards_skipped - before.shards_skipped == 3 * (NUM_SHARDS - 1)

    report = {
        "benchmark": "rebuild",
        **bench_environment(),
        "cpu_count": os.cpu_count(),
        "num_keys": NUM_KEYS,
        "num_shards": NUM_SHARDS,
        "backend": BACKEND,
        "parallel": {
            "workers": PARALLEL_WORKERS,
            "sequential_seconds": round(sequential_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(sequential_seconds / parallel_seconds, 2),
            "gated": PARALLEL_WORKERS >= 2,
        },
        "incremental": {
            "full_rebuild_seconds": round(full_seconds, 4),
            "one_dirty_shard_seconds": round(incremental_seconds, 4),
            "speedup": round(full_seconds / incremental_seconds, 2),
            "shards_rebuilt_per_round": 1,
            "shards_skipped_per_round": NUM_SHARDS - 1,
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_parallel_build_speedup(rebuild_report):
    entry = rebuild_report["parallel"]
    print(
        f"\nparallel build: sequential={entry['sequential_seconds']}s  "
        f"workers={entry['workers']}: {entry['parallel_seconds']}s  "
        f"speedup={entry['speedup']}x"
    )
    if (os.cpu_count() or 1) < 4:
        # Below 4 cores the 2x floor is unreachable or has no headroom over
        # pool overhead (2 cores cap the ideal speedup at exactly 2.0x).
        # CI's 4-vCPU runners enforce the gate; the measurement above is
        # still recorded in BENCH_rebuild.json either way.
        pytest.skip(
            f"{os.cpu_count() or 1} cores: the {REQUIRED_PARALLEL_SPEEDUP}x "
            "parallel gate needs >= 4 (enforced on CI)"
        )
    assert entry["speedup"] >= REQUIRED_PARALLEL_SPEEDUP, (
        f"parallel shard build only {entry['speedup']}x over sequential "
        f"(required {REQUIRED_PARALLEL_SPEEDUP}x with {entry['workers']} workers)"
    )


def test_incremental_rebuild_speedup(rebuild_report):
    entry = rebuild_report["incremental"]
    print(
        f"\nincremental rebuild: full={entry['full_rebuild_seconds']}s  "
        f"one-dirty-shard={entry['one_dirty_shard_seconds']}s  "
        f"speedup={entry['speedup']}x"
    )
    assert entry["speedup"] >= REQUIRED_INCREMENTAL_SPEEDUP, (
        f"1-dirty-shard rebuild only {entry['speedup']}x over a full rebuild "
        f"(required {REQUIRED_INCREMENTAL_SPEEDUP}x)"
    )


def test_report_written(rebuild_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["benchmark"] == "rebuild"
    assert recorded["num_shards"] == NUM_SHARDS
    assert recorded["incremental"]["speedup"] >= REQUIRED_INCREMENTAL_SPEEDUP
