"""Benchmark: regenerate Fig. 14 — BF hash-implementation study vs HABF."""

from __future__ import annotations

from repro.experiments import fig14_hash_impls


def test_fig14_hash_implementations(benchmark, quick_config):
    result = benchmark.pedantic(
        fig14_hash_impls.run, args=(quick_config,), iterations=1, rounds=1
    )
    # Every BF variant and HABF measured on both panels.
    assert {row["algorithm"] for row in result.rows} == set(fig14_hash_impls.ALGORITHMS)
    assert {row["panel"] for row in result.rows} == {"a (uniform)", "b (skewed)"}

    # The paper's point: swapping in "better" hash functions does not make the
    # Bloom filter cost-aware — under skewed costs HABF beats every variant.
    skewed = result.filter_rows(panel="b (skewed)")
    for space in sorted({row["space_mb"] for row in skewed}):
        at_space = {row["algorithm"]: row for row in skewed if row["space_mb"] == space}
        for variant in ("BF", "BF(City64)", "BF(XXH128)"):
            assert at_space["HABF"]["weighted_fpr"] <= at_space[variant]["weighted_fpr"] + 1e-9

    # And the three BF variants track each other closely under uniform costs
    # (no variant is an order of magnitude better than another).
    uniform = result.filter_rows(panel="a (uniform)")
    for space in sorted({row["space_mb"] for row in uniform}):
        values = [
            row["weighted_fpr"]
            for row in uniform
            if row["space_mb"] == space and row["algorithm"] != "HABF"
        ]
        assert max(values) <= 10 * max(min(values), 1e-4)
