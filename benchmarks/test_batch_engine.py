"""Micro-benchmark: the batch-membership engine vs the scalar query loop.

Not a paper figure — this starts the perf trajectory of the vectorized
engine itself.  It measures queries/sec for ``contains_many`` against the
equivalent ``for key: contains(key)`` loop on the two hot-path filters
(BloomFilter and HABF) at 10^5 query keys, asserts the engine's ≥3×
advantage, and records the numbers in ``BENCH_batch_engine.json`` at the
repo root so successive PRs can track the trend.

The filters are built once on a smaller positive set (construction is
scalar TPJO work, not what this benchmark measures) and queried with a
mixed positive/negative workload, the shape a blacklist gateway sees.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.metrics.benchmeta import bench_environment
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.habf import HABF
from repro.core.params import HABFParams
from repro.workloads.shalla import generate_shalla_like

NUM_QUERY_KEYS = 100_000
NUM_POSITIVES = 20_000
BITS_PER_KEY = 10.0
#: The engine must beat the scalar loop by at least this factor (the
#: measured margin is far larger; 3x keeps the gate robust on noisy CI).
REQUIRED_SPEEDUP = 3.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_engine.json"


def _workload():
    dataset = generate_shalla_like(
        num_positives=NUM_POSITIVES, num_negatives=NUM_QUERY_KEYS, seed=77
    )
    probe = dataset.negatives[: NUM_QUERY_KEYS - NUM_POSITIVES] + dataset.positives
    assert len(probe) == NUM_QUERY_KEYS
    return dataset, probe


def _measure(filter_obj, probe, scalar_sample=10_000):
    """Best-of-three timings; the scalar loop is timed on a sample and scaled.

    Timing the full 10^5-key scalar loop would only add ~10x the same
    measurement; a 10^4 sample keeps the suite quick while the batch side
    runs the full 10^5 keys it is being scored on.  Best-of-three (rather
    than a mean) keeps a single scheduler stall on a busy runner from
    deciding the gated ratio.
    """
    contains = filter_obj.contains
    scalar_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for key in probe[:scalar_sample]:
            contains(key)
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    scalar_qps = scalar_sample / scalar_seconds

    batch_seconds = float("inf")
    answers = None
    for _ in range(3):
        start = time.perf_counter()
        answers = filter_obj.contains_many(probe)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)
    batch_qps = len(probe) / batch_seconds

    # The speedup is only meaningful if both paths agree.
    sample_scalar = [contains(key) for key in probe[:2_000]]
    assert answers[:2_000] == sample_scalar, "batch and scalar answers diverged"
    return {
        "scalar_qps": round(scalar_qps),
        "batch_qps": round(batch_qps),
        "speedup": round(batch_qps / scalar_qps, 2),
        "num_query_keys": len(probe),
    }


@pytest.fixture(scope="module")
def engine_report():
    dataset, probe = _workload()

    bloom = BloomFilter(
        num_bits=int(BITS_PER_KEY * NUM_POSITIVES),
        num_hashes=optimal_num_hashes(BITS_PER_KEY),
    )
    bloom.add_all(dataset.positives)

    params = HABFParams.from_bits_per_key(BITS_PER_KEY, NUM_POSITIVES, seed=7)
    habf = HABF.build(
        dataset.positives, dataset.negatives[:NUM_POSITIVES], params=params
    )

    report = {
        "benchmark": "batch_engine",
        **bench_environment(),
        "filters": {
            "bloom": _measure(bloom, probe),
            "habf": _measure(habf, probe),
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.parametrize("name", ["bloom", "habf"])
def test_batch_engine_speedup(engine_report, name):
    entry = engine_report["filters"][name]
    print(
        f"\n{name}: scalar={entry['scalar_qps']:,} q/s  "
        f"batch={entry['batch_qps']:,} q/s  speedup={entry['speedup']}x"
    )
    assert entry["speedup"] >= REQUIRED_SPEEDUP, (
        f"{name} batch path only {entry['speedup']}x over scalar "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def test_report_written(engine_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["filters"].keys() == {"bloom", "habf"}
    for entry in recorded["filters"].values():
        assert entry["num_query_keys"] == NUM_QUERY_KEYS
