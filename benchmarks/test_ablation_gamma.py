"""Ablation: conflict detection (Γ index) enabled vs disabled.

The Γ index protects already-negative keys from being turned into new false
positives by an adjustment; f-HABF disables it for speed.  This ablation
isolates that single switch (same Table II family for both builds, unlike the
full f-HABF which also changes the hashing strategy) and checks the accuracy /
construction-time trade the paper describes in Section III-G.
"""

from __future__ import annotations

from repro.core.habf import HABF
from repro.core.params import HABFParams
from repro.metrics.fpr import false_positive_rate
from repro.metrics.timing import time_construction_best_of


def test_ablation_gamma_index(benchmark, quick_config):
    dataset = quick_config.shalla_dataset()
    params = HABFParams.from_bits_per_key(7.0, dataset.num_positives, seed=17)

    def run():
        # Best-of-three: engine builds are ms-scale at this size, where one
        # scheduler stall would dominate a single-shot timing ratio.
        with_gamma, t_with = time_construction_best_of(
            lambda: HABF.build(
                dataset.positives, dataset.negatives, params=params, use_gamma=True
            ),
            dataset.num_positives,
        )
        without_gamma, t_without = time_construction_best_of(
            lambda: HABF.build(
                dataset.positives, dataset.negatives, params=params, use_gamma=False
            ),
            dataset.num_positives,
        )
        return {
            "fpr_with_gamma": false_positive_rate(with_gamma, dataset.negatives),
            "fpr_without_gamma": false_positive_rate(without_gamma, dataset.negatives),
            "ns_with_gamma": t_with.ns_per_key,
            "ns_without_gamma": t_without.ns_per_key,
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    # Conflict detection may only help accuracy (it prevents regressions).
    assert results["fpr_with_gamma"] <= results["fpr_without_gamma"] + 1e-9
    # And disabling it must not make construction slower.
    assert results["ns_without_gamma"] <= 1.2 * results["ns_with_gamma"]
