"""Benchmark: regenerate Fig. 12(c)/(d) — query latency per key."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # this figure includes the learned baselines

import random

from repro.experiments.config import QUICK_CONFIG
from repro.experiments.registry import build_filter
from repro.metrics.timing import time_queries

#: Algorithms whose query paths the paper compares in Fig. 12(c)/(d).
QUERY_ALGORITHMS = ("HABF", "f-HABF", "BF", "Xor", "LBF")


def _prepare(dataset, bits_per_key=10.0, seed=7):
    total_bits = int(bits_per_key * dataset.num_positives)
    filters = {
        name: build_filter(name, dataset, total_bits, costs=dataset.costs, seed=seed)
        for name in QUERY_ALGORITHMS
    }
    rng = random.Random(seed)
    sample = rng.sample(dataset.negatives, 300) + rng.sample(dataset.positives, 300)
    return filters, sample


def test_fig12_query_latency(benchmark):
    dataset = QUICK_CONFIG.shalla_dataset()
    filters, sample = _prepare(dataset)

    def measure():
        return {
            name: time_queries(filt, sample).ns_per_key for name, filt in filters.items()
        }

    latencies = benchmark.pedantic(measure, iterations=1, rounds=1)

    # The paper's ordering: learned filters are slower per query than the
    # hash-based filters.  (In the paper's C++ implementation the gap is
    # >500x; in pure Python the Bloom probes themselves cost tens of
    # microseconds, which compresses the ratio — see EXPERIMENTS.md.)
    assert latencies["LBF"] > latencies["BF"]
    # HABF's two-round query costs more than a single-round BF query but stays
    # within a small constant factor (the paper reports ~5x).
    assert latencies["HABF"] <= 20 * latencies["BF"]
    assert latencies["f-HABF"] <= latencies["HABF"] * 1.5
