"""Benchmark: disk-tier serving vs all-in-RAM, 4x over the cache budget.

Not a paper figure — this gates the disk-backed shard store.  A store of
``NUM_SHARDS`` deliberately wide Bloom shards (fixed ``SHARD_BITS`` each,
so the byte footprint is set by construction, not by key count) is served
two ways over the same batched probe stream:

* **all-in-RAM** — the plain :class:`ShardedFilterStore`, every shard
  decoded and resident (the pre-disk-tier shape);
* **disk tier** — a :class:`DiskShardStore` whose decoded-shard cache
  budget fits ``HOT_SHARDS`` of the ``NUM_SHARDS`` frames, so at least 4x
  the budget lives on disk.

The stream is skewed the way the paper's workloads are: ``1 - 1/SCAN_EVERY``
of the batches draw keys from a hot working set that routes entirely to
``HOT_SHARDS`` shards (a working set the cache can hold), while every
``SCAN_EVERY``-th batch sweeps keys from *all* shards — forcing cold
zero-copy decodes and evictions, so the budget is genuinely exercised
rather than merely configured.

Three claims are asserted, and recorded in ``BENCH_disk_store.json``:

* **verdicts** — bit-for-bit equal to the RAM store across the stream,
  scans included;
* **memory** — the cache never exceeds its budget, and on Linux the
  process' anonymous RSS growth across the disk-serving phase (total RSS
  growth minus what the kernel attributes to the page-file mapping) stays
  within the budget plus slack: serving 4x the budget must not sneak the
  store into the heap;
* **latency** — best-of-``ROUNDS`` p99 batch latency within
  ``REQUIRED_P99_RATIO`` of the RAM store (micro-noise floored by
  ``P99_FLOOR_SECONDS``): hot-set batches answer from the cache at RAM
  speed, and the scan batches' cold reads sit beyond the 99th percentile.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.bloom import BloomFilter
from repro.metrics.benchmeta import bench_environment
from repro.obs import Registry
from repro.service.diskstore import DiskShardStore
from repro.service.multiproc import shared_mapping_memory
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

NUM_SHARDS = 10
#: Bits per shard: 2 MiB of filter payload each, 20 MiB store total.
SHARD_BITS = 2 * (1 << 20) * 8
#: Shards the hot working set routes to — the cache budget fits exactly
#: these, so the store is 5x the budget (acceptance bar is >= 4x).
HOT_SHARDS = 2
NUM_KEYS = 4_000
BATCH = 64
BATCHES_PER_ROUND = 220
#: Every Nth batch is a full-keyspace sweep instead of a hot-set batch.
SCAN_EVERY = 200
ROUNDS = 3
BUDGET_FRACTION = 4
REQUIRED_P99_RATIO = 2.0
#: Timer-noise floor: ratios are only enforced above this absolute p99.
P99_FLOOR_SECONDS = 1e-3
#: Anonymous-heap slack for allocator overhead, probe lists, and stats —
#: deliberately smaller than the store, so materializing the shards in the
#: heap (the failure the disk tier exists to prevent) trips the assert.
RSS_SLACK_BYTES = 12 << 20

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_disk_store.json"


class WideBloomPolicy:
    """Fixed-width Bloom shards: footprint chosen by the benchmark, not n."""

    name = "wide-bloom"

    def create_filter(self, keys, negatives=(), costs=None):
        filt = BloomFilter(num_bits=SHARD_BITS, num_hashes=2)
        for key in keys:
            filt.add(key)
        return filt


def _batches(store, all_keys):
    """The deterministic probe stream: hot-set batches plus periodic scans."""
    hot_pool = [
        key for key in all_keys if store.shard_of(key) < HOT_SHARDS
    ]
    assert len(hot_pool) >= BATCH, "hot working set too small to batch"
    batches = []
    cursors = {"hot": 0, "scan": 0}
    for index in range(BATCHES_PER_ROUND):
        if (index + 1) % SCAN_EVERY == 0:
            pool, cursor = all_keys, "scan"
        else:
            pool, cursor = hot_pool, "hot"
        start = cursors[cursor]
        batch = [pool[(start + offset) % len(pool)] for offset in range(BATCH)]
        cursors[cursor] = (start + BATCH) % len(pool)
        batches.append(batch)
    return batches


def _p99(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def _drive(store, batches):
    """One round of batched queries; returns (verdicts, p99 batch seconds)."""
    verdicts = []
    latencies = []
    for batch in batches:
        begin = time.perf_counter()
        verdicts.extend(store.query_many(batch))
        latencies.append(time.perf_counter() - begin)
    return verdicts, _p99(latencies)


def _best_of(store, batches, rounds=ROUNDS):
    verdicts, best = _drive(store, batches)
    for _ in range(rounds - 1):
        verdicts, p99 = _drive(store, batches)
        best = min(best, p99)
    return verdicts, best


def _vm_rss_bytes():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


@pytest.fixture(scope="module")
def disk_report(tmp_path_factory):
    data = generate_shalla_like(
        num_positives=NUM_KEYS, num_negatives=NUM_KEYS, seed=47
    )
    ram = ShardedFilterStore.build(
        data.positives, num_shards=NUM_SHARDS, backend=WideBloomPolicy()
    )
    batches = _batches(ram, data.positives + data.negatives)
    expected, ram_p99 = _best_of(ram, batches)

    store_bytes = ram.size_in_bytes()
    from repro.service import codec as _codec

    largest_frame = max(len(_codec.dumps(filt)) for filt in ram.filters)
    budget = HOT_SHARDS * largest_frame + 4096
    assert store_bytes >= BUDGET_FRACTION * budget, (
        "benchmark geometry regressed: the store no longer dwarfs the budget"
    )
    path = tmp_path_factory.mktemp("bench") / "store"
    disk = DiskShardStore.create(
        path, ram, cache_budget=budget, registry=Registry()
    )
    report = {
        "benchmark": "disk_store",
        **bench_environment(),
        "shards": NUM_SHARDS,
        "hot_shards": HOT_SHARDS,
        "keys": 2 * NUM_KEYS,
        "batches_per_round": BATCHES_PER_ROUND,
        "scan_every": SCAN_EVERY,
        "store_bytes": store_bytes,
        "mapped_bytes": disk.mapped_bytes,
        "cache_budget_bytes": budget,
        "budget_fraction": BUDGET_FRACTION,
        "ram_p99_batch_seconds": ram_p99,
    }
    try:
        pages_name = disk.pages_file.name
        rss_before = _vm_rss_bytes()
        mapping_before = shared_mapping_memory(os.getpid(), pages_name)
        verdicts, disk_p99 = _best_of(disk.serving_store(), batches)
        rss_after = _vm_rss_bytes()
        mapping_after = shared_mapping_memory(os.getpid(), pages_name)

        assert verdicts == expected, "disk-tier verdicts diverged from RAM"
        stats = disk.cache_stats()
        report.update(
            {
                "disk_p99_batch_seconds": disk_p99,
                "p99_ratio": round(disk_p99 / ram_p99, 3) if ram_p99 else None,
                "cache": stats,
            }
        )
        assert stats["bytes"] <= budget, (
            f"cache holds {stats['bytes']} bytes over its {budget}-byte budget"
        )
        assert stats["evictions"] > 0, (
            "the scan batches must evict; the budget was never exercised"
        )
        if rss_before is not None and mapping_before is not None:
            mapping_growth = mapping_after["rss"] - mapping_before["rss"]
            anon_growth = (rss_after - rss_before) - mapping_growth
            report.update(
                {
                    "rss_growth_bytes": rss_after - rss_before,
                    "pages_mapping_rss_bytes": mapping_after["rss"],
                    "anon_rss_growth_bytes": anon_growth,
                }
            )
    finally:
        disk.close()

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_store_exceeds_budget_fourfold(disk_report):
    assert disk_report["store_bytes"] >= BUDGET_FRACTION * disk_report["cache_budget_bytes"]
    assert disk_report["mapped_bytes"] >= BUDGET_FRACTION * disk_report["cache_budget_bytes"]


def test_resident_memory_is_bounded(disk_report):
    """Serving 4x the budget must not materialize the store in the heap."""
    anon_growth = disk_report.get("anon_rss_growth_bytes")
    if anon_growth is None:
        pytest.skip("RSS accounting unavailable (not Linux)")
    bound = disk_report["cache_budget_bytes"] + RSS_SLACK_BYTES
    assert anon_growth <= bound, (
        f"anonymous RSS grew {anon_growth} bytes serving the disk tier "
        f"(budget {disk_report['cache_budget_bytes']} + slack {RSS_SLACK_BYTES}); "
        "shard bytes are supposed to stay file-backed"
    )


def test_p99_within_ratio_of_ram(disk_report):
    ram_p99 = disk_report["ram_p99_batch_seconds"]
    disk_p99 = disk_report["disk_p99_batch_seconds"]
    print(
        f"\nram p99={ram_p99 * 1e3:.3f} ms  disk p99={disk_p99 * 1e3:.3f} ms  "
        f"ratio={disk_report['p99_ratio']}  "
        f"cache={disk_report['cache']}"
    )
    assert disk_p99 <= max(REQUIRED_P99_RATIO * ram_p99, P99_FLOOR_SECONDS), (
        f"disk-tier p99 {disk_p99 * 1e3:.3f} ms exceeds "
        f"{REQUIRED_P99_RATIO}x the RAM store's {ram_p99 * 1e3:.3f} ms"
    )


def test_report_written(disk_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["benchmark"] == "disk_store"
    assert recorded["cpu_count"] == os.cpu_count()
    assert recorded["store_bytes"] == disk_report["store_bytes"]
    assert recorded["cache"]["evictions"] == disk_report["cache"]["evictions"]
