"""Benchmark: membership-service batch vs scalar throughput and snapshot load.

Not a paper figure — this measures the serving subsystem added on top of the
reproduction.  Three numbers matter:

* batch throughput (``query_many``) must not lose to scalar throughput
  (``query``): batches amortise locking, timing and dispatch, though the
  margin is modest in pure Python because hash evaluation dominates;
* p99 per-key latency must stay within an order of magnitude of p50
  (no pathological shard);
* loading a codec snapshot must be much faster than rebuilding the filters,
  which is the whole point of persisting one.
"""

from __future__ import annotations

import time

from repro.metrics.timing import latency_percentiles
from repro.service import MembershipService, codec
from repro.workloads.shalla import generate_shalla_like


def _service_and_probe(num_keys=4000, num_shards=4):
    dataset = generate_shalla_like(num_positives=num_keys, num_negatives=num_keys, seed=17)
    service = MembershipService(backend="habf", num_shards=num_shards, bits_per_key=10.0)
    service.load(dataset.positives, dataset.negatives)
    probe = dataset.negatives[:2000] + dataset.positives[:2000]
    return service, probe


def test_service_batch_vs_scalar_throughput(benchmark):
    service, probe = _service_and_probe()

    def run():
        # Best of three passes per mode: a single scheduler stall on a shared
        # CI runner must not decide the comparison.
        scalar_seconds = batch_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for key in probe:
                service.query(key)
            scalar_seconds = min(scalar_seconds, time.perf_counter() - start)

            start = time.perf_counter()
            for offset in range(0, len(probe), 500):
                service.query_many(probe[offset : offset + 500])
            batch_seconds = min(batch_seconds, time.perf_counter() - start)
        return scalar_seconds, batch_seconds

    scalar_seconds, batch_seconds = benchmark.pedantic(run, iterations=1, rounds=1)
    scalar_qps = len(probe) / scalar_seconds
    batch_qps = len(probe) / batch_seconds
    print(f"\nscalar={scalar_qps:,.0f} keys/s  batch={batch_qps:,.0f} keys/s")
    # Hash evaluation dominates in pure Python, so require "no worse than
    # scalar modulo noise" rather than a fixed speedup.
    assert batch_qps > scalar_qps * 0.9, "batching must not regress throughput"

    stats = service.stats()
    assert stats.latency is not None
    latency = stats.latency.scaled(1e6)
    print(f"per-key latency: p50={latency.p50:.2f}us p95={latency.p95:.2f}us p99={latency.p99:.2f}us")
    assert stats.latency.p50 <= stats.latency.p95 <= stats.latency.p99


def test_snapshot_load_is_faster_than_rebuild(benchmark):
    service, probe = _service_and_probe()
    dataset_keys = service.snapshot.num_keys
    frame = codec.dumps(service.snapshot.store)

    def run():
        start = time.perf_counter()
        store = codec.loads(frame)
        load_seconds = time.perf_counter() - start
        return store, load_seconds

    store, load_seconds = benchmark.pedantic(run, iterations=1, rounds=1)
    assert store.query_many(probe) == service.snapshot.store.query_many(probe)

    start = time.perf_counter()
    dataset = generate_shalla_like(num_positives=dataset_keys, num_negatives=dataset_keys, seed=17)
    rebuild_service = MembershipService(backend="habf", num_shards=4, bits_per_key=10.0)
    rebuild_service.load(dataset.positives, dataset.negatives)
    rebuild_seconds = time.perf_counter() - start
    print(
        f"\nsnapshot: {len(frame)} bytes, load={load_seconds * 1e3:.2f}ms, "
        f"rebuild={rebuild_seconds * 1e3:.2f}ms"
    )
    assert load_seconds < rebuild_seconds, "codec load must beat reconstruction"


def test_per_batch_latency_distribution_is_sane():
    service, probe = _service_and_probe()
    samples = []
    for offset in range(0, len(probe), 200):
        batch = probe[offset : offset + 200]
        start = time.perf_counter()
        service.query_many(batch)
        samples.append((time.perf_counter() - start) / len(batch))
    summary = latency_percentiles(samples)
    assert summary.p50 <= summary.p95 <= summary.p99
    assert summary.p99 < summary.p50 * 1000, "p99 per-key latency is pathological"
