"""Ablation: cost-descending vs cost-ascending collision-queue ordering.

TPJO processes collision keys in descending cost order because the
HashExpressor fills up as optimisation proceeds (Section III-D: "we first turn
to optimize the negative keys with high cost").  This ablation rebuilds HABF
with the queue deliberately reversed (by inverting the cost signal handed to
the optimiser) and checks that the paper's ordering is indeed no worse on the
metric that matters, the weighted FPR under skewed costs.
"""

from __future__ import annotations

from repro.core.habf import HABF
from repro.core.params import HABFParams
from repro.metrics.fpr import weighted_fpr
from repro.workloads.zipf import assign_zipf_costs


def test_ablation_collision_queue_order(benchmark, quick_config):
    dataset = quick_config.shalla_dataset()
    costs = assign_zipf_costs(dataset.negatives, skewness=1.5, seed=13)
    # A deliberately tight budget so that optimisation capacity is scarce and
    # the processing order actually matters.
    params = HABFParams.from_bits_per_key(6.0, dataset.num_positives, seed=13)

    def run():
        cost_first = HABF.build(
            dataset.positives, dataset.negatives, costs=costs, params=params
        )
        inverted_costs = {key: 1.0 / max(value, 1e-9) for key, value in costs.items()}
        cost_last = HABF.build(
            dataset.positives, dataset.negatives, costs=inverted_costs, params=params
        )
        return {
            "cost_first": weighted_fpr(cost_first, dataset.negatives, costs),
            "cost_last": weighted_fpr(cost_last, dataset.negatives, costs),
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    # Processing expensive collisions first must not be worse than processing
    # them last; under a tight budget it should be strictly better.
    assert results["cost_first"] <= results["cost_last"] + 1e-9
