"""Micro-benchmark: bulk construction (``add_many``) vs the scalar build loop.

The companion of ``test_batch_engine.py`` for the *build* side of the
engine: PR 2 vectorized every query, this measures the keys/sec of the
``add_many`` bulk-build path against the equivalent ``for key: add(key)``
loop at 10^5 keys and records the numbers in ``BENCH_batch_build.json`` at
the repo root so successive PRs can track the trend.

Two invariants are gated here:

* the engine's bulk build must be at least 3x faster than scalar
  construction (the measured margin is far larger — see the JSON);
* a batch-built filter must serialize to codec frames byte-identical to a
  scalar-built one, i.e. the speedup cannot come from changing a single
  stored bit (the full filter matrix is pinned by
  ``tests/core/test_batch_build_equivalence.py``; this re-checks the two
  filters actually built at benchmark scale).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.metrics.benchmeta import bench_environment
from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.baselines.xor_filter import XorFilter
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.hashing import vectorized
from repro.metrics.timing import time_construction_best_of
from repro.service import codec
from repro.workloads.shalla import generate_shalla_like

NUM_BUILD_KEYS = 100_000
#: Scalar construction is timed on a sample of this size and scaled; the
#: batch path builds the full 10^5-key filter it is being scored on.
SCALAR_SAMPLE = 20_000
BITS_PER_KEY = 10.0
#: The bulk build must beat the scalar loop by at least this factor (the
#: measured margins are ~5-15x; 3x keeps the gate robust on noisy CI).
REQUIRED_SPEEDUP = 3.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_build.json"


@pytest.fixture(scope="module")
def build_keys():
    dataset = generate_shalla_like(
        num_positives=NUM_BUILD_KEYS, num_negatives=1_000, seed=78
    )
    return dataset.positives


def _measure(batch_build, scalar_build, scalar_sample=SCALAR_SAMPLE):
    """Best-of-three keys/sec for the bulk build vs the (sampled) scalar loop."""
    built, batch_timing = time_construction_best_of(batch_build, NUM_BUILD_KEYS)
    _, scalar_timing = time_construction_best_of(scalar_build, scalar_sample)
    batch_kps = NUM_BUILD_KEYS / batch_timing.total_seconds
    scalar_kps = scalar_sample / scalar_timing.total_seconds
    return built, {
        "scalar_keys_per_sec": round(scalar_kps),
        "batch_keys_per_sec": round(batch_kps),
        "speedup": round(batch_kps / scalar_kps, 2),
        "num_build_keys": NUM_BUILD_KEYS,
    }


@pytest.fixture(scope="module")
def build_report(build_keys):
    num_bits = int(BITS_PER_KEY * NUM_BUILD_KEYS)
    num_hashes = optimal_num_hashes(BITS_PER_KEY)

    def bloom_batch():
        return BloomFilter.from_keys(
            build_keys, num_bits=num_bits, num_hashes=num_hashes
        )

    def bloom_scalar(keys=None):
        bloom = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        for key in keys if keys is not None else build_keys[:SCALAR_SAMPLE]:
            bloom.add(key)
        return bloom

    def wbf_batch():
        wbf = WeightedBloomFilter(num_bits=num_bits, default_hashes=num_hashes)
        wbf.add_many(build_keys)
        return wbf

    def wbf_scalar():
        wbf = WeightedBloomFilter(num_bits=num_bits, default_hashes=num_hashes)
        for key in build_keys[:SCALAR_SAMPLE]:
            wbf.add(key)
        return wbf

    def xor_batch():
        return XorFilter(build_keys, fingerprint_bits=8, seed=2)

    def xor_scalar():
        # The Xor filter has no incremental `add`; its scalar build is the
        # numpy-free construction (same peeling, per-key hashing).
        with vectorized.force_scalar():
            return XorFilter(build_keys[:SCALAR_SAMPLE], fingerprint_bits=8, seed=2)

    bloom, bloom_entry = _measure(bloom_batch, bloom_scalar)
    _, wbf_entry = _measure(wbf_batch, wbf_scalar)
    _, xor_entry = _measure(xor_batch, xor_scalar)

    # Frame identity at benchmark scale: the batch-built Bloom filter must
    # serialize byte-for-byte like a scalar build of the same keys.
    scalar_bloom = bloom_scalar(keys=build_keys)
    assert codec.dumps(bloom) == codec.dumps(scalar_bloom), (
        "batch-built Bloom filter serialized differently from the scalar build"
    )

    report = {
        "benchmark": "batch_build",
        **bench_environment(),
        "filters": {
            "bloom": bloom_entry,
            "wbf": wbf_entry,
            "xor": xor_entry,
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.parametrize("name", ["bloom", "wbf", "xor"])
def test_batch_build_speedup(build_report, name):
    entry = build_report["filters"][name]
    print(
        f"\n{name}: scalar={entry['scalar_keys_per_sec']:,} keys/s  "
        f"batch={entry['batch_keys_per_sec']:,} keys/s  speedup={entry['speedup']}x"
    )
    assert entry["speedup"] >= REQUIRED_SPEEDUP, (
        f"{name} bulk build only {entry['speedup']}x over scalar "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def test_report_written(build_report):
    recorded = json.loads(RESULT_PATH.read_text())
    assert recorded["filters"].keys() == {"bloom", "wbf", "xor"}
    for entry in recorded["filters"].values():
        assert entry["num_build_keys"] == NUM_BUILD_KEYS
