"""Unified telemetry layer: metrics registry, exposition, tracing, live FPR.

Every serving subsystem (the membership service, the sharded store, the
micro-batcher, the LSM filter builds) reports through this package instead
of growing its own counters:

* :mod:`repro.obs.core` — dependency-free :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` instruments with label sets, a process-global
  :func:`default_registry` plus injectable :class:`Registry` instances, and
  a :class:`NullRegistry` that turns instrumentation off wholesale;
* :mod:`repro.obs.export` — the Prometheus text exposition
  (:func:`render_text`), mounted at ``GET /metrics`` and behind the
  ``METRICS`` line command by :mod:`repro.service.aserve`;
* :mod:`repro.obs.trace` — span IDs minted at the front-end and carried
  through the batcher → service → shard store → backend probe path, with
  per-stage histograms and an optional sampled structured-JSON span log;
* :mod:`repro.obs.fpr_estimator` — live observed-FPR and cost-weighted
  error per shard, by shadow-sampling positive verdicts against the build
  key set (the paper's Figures 10–13 metrics, computed from real traffic).

``docs/OBSERVABILITY.md`` catalogues the metric names and shows the whole
layer end to end.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.core import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    CollectedFamily,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    Sample,
    default_registry,
    null_registry,
)
from repro.obs.export import CONTENT_TYPE, parse_families, render_text
from repro.obs.fpr_estimator import FprEstimator, ShardFprEstimate
from repro.obs.trace import (
    ActiveTrace,
    Tracer,
    current_trace,
    span_log_to_jsonl,
    stage,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "CollectedFamily",
    "Sample",
    "default_registry",
    "null_registry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "render_text",
    "parse_families",
    "CONTENT_TYPE",
    "Tracer",
    "ActiveTrace",
    "stage",
    "current_trace",
    "span_log_to_jsonl",
    "FprEstimator",
    "ShardFprEstimate",
    "install_process_metrics",
]

#: Anchor for the process-uptime gauge (first import of the obs layer).
_PROCESS_START = time.monotonic()


def install_process_metrics(registry: Optional[Registry] = None) -> None:
    """Register process-level gauges (uptime, RSS) on ``registry``.

    Idempotent: the gauges are function-backed, so re-installing simply
    re-binds the same callbacks.  Called on the default registry at import,
    so a bare ``GET /metrics`` always carries process context.
    """
    registry = registry if registry is not None else default_registry()
    from repro.metrics.memory import process_rss_bytes

    uptime = registry.gauge(
        "repro_process_uptime_seconds",
        "Seconds since the telemetry layer was first imported",
    )
    uptime.set_function(lambda: time.monotonic() - _PROCESS_START)
    rss = registry.gauge(
        "repro_process_resident_bytes",
        "Resident set size of this process (0 when the platform hides it)",
    )
    rss.set_function(lambda: float(process_rss_bytes() or 0))


install_process_metrics(default_registry())
