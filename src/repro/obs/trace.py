"""Lightweight request tracing for the serving path.

A **trace** is minted at the front-end (one per micro-batcher flush window,
or per request for callers that want it), carried through
``AdaptiveMicroBatcher._flush`` → ``MembershipService.query_batch`` →
``ShardedFilterStore.query_many`` → the backend's ``contains_many`` via a
:mod:`contextvars` context variable, and records one timed **stage** per
pipeline step:

* ``queue_wait`` — how long a window stayed open collecting callers;
* ``window_assembly`` — building the engine request (``KeyBatch.concat``);
* ``engine_dispatch`` — the full ``query_batch`` round trip;
* ``shard_probe`` — each shard's backend probe inside the store.

Stage durations land in one histogram family
(``repro_stage_seconds{stage=...}``) on the tracer's registry, and — for
traces selected by ``sample_rate`` — each stage additionally emits a
structured-JSON span record to the optional ``span_log`` callable, carrying
the trace id, a span id unique within the process, the stage name and
tags.  The cost model is asymmetric by design: when no trace is active the
per-stage hook is a single context-variable read (the instrumented hot
path stays hot); when one is active the cost is two clock reads and a
histogram increment.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import random
import threading
import time
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from repro.obs.core import DEFAULT_LATENCY_BUCKETS, Registry, default_registry

__all__ = ["Tracer", "ActiveTrace", "stage", "current_trace"]

#: The trace propagated through the current execution context (copied across
#: the micro-batcher's executor boundary by ``contextvars.copy_context``).
_CURRENT: ContextVar[Optional["ActiveTrace"]] = ContextVar("repro_trace", default=None)

_TRACE_IDS = itertools.count(1)
_ID_LOCK = threading.Lock()


def _mint_trace_id(rng: random.Random) -> str:
    with _ID_LOCK:
        sequence = next(_TRACE_IDS)
    return f"{rng.getrandbits(32):08x}-{sequence:x}"


class ActiveTrace:
    """One sampled-or-not trace flowing through the request pipeline."""

    __slots__ = ("tracer", "trace_id", "sampled", "_span_ids")

    def __init__(self, tracer: "Tracer", trace_id: str, sampled: bool) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.sampled = sampled
        self._span_ids = itertools.count(1)

    def next_span_id(self) -> int:
        return next(self._span_ids)


class Tracer:
    """Mints traces and records their stage timings.

    Args:
        registry: Where the ``repro_stage_seconds`` histogram lives
            (default: the process-global registry).
        sample_rate: Fraction of traces whose spans are written to
            ``span_log`` (stage *histograms* record every traced window
            regardless — sampling only bounds the per-span log volume).
        span_log: Callable receiving one ``dict`` per finished span of a
            sampled trace (e.g. ``lambda span: log.write(json.dumps(span))``).
            ``None`` disables span logging entirely.
        rng: Injectable randomness for deterministic sampling in tests.
    """

    def __init__(
        self,
        registry: Optional[Registry] = None,
        sample_rate: float = 0.01,
        span_log: Optional[Callable[[dict], None]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self._registry = registry if registry is not None else default_registry()
        self._sample_rate = sample_rate
        self._span_log = span_log
        self._rng = rng or random.Random()
        self._stage_seconds = self._registry.histogram(
            "repro_stage_seconds",
            "Wall-clock seconds spent per request-pipeline stage",
            labelnames=("stage",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._traces_total = self._registry.counter(
            "repro_traces_total",
            "Traces minted by the front-end",
            labelnames=("sampled",),
        )

    @property
    def registry(self) -> Registry:
        return self._registry

    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    def begin(self) -> ActiveTrace:
        """Mint a trace (front-end entry point); does not activate it."""
        sampled = self._span_log is not None and self._rng.random() < self._sample_rate
        self._traces_total.labels("true" if sampled else "false").inc()
        return ActiveTrace(self, _mint_trace_id(self._rng), sampled)

    @contextlib.contextmanager
    def activate(self, trace: ActiveTrace) -> Iterator[ActiveTrace]:
        """Make ``trace`` the context's current trace for the block."""
        token = _CURRENT.set(trace)
        try:
            yield trace
        finally:
            _CURRENT.reset(token)

    def record_stage(
        self, trace: ActiveTrace, stage_name: str, seconds: float, **tags
    ) -> None:
        """Record one finished stage: histogram always, span log if sampled."""
        self._stage_seconds.labels(stage_name).observe(seconds)
        if trace.sampled and self._span_log is not None:
            span = {
                "trace_id": trace.trace_id,
                "span_id": trace.next_span_id(),
                "stage": stage_name,
                "duration_seconds": seconds,
            }
            if tags:
                span["tags"] = {key: str(value) for key, value in tags.items()}
            try:
                self._span_log(span)
            except Exception:
                pass  # a broken log sink must never fail a query


def current_trace() -> Optional[ActiveTrace]:
    """The trace active in this execution context, or ``None``."""
    return _CURRENT.get()


class _NoopStage:
    __slots__ = ()

    def __enter__(self) -> "_NoopStage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP = _NoopStage()


class _TimedStage:
    __slots__ = ("_trace", "_name", "_tags", "_start")

    def __init__(self, trace: ActiveTrace, name: str, tags: dict) -> None:
        self._trace = trace
        self._name = name
        self._tags = tags
        self._start = 0.0

    def __enter__(self) -> "_TimedStage":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._trace.tracer.record_stage(
            self._trace, self._name, time.perf_counter() - self._start, **self._tags
        )


def stage(name: str, **tags):
    """Time a pipeline stage under the context's current trace.

    The deep layers (shard store, backend probes) call this unconditionally;
    with no active trace it returns a shared no-op context manager, costing
    one context-variable read — cheap enough to sit on the batch hot path.

    >>> with stage("shard_probe", shard=3):
    ...     pass  # no active trace: no-op
    """
    trace = _CURRENT.get()
    if trace is None:
        return _NOOP
    return _TimedStage(trace, name, tags)


def span_log_to_jsonl(sink) -> Callable[[dict], None]:
    """A ``span_log`` writing one JSON object per line to a file-like sink."""

    def write(span: dict) -> None:
        sink.write(json.dumps(span, sort_keys=True) + "\n")

    return write
