"""Prometheus text exposition (format version 0.0.4) for :mod:`repro.obs`.

:func:`render_text` turns a registry's collected families into the exact
text a Prometheus server scrapes: one ``# HELP``/``# TYPE`` header per
family followed by its sample lines, with label values escaped per the
format specification.  The serving front-end mounts this under
``GET /metrics`` and behind the ``METRICS`` line-protocol command.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.obs.core import CollectedFamily, Registry, Sample

__all__ = ["render_text", "CONTENT_TYPE"]

#: The Content-Type a compliant scraper expects for this exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_sample(family_name: str, sample: Sample) -> str:
    name = family_name + sample.suffix
    if sample.labels:
        labels = ",".join(
            f'{label}="{_escape_label_value(str(value))}"'
            for label, value in sample.labels
        )
        return f"{name}{{{labels}}} {_format_value(sample.value)}"
    return f"{name} {_format_value(sample.value)}"


def _merge(families: Iterable[CollectedFamily]) -> List[CollectedFamily]:
    """Merge families that share a name (instruments + live collectors).

    The exposition format allows each metric name to appear in exactly one
    block, so samples contributed by different sources (e.g. two services'
    collectors feeding ``repro_shard_queries_total``) are concatenated
    under one header.  The first occurrence wins the kind and help text.
    """
    merged: Dict[str, CollectedFamily] = {}
    order: List[str] = []
    for family in families:
        existing = merged.get(family.name)
        if existing is None:
            merged[family.name] = family
            order.append(family.name)
        else:
            merged[family.name] = CollectedFamily(
                name=existing.name,
                kind=existing.kind,
                help=existing.help or family.help,
                samples=existing.samples + family.samples,
            )
    return [merged[name] for name in order]


def render_family(family: CollectedFamily) -> List[str]:
    """The exposition lines for one family (header + samples)."""
    lines = [
        f"# HELP {family.name} {_escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for sample in family.samples:
        lines.append(_render_sample(family.name, sample))
    return lines


def render_text(registry: Registry) -> str:
    """The full exposition for ``registry``, ending with a newline.

    Families with no children yet still emit their headers — a scraper
    learns the full catalogue on the first scrape, before traffic arrives.
    """
    lines: List[str] = []
    for family in _merge(registry.collect()):
        lines.extend(render_family(family))
    return "\n".join(lines) + "\n" if lines else "\n"


def parse_families(text: str) -> Dict[str, Tuple[str, Dict[str, float]]]:
    """A minimal exposition parser: ``{family: (kind, {sample_line: value})}``.

    This exists for tests and operational tooling (asserting every emitted
    family carries a ``# TYPE`` header, that counters are monotone between
    two scrapes), not as a general Prometheus parser; it understands exactly
    what :func:`render_text` produces.
    """
    families: Dict[str, Tuple[str, Dict[str, float]]] = {}
    current: str = ""
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            current = name
            families[name] = (kind.strip(), {})
            continue
        if line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        base = series.partition("{")[0]
        for suffix in ("_bucket", "_sum", "_count", ""):
            if suffix and base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
                break
        if base != current or base not in families:
            raise ValueError(f"sample {series!r} outside its family block")
        families[base][1][series] = float(value)
    return families
