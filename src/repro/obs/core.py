"""Dependency-free metrics core: counters, gauges, histograms, registries.

One instrumentation layer for every subsystem (service, shard store,
micro-batcher, LSM read path) instead of the hand-rolled per-module stat
dataclasses they grew independently.  The design follows the Prometheus
client-library data model without importing it:

* an **instrument** is a named family (``repro_service_queries_total``) with
  a fixed tuple of label names; ``labels(...)`` returns (or creates) the
  **child** for one label-value tuple, and children carry the actual values;
* a :class:`Registry` owns instruments by family name; :func:`default_registry`
  is the process-global one, and tests (or services that want isolated
  numbers) inject their own;
* increments are lock-safe and cheap — one small per-child lock around a
  float add — so instrumented code can sit next to the hash hot path; the
  obs overhead benchmark (``benchmarks/test_obs_overhead.py``) gates the
  end-to-end cost at ≤5% of async-serving throughput;
* :class:`NullRegistry` hands out no-op instruments, so "instrumentation
  disabled" is a constructor argument, not a code path fork.

Exposition (the Prometheus text format) lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import re
import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.metrics.timing import histogram_quantile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "CollectedFamily",
    "Sample",
    "default_registry",
    "null_registry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Histogram buckets for latencies in seconds: 100us .. 10s, roughly
#: logarithmic, matching the scales the serving layer actually produces.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Histogram buckets for counted sizes (batch sizes, queue depths).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    4096.0,
)

_INF = float("inf")


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label or ""):
            raise ConfigurationError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate label names in {names!r}")
    return names


@dataclass(frozen=True)
class Sample:
    """One exposition line: a metric name suffix, label pairs and a value.

    ``suffix`` is appended to the family name (histograms emit ``_bucket``,
    ``_sum`` and ``_count`` series; counters and gauges use the empty
    suffix).
    """

    suffix: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


@dataclass(frozen=True)
class CollectedFamily:
    """A metric family as the exporter consumes it."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: Tuple[Sample, ...]


class _CounterChild:
    """The value cell for one label set of a :class:`Counter`."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters are monotone)."""
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    """The value cell for one label set of a :class:`Gauge`.

    A gauge either holds a set value or derives it from a callback
    (:meth:`set_function`), which is how point-in-time process facts —
    uptime, RSS, the adaptive batch deadline — are exported without a
    writer thread.
    """

    __slots__ = ("_lock", "_value", "_function")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._function = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._function = None
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function`` at every read/scrape instead of a stored value."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        try:
            return float(function())
        except Exception:
            # A scrape must never die because one callback did (e.g. a
            # platform without /proc); expose 0 and keep serving.
            return 0.0


class _HistogramChild:
    """Cumulative bucket counts + sum/count for one label set."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds  # strictly increasing, +Inf excluded
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan: bucket lists are short (<20) and typical observations
        # land in the first few buckets, which beats bisect's call overhead.
        index = 0
        for bound in self._bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Tuple[Tuple[float, ...], List[int], float, int]:
        """(bucket bounds, per-bucket counts, sum, count) — one consistent read."""
        with self._lock:
            return self._bounds, list(self._counts), self._sum, self._count

    def approx_quantile(self, q: float) -> float:
        """Prometheus-style quantile estimate from the bucket counts."""
        bounds, counts, _total, count = self.snapshot()
        if count == 0:
            return 0.0
        return histogram_quantile(q, list(bounds) + [_INF], counts)


class _Instrument:
    """Shared family machinery: name, help, label names, child map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = _validate_labelnames(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._children_lock = threading.Lock()

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values, **kwvalues):
        """The child for one label-value tuple (created on first use)."""
        if values and kwvalues:
            raise ConfigurationError("pass label values positionally or by name, not both")
        if kwvalues:
            try:
                values = tuple(kwvalues[name] for name in self.labelnames)
            except KeyError as exc:
                raise ConfigurationError(
                    f"{self.name} labels are {self.labelnames}, missing {exc}"
                ) from None
            if len(kwvalues) != len(self.labelnames):
                raise ConfigurationError(
                    f"{self.name} labels are {self.labelnames}, got {tuple(kwvalues)}"
                )
        if len(values) != len(self.labelnames):
            raise ConfigurationError(
                f"{self.name} takes {len(self.labelnames)} label values, got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        with self._children_lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def _default_child(self):
        """The unlabelled child (only valid for label-less instruments)."""
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._children_lock:
            return list(self._children.items())

    def collect(self) -> CollectedFamily:
        samples: List[Sample] = []
        for values, child in self.children():
            labels = tuple(zip(self.labelnames, values))
            samples.extend(self._samples_for(labels, child))
        return CollectedFamily(
            name=self.name, kind=self.kind, help=self.help, samples=tuple(samples)
        )

    def _samples_for(self, labels, child) -> Iterable[Sample]:  # pragma: no cover
        raise NotImplementedError


class Counter(_Instrument):
    """A monotone counter family; children only ever increase."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (label-less instruments only)."""
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _samples_for(self, labels, child) -> Iterable[Sample]:
        return (Sample("", labels, child.value),)


class Gauge(_Instrument):
    """A point-in-time value family; children move both ways."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        self._default_child().set_function(function)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _samples_for(self, labels, child) -> Iterable[Sample]:
        return (Sample("", labels, child.value),)


class Histogram(_Instrument):
    """A bucketed distribution family (cumulative ``le`` buckets, sum, count)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets if bound != _INF)
        if not bounds:
            raise ConfigurationError("a histogram needs at least one finite bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def sum(self) -> float:
        return self._default_child().sum

    @property
    def count(self) -> int:
        return self._default_child().count

    def approx_quantile(self, q: float) -> float:
        return self._default_child().approx_quantile(q)

    def _samples_for(self, labels, child) -> Iterable[Sample]:
        bounds, counts, total, count = child.snapshot()
        cumulative = 0
        samples: List[Sample] = []
        for bound, bucket_count in zip(list(bounds) + [_INF], counts):
            cumulative += bucket_count
            le = "+Inf" if bound == _INF else _format_bound(bound)
            samples.append(Sample("_bucket", labels + (("le", le),), float(cumulative)))
        samples.append(Sample("_sum", labels, total))
        samples.append(Sample("_count", labels, float(count)))
        return samples


def _format_bound(bound: float) -> str:
    return str(int(bound)) if bound == int(bound) else repr(bound)


@dataclass
class _Collector:
    """A scrape-time callback producing families the registry does not own.

    The membership service registers one to export per-shard counters as a
    *live view* of the current snapshot's :class:`~repro.service.stats.ShardStats`
    (shard counters reset when a rebuild swaps the store in, exactly like
    the ``stats()`` API; Prometheus treats that as an ordinary counter
    reset).  The callback is held through a weak reference when it is a
    bound method, so a collected-away service silently drops out of the
    scrape instead of leaking.
    """

    ref: object  # weakref.WeakMethod | callable

    def resolve(self) -> Optional[Callable[[], Iterable[CollectedFamily]]]:
        if isinstance(self.ref, weakref.WeakMethod):
            return self.ref()
        return self.ref  # type: ignore[return-value]


class Registry:
    """Owns instruments by family name; the unit /metrics exposes.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: asking for
    an existing family name returns the existing instrument after checking
    that the kind and label names agree, so any number of service instances
    can share one family and differ only by label values.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[_Collector] = []

    # ------------------------------------------------------------------ #
    # Instrument creation
    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ConfigurationError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {tuple(labelnames)}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def add_collector(self, callback: Callable[[], Iterable[CollectedFamily]]) -> None:
        """Register a scrape-time family producer (weakly, for bound methods)."""
        ref = (
            weakref.WeakMethod(callback)
            if hasattr(callback, "__self__")
            else callback
        )
        with self._lock:
            self._collectors.append(_Collector(ref))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def collect(self) -> List[CollectedFamily]:
        """Every family — owned instruments first, then live collectors.

        Families with the same name are merged by the exporter; dead weak
        collectors are pruned as a side effect.
        """
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families = [instrument.collect() for instrument in instruments]
        dead: List[_Collector] = []
        for collector in collectors:
            callback = collector.resolve()
            if callback is None:
                dead.append(collector)
                continue
            families.extend(callback())
        if dead:
            with self._lock:
                self._collectors = [c for c in self._collectors if c not in dead]
        return families


class _NullChild:
    """Absorbs every instrument operation; reads as zero."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, function) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def approx_quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self):
        return (), [], 0.0, 0

    @property
    def value(self) -> float:
        return 0.0

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


class _NullInstrument(_NullChild):
    """A no-op instrument: ``labels(...)`` returns the shared null child."""

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.help = ""
        self.labelnames = ()

    def labels(self, *values, **kwvalues) -> "_NullInstrument":
        return self

    def children(self):
        return []

    def collect(self) -> CollectedFamily:
        return CollectedFamily(name=self.name, kind=self.kind, help="", samples=())


class NullRegistry(Registry):
    """Instrumentation off: hands out no-op instruments and collects nothing.

    Pass one as ``registry=`` to make a subsystem run with zero telemetry
    bookkeeping — the overhead benchmark's baseline, and an escape hatch for
    deployments that want the last percent of throughput back.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name, help="", labelnames=()):  # type: ignore[override]
        return _NullInstrument(name, "counter")

    def gauge(self, name, help="", labelnames=()):  # type: ignore[override]
        return _NullInstrument(name, "gauge")

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS):  # type: ignore[override]
        return _NullInstrument(name, "histogram")

    def add_collector(self, callback) -> None:  # type: ignore[override]
        pass

    def collect(self) -> List[CollectedFamily]:  # type: ignore[override]
        return []


_DEFAULT = Registry()
_NULL = NullRegistry()


def default_registry() -> Registry:
    """The process-global registry every subsystem reports to by default."""
    return _DEFAULT


def null_registry() -> NullRegistry:
    """The shared no-op registry (``registry=`` for instrumentation-off)."""
    return _NULL
