"""Live false-positive-rate estimation by shadow-sampling positive verdicts.

The paper's evaluation (Figures 10–13) measures observed FPR and
cost-weighted error offline, against a held-out negative set.  A serving
deployment wants the same quantities *live*: the filters' configured FPR is
analytic, but the observed rate depends on the traffic mix actually
arriving, and ROADMAP item 5 (workload-adaptive backend selection) scores
shards by exactly these numbers.

:class:`FprEstimator` attaches to a :class:`~repro.service.server.MembershipService`
and shadow-samples a configurable fraction of **positive verdicts**: for a
sampled key the registered ground-truth oracle — by default the exact key
set the serving generation was built from, which the service re-registers
on every rebuild — says whether the key is genuinely a member.  A positive
verdict the oracle rejects is a confirmed false positive.  Per shard the
estimator keeps the sampled count, confirmed false positives and their
costs, and extrapolates:

* ``fp_fraction`` — false positives among sampled positive verdicts;
* estimated false positives ``= positives × fp_fraction``;
* estimated negatives queried ``= queries − positives + estimated FP``;
* ``observed_fpr = estimated FP / estimated negatives`` — the live
  counterpart of the paper's FPR;
* ``cost_weighted_fpr`` — the live counterpart of Eq. 1/20, using the
  registered per-key costs for sampled false positives and the mean
  negative cost for the denominator (equal to ``observed_fpr`` under
  uniform costs).

The oracle consults a set the service already holds (its build key list),
so sampling costs one hash-set lookup plus one shard routing per *sampled*
key — nothing on unsampled traffic.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass
from itertools import compress
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.hashing.base import Key

__all__ = ["FprEstimator", "ShardFprEstimate"]

CostSpec = Union[Mapping[Key, float], Callable[[Key], float], None]


@dataclass(frozen=True)
class ShardFprEstimate:
    """The live accuracy estimate for one shard.

    Attributes:
        shard: Shard index.
        sampled: Positive verdicts shadow-checked against the oracle.
        false_positives: Sampled verdicts the oracle rejected.
        fp_fraction: ``false_positives / sampled`` (0.0 before any sample).
        observed_fpr: Extrapolated false-positive rate over the shard's
            negative traffic, or ``None`` while there is no signal (no
            samples, or no estimated negative traffic to divide by).
        cost_weighted_fpr: Cost-weighted counterpart (Eq. 1/20 live), or
            ``None`` under the same conditions.
        queries: Shard queries the extrapolation was computed from.
        positives: Shard positive verdicts the extrapolation used.
    """

    shard: int
    sampled: int
    false_positives: int
    fp_fraction: float
    observed_fpr: Optional[float]
    cost_weighted_fpr: Optional[float]
    queries: int
    positives: int
    #: Sampled false positives that hit a *known* negative (a key registered
    #: via :meth:`FprEstimator.set_known_negatives`, normally the negatives
    #: the serving generation was built with).  The adaptive backend scorer
    #: uses the fractions to estimate how much of a shard's error mass a
    #: negative-aware backend could suppress.
    known_false_positives: int = 0
    known_fp_fraction: float = 0.0
    known_fp_cost_fraction: float = 0.0


class _ShardTally:
    __slots__ = (
        "sampled",
        "false_positives",
        "fp_cost",
        "known_false_positives",
        "known_fp_cost",
    )

    def __init__(self) -> None:
        self.sampled = 0
        self.false_positives = 0
        self.fp_cost = 0.0
        self.known_false_positives = 0
        self.known_fp_cost = 0.0


class FprEstimator:
    """Shadow-samples positive verdicts against a ground-truth oracle.

    Args:
        sample_rate: Fraction of positive verdicts checked (1.0 = every
            one; the default 5% keeps the oracle lookup off the hot path).
        costs: Per-key miss costs — a mapping, a callable, or ``None`` for
            uniform costs.  Drives ``cost_weighted_fpr``.
        rng: Injectable randomness (tests pass a seeded ``random.Random``).

    The estimator is inert until an oracle is registered
    (:meth:`set_key_oracle` / :meth:`set_oracle`); a
    :class:`~repro.service.server.MembershipService` it is attached to does
    this automatically with each generation's build keys.
    """

    def __init__(
        self,
        sample_rate: float = 0.05,
        costs: CostSpec = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self._sample_rate = sample_rate
        self._rng = rng or random.Random()
        self._oracle: Optional[Callable[[Key], bool]] = None
        #: When true (the default), an attached service refreshes the oracle
        #: with each generation's build keys; registering a custom oracle via
        #: :meth:`set_oracle` clears it so the service stops overwriting.
        self.auto_oracle = True
        #: When true (the default), an attached service refreshes the known
        #: negative set with each rebuild's ``negatives`` argument (and the
        #: per-key costs with its ``costs``); set false to pin your own.
        self.auto_known_negatives = True
        self._known_negatives: frozenset = frozenset()
        self._lock = threading.Lock()
        self._tallies: Dict[int, _ShardTally] = {}
        self._cost_fn: Callable[[Key], float] = lambda key: 1.0
        self._mean_negative_cost = 1.0
        self.set_costs(costs)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    @property
    def active(self) -> bool:
        """True when observations can produce signal (oracle + rate > 0)."""
        return self._oracle is not None and self._sample_rate > 0.0

    def set_oracle(self, oracle: Callable[[Key], bool]) -> None:
        """Register the ground truth: ``oracle(key)`` is true membership.

        Also disables :attr:`auto_oracle`, so a service this estimator is
        attached to stops re-registering its build keys on rebuilds.
        """
        self._oracle = oracle
        self.auto_oracle = False

    def set_key_oracle(self, keys: Iterable[Key]) -> None:
        """Register the exact member key set as the oracle (frozen copy)."""
        members = frozenset(keys)
        self._oracle = members.__contains__

    def set_costs(self, costs: CostSpec) -> None:
        """Register per-key miss costs for the cost-weighted estimate."""
        if costs is None:
            self._cost_fn = lambda key: 1.0
            self._mean_negative_cost = 1.0
        elif callable(costs):
            self._cost_fn = costs
            self._mean_negative_cost = 1.0
        else:
            mapping = dict(costs)
            self._cost_fn = lambda key: float(mapping.get(key, 1.0))
            self._mean_negative_cost = (
                sum(float(value) for value in mapping.values()) / len(mapping)
                if mapping
                else 1.0
            )

    def set_known_negatives(self, keys: Iterable[Key]) -> None:
        """Register the known negatives (the keys a rebuild trained against).

        Sampled false positives are additionally checked against this set so
        :class:`ShardFprEstimate` can split error mass into "known" (the
        portion a negative-aware backend like HABF or WBF could suppress)
        and "unseen".  A service with :attr:`auto_known_negatives` set (the
        default) calls this on every rebuild with that rebuild's negatives.
        """
        self._known_negatives = frozenset(keys)

    def reset(self) -> None:
        """Drop accumulated tallies (e.g. after a backend migration)."""
        with self._lock:
            self._tallies.clear()

    def reset_shards(self, shards: Iterable[int]) -> None:
        """Drop the tallies of specific shards (their backend migrated, so
        accumulated evidence describes the *previous* filter)."""
        with self._lock:
            for shard in shards:
                self._tallies.pop(int(shard), None)

    # ------------------------------------------------------------------ #
    # Observation path
    # ------------------------------------------------------------------ #
    def observe_batch(
        self,
        keys: Sequence[Key],
        verdicts: Sequence[bool],
        shard_of: Callable[[Key], int],
        shards: Optional[Sequence[int]] = None,
    ) -> None:
        """Feed one answered batch; samples a fraction of positive verdicts.

        Unsampled keys cost one ``random()`` call each (positives only);
        sampled keys additionally pay one shard routing and one oracle
        lookup — the "shadow" work.  Callers that already hold per-key shard
        assignments (the store's vectorized router pass) pass them as
        ``shards`` so sampling skips the per-key re-hash.
        """
        oracle = self._oracle
        if oracle is None or self._sample_rate <= 0.0:
            return
        rate = self._sample_rate
        rng_random = self._rng.random
        cost_fn = self._cost_fn
        # This runs inside the serving engine's dispatch, so per-key Python
        # work on unsampled traffic must stay near zero: negatives are
        # skipped at C speed (compress), fractional sampling draws geometric
        # gaps between sampled positives instead of a coin per positive
        # (identical Bernoulli(rate) law, by memorylessness), and per-shard
        # tallies merge under one lock acquisition per batch.
        if rate < 1.0:
            inv_log_miss = 1.0 / math.log(1.0 - rate)
            skip = int(math.log(1.0 - rng_random()) * inv_log_miss)
        else:
            skip = 0
        known = self._known_negatives
        pending: Dict[int, List[float]] = {}
        for index in compress(range(len(verdicts)), verdicts):
            if skip > 0:
                skip -= 1
                continue
            if rate < 1.0:
                skip = int(math.log(1.0 - rng_random()) * inv_log_miss)
            key = keys[index]
            shard = shards[index] if shards is not None else shard_of(key)
            entry = pending.get(shard)
            if entry is None:
                entry = pending[shard] = [0, 0, 0.0, 0, 0.0]
            entry[0] += 1
            if not oracle(key):
                entry[1] += 1
                cost = float(cost_fn(key))
                entry[2] += cost
                if key in known:
                    entry[3] += 1
                    entry[4] += cost
        if not pending:
            return
        with self._lock:
            for shard, entry in pending.items():
                shard = int(shard)  # ndarray-sourced indexes arrive as int64
                tally = self._tallies.get(shard)
                if tally is None:
                    tally = self._tallies[shard] = _ShardTally()
                tally.sampled += int(entry[0])
                tally.false_positives += int(entry[1])
                tally.fp_cost += entry[2]
                tally.known_false_positives += int(entry[3])
                tally.known_fp_cost += entry[4]

    def observe(self, key: Key, verdict: bool, shard: int) -> None:
        """Scalar-path variant of :meth:`observe_batch` (shard precomputed)."""
        oracle = self._oracle
        if oracle is None or not verdict or self._sample_rate <= 0.0:
            return
        if self._sample_rate < 1.0 and self._rng.random() >= self._sample_rate:
            return
        self._record(key, shard, oracle(key))

    def _record(self, key: Key, shard: int, is_member: bool) -> None:
        cost = float(self._cost_fn(key)) if not is_member else 0.0
        known = not is_member and key in self._known_negatives
        with self._lock:
            tally = self._tallies.get(shard)
            if tally is None:
                tally = self._tallies[shard] = _ShardTally()
            tally.sampled += 1
            if not is_member:
                tally.false_positives += 1
                tally.fp_cost += cost
                if known:
                    tally.known_false_positives += 1
                    tally.known_fp_cost += cost

    # ------------------------------------------------------------------ #
    # Estimates
    # ------------------------------------------------------------------ #
    def shard_estimate(
        self, shard: int, queries: int, positives: int
    ) -> ShardFprEstimate:
        """Extrapolate one shard's estimate from its traffic counters."""
        with self._lock:
            tally = self._tallies.get(shard)
            sampled = tally.sampled if tally else 0
            false_positives = tally.false_positives if tally else 0
            fp_cost = tally.fp_cost if tally else 0.0
            known_fp = tally.known_false_positives if tally else 0
            known_fp_cost = tally.known_fp_cost if tally else 0.0
        if sampled == 0:
            return ShardFprEstimate(
                shard=shard,
                sampled=0,
                false_positives=0,
                fp_fraction=0.0,
                observed_fpr=None,
                cost_weighted_fpr=None,
                queries=queries,
                positives=positives,
            )
        fp_fraction = false_positives / sampled
        estimated_fp = positives * fp_fraction
        estimated_negatives = queries - positives + estimated_fp
        observed_fpr = (
            estimated_fp / estimated_negatives if estimated_negatives > 0 else None
        )
        cost_weighted: Optional[float] = None
        if estimated_negatives > 0 and self._mean_negative_cost > 0:
            estimated_fp_cost = positives * (fp_cost / sampled)
            cost_weighted = estimated_fp_cost / (
                estimated_negatives * self._mean_negative_cost
            )
        return ShardFprEstimate(
            shard=shard,
            sampled=sampled,
            false_positives=false_positives,
            fp_fraction=fp_fraction,
            observed_fpr=observed_fpr,
            cost_weighted_fpr=cost_weighted,
            queries=queries,
            positives=positives,
            known_false_positives=known_fp,
            known_fp_fraction=(
                known_fp / false_positives if false_positives else 0.0
            ),
            known_fp_cost_fraction=(known_fp_cost / fp_cost if fp_cost > 0 else 0.0),
        )

    def estimates(self, shard_stats) -> List[ShardFprEstimate]:
        """Per-shard estimates from a ``stats().shards`` list."""
        return [
            self.shard_estimate(stats.shard, stats.queries, stats.positives)
            for stats in shard_stats
        ]

    def overall(self, shard_stats) -> Optional[ShardFprEstimate]:
        """One aggregate estimate across every shard (``shard=-1``)."""
        queries = sum(stats.queries for stats in shard_stats)
        positives = sum(stats.positives for stats in shard_stats)
        with self._lock:
            sampled = sum(t.sampled for t in self._tallies.values())
            false_positives = sum(t.false_positives for t in self._tallies.values())
            fp_cost = sum(t.fp_cost for t in self._tallies.values())
            known_fp = sum(t.known_false_positives for t in self._tallies.values())
            known_fp_cost = sum(t.known_fp_cost for t in self._tallies.values())
        if sampled == 0:
            return None
        fp_fraction = false_positives / sampled
        estimated_fp = positives * fp_fraction
        estimated_negatives = queries - positives + estimated_fp
        observed = estimated_fp / estimated_negatives if estimated_negatives > 0 else None
        cost_weighted: Optional[float] = None
        if estimated_negatives > 0 and self._mean_negative_cost > 0:
            cost_weighted = (positives * (fp_cost / sampled)) / (
                estimated_negatives * self._mean_negative_cost
            )
        return ShardFprEstimate(
            shard=-1,
            sampled=sampled,
            false_positives=false_positives,
            fp_fraction=fp_fraction,
            observed_fpr=observed,
            cost_weighted_fpr=cost_weighted,
            queries=queries,
            positives=positives,
            known_false_positives=known_fp,
            known_fp_fraction=(
                known_fp / false_positives if false_positives else 0.0
            ),
            known_fp_cost_fraction=(known_fp_cost / fp_cost if fp_cost > 0 else 0.0),
        )
