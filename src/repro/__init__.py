"""Reproduction of "Hash Adaptive Bloom Filter" (Xie et al., ICDE 2021).

The package is organised around the paper's architecture:

* :mod:`repro.hashing` — the global hash-function family (Table II).
* :mod:`repro.core` — BitArray, BloomFilter, HashExpressor, TPJO and HABF.
* :mod:`repro.baselines` — Xor filter, Weighted Bloom filter and the learned
  filters (LBF, SLBF, Ada-BF) the paper compares against.
* :mod:`repro.workloads` — Shalla-like and YCSB-like key generators plus Zipf
  cost distributions.
* :mod:`repro.metrics` — weighted FPR, timing and memory measurement.
* :mod:`repro.theory` — analytic FPR formulas and the paper's bounds.
* :mod:`repro.experiments` — one runner per paper figure.
* :mod:`repro.kvstore` — a small LSM-tree key-value store substrate showing the
  motivating application (filters guarding level reads).
* :mod:`repro.service` — the membership-serving subsystem: binary filter
  codec, sharded stores, and a hot-rebuildable :class:`MembershipService`.

Quickstart::

    from repro import HABF
    habf = HABF.build(positives=["a", "b"], negatives=["x", "y"], bits_per_key=12)
    assert "a" in habf and "x" not in habf
"""

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.habf import HABF, FastHABF
from repro.core.hash_expressor import HashExpressor
from repro.core.params import HABFParams, SpaceBudget
from repro.errors import (
    CapacityError,
    ConfigurationError,
    ConstructionError,
    DatasetError,
    ReproError,
    UnknownHashError,
)
from repro.hashing import GLOBAL_HASH_FAMILY, HashFamily, build_family

__version__ = "1.1.0"

__all__ = [
    "HABF",
    "FastHABF",
    "BloomFilter",
    "HashExpressor",
    "HABFParams",
    "SpaceBudget",
    "optimal_num_hashes",
    "GLOBAL_HASH_FAMILY",
    "HashFamily",
    "build_family",
    "ReproError",
    "ConfigurationError",
    "ConstructionError",
    "CapacityError",
    "DatasetError",
    "UnknownHashError",
    "__version__",
]
