"""Key-sharded filter store: N independently-built filters behind one router.

Sharding serves three purposes the single-filter core cannot:

* **construction scale** — TPJO construction is superlinear-ish in practice;
  building N filters over N-times-smaller key sets is faster and bounds the
  per-filter hash-family pressure; independent shards also parallelise
  (``build(..., workers=N)`` constructs them on a process or thread pool,
  process workers handing finished shards back as codec frames);
* **rebuild granularity** — the serving layer swaps whole stores atomically,
  and per-shard key-set fingerprints let a rebuild skip every shard whose
  keys did not change (:meth:`ShardedFilterStore.rebuild_from`);
* **batch locality** — ``query_many`` groups a batch's keys per shard and
  answers each group with one ``contains_many`` call, the pattern a gateway
  checking a page full of URLs produces.

The router hashes keys with a hash that is *independent* of every filter's
own hash family (a salted xxhash), so shard placement never correlates with
filter false positives.  The same per-key hash also feeds the shard
*fingerprint* — an order-independent 64-bit digest of a shard's key multiset
— so detecting which shards a new key set dirties costs nothing beyond the
routing pass that partitions it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key, mix64, normalize_key
from repro.hashing.primitives import xxhash
from repro.obs import default_registry, stage
from repro.service.backends import BackendSpec, resolve_backend
from repro.service.stats import ShardStats

#: Salt separating the fingerprint digest from the routing hash (same 64-bit
#: xxhash pass, different mixes), so placement and fingerprints stay
#: statistically independent.
_FINGERPRINT_SALT = 0x4650_5244_4947_5354  # "FPRDIGST"
_MASK64 = (1 << 64) - 1


class EmptyShardFilter:
    """Filter for a shard that received no keys: rejects everything.

    (Contrast :class:`repro.kvstore.filter_policy.NoFilterPolicy`'s
    always-contains filter, which is the safe default when a *table* has no
    filter; a membership shard with no keys genuinely holds nothing.)
    """

    algorithm_name = "empty"

    def contains(self, key: Key) -> bool:
        return False

    def __contains__(self, key: Key) -> bool:
        return False

    def contains_many(self, keys: Iterable[Key]) -> List[bool]:
        return [False for _ in keys]

    def _contains_batch(self, batch):
        np = vec.numpy_or_none()
        return np.zeros(len(batch), dtype=bool)

    def size_in_bits(self) -> int:
        return 0


class ShardRouter:
    """Deterministic key → shard mapping, independent of filter hashing."""

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        self._num_shards = num_shards
        self._salt = mix64(seed ^ 0x5348_4152_4453_4545)  # "SHARDSEE"

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def seed_salt(self) -> int:
        return self._salt

    def shard_of(self, key: Key) -> int:
        """Return the shard index ``key`` routes to."""
        return mix64(xxhash(normalize_key(key)) ^ self._salt) % self._num_shards

    def route(self, key: Key) -> Tuple[int, int]:
        """Shard index plus the key's fingerprint contribution.

        Both derive from one xxhash evaluation: the placement mixes the hash
        with the router salt, the fingerprint contribution mixes it with a
        fixed digest salt.  Summing contributions (mod 2^64) over a shard's
        keys yields an order-independent digest of its key multiset.
        """
        value = xxhash(normalize_key(key))
        return (
            mix64(value ^ self._salt) % self._num_shards,
            mix64(value ^ _FINGERPRINT_SALT),
        )

    def shard_of_many(self, batch: "vec.KeyBatch"):
        """Vector form of :meth:`shard_of` over an encoded batch.

        Returns an int64 ndarray of shard indexes; requires numpy (callers
        gate on the engine and fall back to per-key routing without it).
        The partition is memoised on the batch like a hash pass, so the
        query path and the FPR estimator's shadow sampling share one router
        evaluation per window.
        """
        cache_key = ("shards", self._salt, self._num_shards)
        cached = batch.cache.get(cache_key)
        if cached is not None:
            return cached
        np = vec.numpy_or_none()
        values = vec.hash_batch(xxhash, batch)
        salted = vec.mix64(values ^ np.uint64(self._salt))
        result = (salted % np.uint64(self._num_shards)).astype(np.int64)
        batch.cache[cache_key] = result
        return result


def _build_shard_frame(
    backend_name: str,
    backend_kwargs: dict,
    keys: List[Key],
    negatives: List[Key],
    costs: Optional[Dict[Key, float]],
) -> bytes:
    """Process-pool worker: build one shard's filter, return its codec frame.

    The policy is re-instantiated inside the worker from its registered name
    (policy objects never cross the process boundary), and the finished
    filter crosses back as one self-describing codec frame — the same bytes
    a snapshot would hold, so "parallel-buildable" and "persistable" are the
    same property.
    """
    from repro.service import codec
    from repro.service.backends import get_backend

    policy = get_backend(backend_name, **backend_kwargs)
    return codec.dumps(policy.create_filter(keys, negatives=negatives, costs=costs))


def _observe_build_seconds(backend_name: str, seconds: float) -> None:
    """Record one (re)build's filter-construction time on the global registry.

    Builds run off the query hot path, so the get-or-create lookup per call
    is fine; the process-global registry is used unconditionally because the
    store is built by classmethods that have no injected registry to honour.
    """
    default_registry().histogram(
        "repro_filter_build_seconds",
        "Wall-clock seconds constructing shard filters per (re)build",
        ("backend",),
    ).labels(backend_name).observe(seconds)


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """A process pool whose start method matches the parent's thread state.

    ``fork`` is cheapest and — unlike ``forkserver``/``spawn`` — never
    re-imports ``__main__`` (so it works from a REPL or a stdin script),
    but forking a *multithreaded* process can deadlock children on locks
    some other thread held at fork time, and a hot rebuild runs exactly
    there: next to live query threads.  So: fork while the process is still
    single-threaded (always safe), forkserver once threads exist (forks
    from a clean single-threaded server process), default context (spawn)
    where neither is available.
    """
    import multiprocessing
    import threading

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        context = multiprocessing.get_context("fork")
    elif "forkserver" in methods:
        context = multiprocessing.get_context("forkserver")
    else:  # pragma: no cover - Windows
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


class ShardedFilterStore:
    """A fixed set of filters, one per shard, built by a shared backend.

    Build one with :meth:`build` (``workers=N`` constructs independent
    shards concurrently); rebuild only the shards whose key sets changed
    with :meth:`rebuild_from`; query with :meth:`query` / :meth:`query_many`;
    persist with :func:`repro.service.codec.dumps` (the whole store is one
    frame, including per-shard generations and fingerprints) and revive with
    ``loads``.
    """

    def __init__(
        self,
        filters: Sequence[object],
        router_seed: int = 0,
        backend_name: str = "unknown",
        shard_key_counts: Optional[Sequence[int]] = None,
        shard_generations: Optional[Sequence[int]] = None,
        shard_fingerprints: Optional[Sequence[Optional[int]]] = None,
        shard_backend_names: Optional[Sequence[str]] = None,
    ) -> None:
        if not filters:
            raise ConfigurationError("a sharded store needs at least one shard")
        self._filters: List[object] = list(filters)
        num_shards = len(self._filters)
        self._router = ShardRouter(num_shards, seed=router_seed)
        self._router_seed = router_seed
        self._backend_name = backend_name
        counts = list(shard_key_counts) if shard_key_counts is not None else [0] * num_shards
        generations = (
            list(shard_generations) if shard_generations is not None else [1] * num_shards
        )
        fingerprints = (
            list(shard_fingerprints)
            if shard_fingerprints is not None
            else [None] * num_shards
        )
        backend_names = (
            list(shard_backend_names)
            if shard_backend_names is not None
            else [backend_name] * num_shards
        )
        for label, values in (
            ("shard_key_counts", counts),
            ("shard_generations", generations),
            ("shard_fingerprints", fingerprints),
            ("shard_backend_names", backend_names),
        ):
            if len(values) != num_shards:
                raise ConfigurationError(
                    f"{label} length {len(values)} != shard count {num_shards}"
                )
        self._shard_fingerprints: List[Optional[int]] = fingerprints
        self._shard_backend_names: List[str] = backend_names
        self._stats = [
            ShardStats(
                shard=index,
                num_keys=counts[index],
                size_in_bits=self._filter_bits(index),
                generation=generations[index],
                backend=backend_names[index],
            )
            for index in range(num_shards)
        ]
        # Counter updates are read-modify-write; the serving layer queries
        # from multiple threads, so they need their own lock (queries
        # themselves touch only immutable filter state and stay lock-free).
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _partition(
        router: ShardRouter,
        keys: Sequence[Key],
        negatives: Sequence[Key],
        costs: Optional[Mapping[Key, float]],
    ) -> Tuple[List[List[Key]], List[List[Key]], List[Optional[dict]], List[int]]:
        """Split keys/negatives/costs per shard and digest each key set.

        With numpy available, placement and fingerprint contributions come
        from one vectorized xxhash pass (bit-identical to the scalar
        :meth:`ShardRouter.route`, like every engine twin) — this matters
        because the partition runs on *every* rebuild, including incremental
        ones that then rebuild only a single shard.
        """
        num_shards = router.num_shards
        shard_keys: List[List[Key]] = [[] for _ in range(num_shards)]
        fingerprints = [0] * num_shards
        np = vec.numpy_or_none()
        if np is not None and len(keys):
            batch = keys if isinstance(keys, vec.KeyBatch) else vec.KeyBatch(list(keys))
            values = vec.hash_batch(xxhash, batch)
            shards = (
                vec.mix64(values ^ np.uint64(router.seed_salt))
                % np.uint64(num_shards)
            ).astype(np.int64)
            contributions = vec.mix64(values ^ np.uint64(_FINGERPRINT_SALT))
            digests = np.zeros(num_shards, dtype=np.uint64)
            np.add.at(digests, shards, contributions)  # uint64 addition wraps
            fingerprints = [int(value) for value in digests]
            for key, shard in zip(batch.keys, shards.tolist()):
                shard_keys[shard].append(key)
        else:
            for key in keys:
                shard, contribution = router.route(key)
                shard_keys[shard].append(key)
                fingerprints[shard] = (fingerprints[shard] + contribution) & _MASK64
        shard_negatives: List[List[Key]] = [[] for _ in range(num_shards)]
        if negatives:
            negatives = list(negatives)
            if np is not None:
                routed = router.shard_of_many(vec.KeyBatch(negatives)).tolist()
            else:
                routed = [router.shard_of(key) for key in negatives]
            for key, shard in zip(negatives, routed):
                shard_negatives[shard].append(key)
        shard_costs: List[Optional[dict]] = [None] * num_shards
        if costs:
            shard_costs = [
                {key: costs[key] for key in group if key in costs}
                for group in shard_negatives
            ]
        return shard_keys, shard_negatives, shard_costs, fingerprints

    @classmethod
    def _build_filters(
        cls,
        backend: BackendSpec,
        backend_kwargs: dict,
        policy,
        shard_keys: List[List[Key]],
        shard_negatives: List[List[Key]],
        shard_costs: List[Optional[dict]],
        shards: Sequence[int],
        workers: Optional[int],
        worker_mode: str,
    ) -> Dict[int, object]:
        """Build the filters for ``shards``, optionally on a worker pool.

        ``worker_mode``: ``"process"`` re-instantiates the (string-named)
        backend in each worker and ships finished shards back as codec
        frames — true CPU parallelism, the mode rebuild latency cares about;
        ``"thread"`` shares the policy object and skips serialization (right
        for policy *instances* and for backends whose build is numpy-bound);
        ``"auto"`` picks process for a *built-in* backend name and thread
        otherwise — a custom ``register_backend`` name may not resolve
        inside a forkserver/spawn worker's fresh interpreter, so auto never
        risks it (pass ``worker_mode="process"`` explicitly to assert your
        registration is importable in workers).
        """
        built: Dict[int, object] = {}
        pending = []
        for shard in shards:
            if shard_keys[shard]:
                pending.append(shard)
            else:
                built[shard] = EmptyShardFilter()
        pool_size = min(workers or 1, len(pending))
        if pool_size <= 1:
            for shard in pending:
                built[shard] = policy.create_filter(
                    shard_keys[shard],
                    negatives=shard_negatives[shard],
                    costs=shard_costs[shard],
                )
            return built
        mode = worker_mode
        if mode == "auto":
            from repro.service.backends import BUILTIN_BACKENDS

            mode = "process" if backend in BUILTIN_BACKENDS else "thread"
        if mode == "process":
            if not isinstance(backend, str):
                raise ConfigurationError(
                    "process workers need a registered backend name (the policy "
                    "is re-instantiated inside each worker); pass "
                    "worker_mode='thread' to parallelise a policy instance"
                )
            from repro.service import codec

            with _process_pool(pool_size) as executor:
                futures = {
                    shard: executor.submit(
                        _build_shard_frame,
                        backend,
                        backend_kwargs,
                        shard_keys[shard],
                        shard_negatives[shard],
                        shard_costs[shard],
                    )
                    for shard in pending
                }
                for shard, future in futures.items():
                    built[shard] = codec.loads(future.result())
        elif mode == "thread":
            with ThreadPoolExecutor(
                max_workers=pool_size, thread_name_prefix="shard-build"
            ) as executor:
                futures = {
                    shard: executor.submit(
                        policy.create_filter,
                        shard_keys[shard],
                        negatives=shard_negatives[shard],
                        costs=shard_costs[shard],
                    )
                    for shard in pending
                }
                for shard, future in futures.items():
                    built[shard] = future.result()
        else:
            raise ConfigurationError(
                f"unknown worker_mode {worker_mode!r}; expected 'auto', "
                "'process' or 'thread'"
            )
        return built

    @classmethod
    def _plan_backends(
        cls,
        num_shards: int,
        backend: BackendSpec,
        backend_kwargs: dict,
        shard_backends: Optional[Mapping[int, object]],
    ) -> List[Tuple[BackendSpec, dict, object, str]]:
        """Resolve the (spec, kwargs, policy, name) that serves each shard.

        ``shard_backends`` maps shard index → an override: either a backend
        spec (which inherits the call's ``backend_kwargs``) or a
        ``(spec, kwargs)`` pair that carries exactly its own kwargs.  Shards
        without an override use the call-level backend.  One policy instance
        is shared per distinct (spec, kwargs), so a homogeneous store still
        resolves exactly one policy and overridden shards build as
        deterministically as any other.
        """
        overrides = dict(shard_backends) if shard_backends else {}
        for shard in overrides:
            if not 0 <= int(shard) < num_shards:
                raise ConfigurationError(
                    f"shard_backends names shard {shard}, but the store has "
                    f"{num_shards} shards"
                )
        cache: Dict[object, Tuple[object, str]] = {}

        def _resolve(spec: BackendSpec, kwargs: dict) -> Tuple[object, str]:
            params = tuple(sorted(kwargs.items()))
            cache_key = (spec, params) if isinstance(spec, str) else (id(spec), params)
            entry = cache.get(cache_key)
            if entry is None:
                policy = resolve_backend(spec, **kwargs)
                entry = (policy, getattr(policy, "name", type(policy).__name__))
                cache[cache_key] = entry
            return entry

        plan: List[Tuple[BackendSpec, dict, object, str]] = []
        for shard in range(num_shards):
            override = overrides.get(shard)
            if override is None:
                spec, kwargs = backend, backend_kwargs
            elif isinstance(override, tuple):
                spec, kwargs = override[0], dict(override[1])
            else:
                spec, kwargs = override, dict(backend_kwargs)
            policy, name = _resolve(spec, kwargs)
            plan.append((spec, kwargs, policy, name))
        return plan

    @classmethod
    def _build_planned(
        cls,
        plan: List[Tuple[BackendSpec, dict, object, str]],
        shard_keys: List[List[Key]],
        shard_negatives: List[List[Key]],
        shard_costs: List[Optional[dict]],
        shards: Sequence[int],
        workers: Optional[int],
        worker_mode: str,
    ) -> Dict[int, object]:
        """Build filters for ``shards``, grouping them by planned policy.

        Each group runs through :meth:`_build_filters` under its own
        backend, so worker-pool semantics and the per-backend
        build-seconds histogram behave identically whether the store is
        homogeneous or mixed.
        """
        built: Dict[int, object] = {}
        groups: Dict[int, List[int]] = {}
        for shard in shards:
            groups.setdefault(id(plan[shard][2]), []).append(shard)
        for members in groups.values():
            spec, kwargs, policy, name = plan[members[0]]
            start = time.perf_counter()
            built.update(
                cls._build_filters(
                    spec,
                    kwargs,
                    policy,
                    shard_keys,
                    shard_negatives,
                    shard_costs,
                    members,
                    workers,
                    worker_mode,
                )
            )
            _observe_build_seconds(name, time.perf_counter() - start)
        return built

    @classmethod
    def build(
        cls,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        num_shards: int = 4,
        backend: BackendSpec = "habf",
        router_seed: int = 0,
        workers: Optional[int] = None,
        worker_mode: str = "auto",
        shard_backends: Optional[Mapping[int, object]] = None,
        **backend_kwargs,
    ) -> "ShardedFilterStore":
        """Partition ``keys`` across ``num_shards`` filters and build each one.

        Negative keys (and their costs) are routed to the same shards their
        hashes select, so each shard's filter is steered only by the negatives
        it can actually be queried with.

        ``workers`` > 1 builds shards concurrently (see
        :meth:`_build_filters` for the mode semantics); the result is
        bit-identical to a sequential build because every backend constructs
        deterministically from its shard's keys.  ``shard_backends``
        overrides the backend per shard (see :meth:`_plan_backends`); when
        the resulting shards diverge the store-level name becomes
        ``"mixed"`` and the per-shard names survive codec round-trips.
        """
        keys = list(keys)
        if not keys:
            raise ConfigurationError("cannot build a sharded store from an empty key set")
        plan = cls._plan_backends(num_shards, backend, backend_kwargs, shard_backends)
        router = ShardRouter(num_shards, seed=router_seed)
        shard_keys, shard_negatives, shard_costs, fingerprints = cls._partition(
            router, keys, negatives, costs
        )
        names = [entry[3] for entry in plan]
        backend_name = names[0] if len(set(names)) == 1 else "mixed"
        built = cls._build_planned(
            plan,
            shard_keys,
            shard_negatives,
            shard_costs,
            range(num_shards),
            workers,
            worker_mode,
        )
        return cls(
            filters=[built[shard] for shard in range(num_shards)],
            router_seed=router_seed,
            backend_name=backend_name,
            shard_key_counts=[len(group) for group in shard_keys],
            shard_fingerprints=fingerprints,
            shard_backend_names=names,
        )

    @classmethod
    def rebuild_from(
        cls,
        previous: "ShardedFilterStore",
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        backend: BackendSpec = "habf",
        changed_keys: Optional[Iterable[Key]] = None,
        workers: Optional[int] = None,
        worker_mode: str = "auto",
        shard_backends: Optional[Mapping[int, object]] = None,
        **backend_kwargs,
    ) -> Tuple["ShardedFilterStore", List[int], List[int]]:
        """Build a successor store, reconstructing only the dirty shards.

        A shard is dirty when its key-set fingerprint (or key count) differs
        from ``previous``, when ``previous`` has no fingerprint for it (e.g.
        a version-1 snapshot), when ``changed_keys`` routes to it — the
        hint lets callers force shards whose *negatives or costs* changed,
        which the positive-key fingerprint cannot see — or when the planned
        backend name differs from the one that built it (an adaptive
        migration).  Clean shards share the previous store's filter objects
        (immutable, so sharing is safe) and keep their per-shard generation;
        dirty shards rebuild (on ``workers`` like :meth:`build`) and
        increment it.

        Returns ``(store, rebuilt_shards, skipped_shards)``.
        """
        keys = list(keys)
        if not keys:
            raise ConfigurationError("cannot rebuild a sharded store from an empty key set")
        router = previous._router
        plan = cls._plan_backends(
            router.num_shards, backend, backend_kwargs, shard_backends
        )
        shard_keys, shard_negatives, shard_costs, fingerprints = cls._partition(
            router, keys, negatives, costs
        )
        names = [entry[3] for entry in plan]
        previous_counts = previous.shard_key_counts
        previous_fingerprints = previous.shard_fingerprints
        previous_names = previous.shard_backend_names
        dirty = set()
        for shard in range(router.num_shards):
            known = previous_fingerprints[shard]
            if (
                known is None
                or known != fingerprints[shard]
                or previous_counts[shard] != len(shard_keys[shard])
                or previous_names[shard] != names[shard]
            ):
                dirty.add(shard)
        if changed_keys is not None:
            for key in changed_keys:
                dirty.add(router.shard_of(key))
        built = cls._build_planned(
            plan,
            shard_keys,
            shard_negatives,
            shard_costs,
            sorted(dirty),
            workers,
            worker_mode,
        )
        previous_generations = previous.shard_generations
        filters: List[object] = []
        generations: List[int] = []
        final_names: List[str] = []
        for shard in range(router.num_shards):
            if shard in dirty:
                filters.append(built[shard])
                generations.append(previous_generations[shard] + 1)
                final_names.append(names[shard])
            else:
                filters.append(previous.filters[shard])
                generations.append(previous_generations[shard])
                final_names.append(previous_names[shard])
        store = cls(
            filters=filters,
            router_seed=previous.router_seed,
            backend_name=(
                final_names[0] if len(set(final_names)) == 1 else "mixed"
            ),
            shard_key_counts=[len(group) for group in shard_keys],
            shard_generations=generations,
            shard_fingerprints=fingerprints,
            shard_backend_names=final_names,
        )
        rebuilt = sorted(dirty)
        skipped = [shard for shard in range(router.num_shards) if shard not in dirty]
        return store, rebuilt, skipped

    def replace_shards(
        self,
        replacements: Mapping[int, Tuple[object, int, int, Optional[int], str]],
    ) -> "ShardedFilterStore":
        """A successor store with ``replacements`` swapped in, rest shared.

        ``replacements`` maps shard index → ``(filter, key_count,
        generation, fingerprint, backend_name)``.  Untouched shards share
        this store's filter objects by identity and keep their metadata —
        the assembly the replication tier uses to apply an O(dirty-shard)
        delta on a follower (clean shards may be lazy disk proxies; they
        pass through untouched and stay cold).
        """
        num_shards = self.num_shards
        filters = list(self._filters)
        counts = self.shard_key_counts
        generations = self.shard_generations
        fingerprints = self.shard_fingerprints
        names = self.shard_backend_names
        for shard, parts in replacements.items():
            if not 0 <= shard < num_shards:
                raise ConfigurationError(
                    f"replacement names shard {shard}, but the store has "
                    f"{num_shards} shards"
                )
            filt, key_count, generation, fingerprint, backend_name = parts
            filters[shard] = filt
            counts[shard] = key_count
            generations[shard] = generation
            fingerprints[shard] = fingerprint
            names[shard] = backend_name
        return ShardedFilterStore.from_parts(
            filters=filters,
            router_seed=self._router_seed,
            backend_name=names[0] if len(set(names)) == 1 else "mixed",
            shard_key_counts=counts,
            shard_generations=generations,
            shard_fingerprints=fingerprints,
            shard_backend_names=names,
        )

    @classmethod
    def from_parts(
        cls,
        filters: Sequence[object],
        router_seed: int,
        backend_name: str,
        shard_key_counts: Optional[Sequence[int]] = None,
        shard_generations: Optional[Sequence[int]] = None,
        shard_fingerprints: Optional[Sequence[Optional[int]]] = None,
        shard_backend_names: Optional[Sequence[str]] = None,
    ) -> "ShardedFilterStore":
        """Reassemble a store from decoded parts (used by the codec)."""
        return cls(
            filters=filters,
            router_seed=router_seed,
            backend_name=backend_name,
            shard_key_counts=shard_key_counts,
            shard_generations=shard_generations,
            shard_fingerprints=shard_fingerprints,
            shard_backend_names=shard_backend_names,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of shards (fixed at build time)."""
        return len(self._filters)

    @property
    def router_seed(self) -> int:
        """Seed the router derives its placement salt from."""
        return self._router_seed

    @property
    def backend_name(self) -> str:
        """Name of the backend the shard filters were built with."""
        return self._backend_name

    @property
    def filters(self) -> List[object]:
        """The per-shard filters, in shard order (shared, not copied)."""
        return self._filters

    @property
    def shard_key_counts(self) -> List[int]:
        """Positive keys per shard at build time."""
        return [stats.num_keys for stats in self._stats]

    @property
    def shard_generations(self) -> List[int]:
        """Per-shard rebuild counters (a shard's generation only moves when
        that shard is actually reconstructed; contrast the service-level
        generation, which moves on every snapshot swap)."""
        return [stats.generation for stats in self._stats]

    @property
    def shard_fingerprints(self) -> List[Optional[int]]:
        """Order-independent digests of each shard's key multiset (``None``
        when unknown, e.g. a store assembled from parts without them)."""
        return list(self._shard_fingerprints)

    @property
    def shard_backend_names(self) -> List[str]:
        """Registered backend name serving each shard, in shard order.

        Homogeneous stores repeat :attr:`backend_name`; adaptive migrations
        make entries diverge, at which point the store-level name reads
        ``"mixed"`` and these names are what the codec persists.
        """
        return list(self._shard_backend_names)

    def shard_stats(self) -> List[ShardStats]:
        """Point-in-time copies of the per-shard counters."""
        with self._stats_lock:
            return [replace(stats) for stats in self._stats]

    def num_keys(self) -> int:
        """Total positive keys across all shards."""
        return sum(stats.num_keys for stats in self._stats)

    def _filter_bits(self, shard: int) -> int:
        size = getattr(self._filters[shard], "size_in_bits", None)
        return int(size()) if callable(size) else 0

    def size_in_bits(self) -> int:
        """Total serialized filter payload across shards, in bits."""
        return sum(self._filter_bits(shard) for shard in range(len(self._filters)))

    def size_in_bytes(self) -> int:
        """Total filter payload in bytes (rounded up per shard).

        This is the footprint replicas share when the store is served from a
        :class:`~repro.service.multiproc.SharedFrameArena` — the multiproc
        benchmark compares per-extra-replica RSS growth against it.
        """
        return sum(
            (self._filter_bits(shard) + 7) // 8 for shard in range(len(self._filters))
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def shard_of(self, key: Key) -> int:
        """Expose the routing decision (useful for debugging placement)."""
        return self._router.shard_of(key)

    def shards_of_many(self, batch: "vec.KeyBatch"):
        """Vectorized routing for an encoded batch, or ``None`` without numpy.

        One router pass over the whole batch; callers that need a shard per
        key (the FPR estimator shadow-sampling a large positive batch) use
        this instead of re-hashing each key through :meth:`shard_of`.
        """
        if vec.numpy_or_none() is None:
            return None
        return self._router.shard_of_many(batch)

    def query(self, key: Key) -> bool:
        """Membership test for one key against its shard's filter."""
        shard = self._router.shard_of(key)
        answer = self._filters[shard].contains(key)
        with self._stats_lock:
            stats = self._stats[shard]
            stats.queries += 1
            if answer:
                stats.positives += 1
        return answer

    def query_many(self, keys: "vec.BatchLike") -> List[bool]:
        """Batch membership test, in input order.

        With numpy available the whole batch is encoded once, the shard
        partition is one vectorized router pass, and each shard's group is
        answered with one engine call (sharing the encoded sub-batch with the
        filter's array program).  Callers that already hold an encoded
        :class:`~repro.hashing.vectorized.KeyBatch` (the asyncio
        micro-batcher encodes its flush window before dispatch) may pass it
        directly and the encoding is reused.  Without numpy, keys are grouped
        per shard and answered through each filter's ``contains_many``
        fallback.
        """
        np = vec.numpy_or_none()
        if isinstance(keys, vec.KeyBatch):
            if np is not None and len(keys):
                return self._query_many_vectorized(np, keys)
            keys = list(keys.keys)
        else:
            keys = list(keys)
            if np is not None and keys:
                return self._query_many_vectorized(np, vec.KeyBatch(keys))
        results: List[bool] = [False] * len(keys)
        groups: dict = {}
        for position, key in enumerate(keys):
            groups.setdefault(self._router.shard_of(key), []).append(position)
        for shard, positions in groups.items():
            filt = self._filters[shard]
            shard_keys = [keys[position] for position in positions]
            with stage("shard_probe", shard=shard, backend=self._backend_name):
                batch = getattr(filt, "contains_many", None)
                if batch is not None:
                    answers = batch(shard_keys)
                else:
                    answers = [filt.contains(key) for key in shard_keys]
            hits = 0
            for position, answer in zip(positions, answers):
                results[position] = bool(answer)
                if answer:
                    hits += 1
            with self._stats_lock:
                stats = self._stats[shard]
                stats.queries += len(positions)
                stats.positives += hits
        return results

    def _query_many_vectorized(self, np, batch: "vec.KeyBatch") -> List[bool]:
        """Engine path of :meth:`query_many`: one partition, one gather."""
        shards = self._router.shard_of_many(batch)
        results = np.zeros(len(batch), dtype=bool)
        for shard in np.unique(shards):
            positions = np.flatnonzero(shards == shard)
            filt = self._filters[int(shard)]
            sub = batch.take(positions)
            with stage("shard_probe", shard=int(shard), backend=self._backend_name):
                answers = None
                batch_fn = getattr(filt, "_contains_batch", None)
                if batch_fn is not None:
                    answers = batch_fn(sub)
                if answers is None:
                    contains_many = getattr(filt, "contains_many", None)
                    if contains_many is not None:
                        answers = np.asarray(contains_many(sub.keys), dtype=bool)
                    else:
                        answers = np.fromiter(
                            (filt.contains(key) for key in sub.keys),
                            dtype=bool,
                            count=len(sub.keys),
                        )
            results[positions] = answers
            with self._stats_lock:
                stats = self._stats[int(shard)]
                stats.queries += int(positions.size)
                stats.positives += int(np.count_nonzero(answers))
        return results.tolist()

    def record_shard_traffic(self, keys: "vec.BatchLike", verdicts: Sequence[bool]):
        """Fold externally-answered traffic into the per-shard counters.

        The multi-process pool answers queries inside replica processes,
        whose stores never touch the parent's counters; the parent feeds
        each dispatched window back through this so adaptive scoring sees
        per-shard queries/positives for replica traffic too.  Returns the
        routed shard per key (an int64 ndarray with numpy, a plain list
        without) so callers can hand the same routing pass to the FPR
        estimator instead of re-hashing the window.
        """
        np = vec.numpy_or_none()
        if np is not None:
            batch = keys if isinstance(keys, vec.KeyBatch) else vec.KeyBatch(list(keys))
            if not len(batch):
                return np.zeros(0, dtype=np.int64)
            shards = self._router.shard_of_many(batch)
            hits = np.asarray(verdicts, dtype=bool)
            with self._stats_lock:
                for shard in np.unique(shards):
                    mask = shards == shard
                    stats = self._stats[int(shard)]
                    stats.queries += int(np.count_nonzero(mask))
                    stats.positives += int(np.count_nonzero(hits[mask]))
            return shards
        plain = list(keys.keys) if isinstance(keys, vec.KeyBatch) else list(keys)
        shards = [self._router.shard_of(key) for key in plain]
        with self._stats_lock:
            for shard, verdict in zip(shards, verdicts):
                stats = self._stats[shard]
                stats.queries += 1
                if verdict:
                    stats.positives += 1
        return shards

    def __contains__(self, key: Key) -> bool:
        return self.query(key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedFilterStore(shards={self.num_shards}, backend={self._backend_name!r}, "
            f"keys={self.num_keys()})"
        )
