"""Key-sharded filter store: N independently-built filters behind one router.

Sharding serves three purposes the single-filter core cannot:

* **construction scale** — TPJO construction is superlinear-ish in practice;
  building N filters over N-times-smaller key sets is faster and bounds the
  per-filter hash-family pressure;
* **rebuild granularity** — the serving layer swaps whole stores atomically,
  and smaller shards keep each build step short;
* **batch locality** — ``query_many`` groups a batch's keys per shard and
  answers each group with one ``contains_many`` call, the pattern a gateway
  checking a page full of URLs produces.

The router hashes keys with a hash that is *independent* of every filter's
own hash family (a salted xxhash), so shard placement never correlates with
filter false positives.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Iterable, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key, mix64, normalize_key
from repro.hashing.primitives import xxhash
from repro.service.backends import BackendSpec, resolve_backend
from repro.service.stats import ShardStats


class EmptyShardFilter:
    """Filter for a shard that received no keys: rejects everything.

    (Contrast :class:`repro.kvstore.filter_policy.NoFilterPolicy`'s
    always-contains filter, which is the safe default when a *table* has no
    filter; a membership shard with no keys genuinely holds nothing.)
    """

    algorithm_name = "empty"

    def contains(self, key: Key) -> bool:
        return False

    def __contains__(self, key: Key) -> bool:
        return False

    def contains_many(self, keys: Iterable[Key]) -> List[bool]:
        return [False for _ in keys]

    def _contains_batch(self, batch):
        np = vec.numpy_or_none()
        return np.zeros(len(batch), dtype=bool)

    def size_in_bits(self) -> int:
        return 0


class ShardRouter:
    """Deterministic key → shard mapping, independent of filter hashing."""

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        self._num_shards = num_shards
        self._salt = mix64(seed ^ 0x5348_4152_4453_4545)  # "SHARDSEE"

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def seed_salt(self) -> int:
        return self._salt

    def shard_of(self, key: Key) -> int:
        """Return the shard index ``key`` routes to."""
        return mix64(xxhash(normalize_key(key)) ^ self._salt) % self._num_shards

    def shard_of_many(self, batch: "vec.KeyBatch"):
        """Vector form of :meth:`shard_of` over an encoded batch.

        Returns an int64 ndarray of shard indexes; requires numpy (callers
        gate on the engine and fall back to per-key routing without it).
        """
        np = vec.numpy_or_none()
        values = vec.hash_batch(xxhash, batch)
        salted = vec.mix64(values ^ np.uint64(self._salt))
        return (salted % np.uint64(self._num_shards)).astype(np.int64)


class ShardedFilterStore:
    """A fixed set of filters, one per shard, built by a shared backend.

    Build one with :meth:`build`; query with :meth:`query` /
    :meth:`query_many`; persist with :func:`repro.service.codec.dumps` (the
    whole store is one frame) and revive with ``loads``.
    """

    def __init__(
        self,
        filters: Sequence[object],
        router_seed: int = 0,
        backend_name: str = "unknown",
        shard_key_counts: Optional[Sequence[int]] = None,
    ) -> None:
        if not filters:
            raise ConfigurationError("a sharded store needs at least one shard")
        self._filters: List[object] = list(filters)
        self._router = ShardRouter(len(self._filters), seed=router_seed)
        self._router_seed = router_seed
        self._backend_name = backend_name
        counts = list(shard_key_counts) if shard_key_counts is not None else [0] * len(self._filters)
        if len(counts) != len(self._filters):
            raise ConfigurationError(
                f"shard_key_counts length {len(counts)} != shard count {len(self._filters)}"
            )
        self._stats = [
            ShardStats(shard=index, num_keys=counts[index], size_in_bits=self._filter_bits(index))
            for index in range(len(self._filters))
        ]
        # Counter updates are read-modify-write; the serving layer queries
        # from multiple threads, so they need their own lock (queries
        # themselves touch only immutable filter state and stay lock-free).
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        num_shards: int = 4,
        backend: BackendSpec = "habf",
        router_seed: int = 0,
        **backend_kwargs,
    ) -> "ShardedFilterStore":
        """Partition ``keys`` across ``num_shards`` filters and build each one.

        Negative keys (and their costs) are routed to the same shards their
        hashes select, so each shard's filter is steered only by the negatives
        it can actually be queried with.
        """
        keys = list(keys)
        if not keys:
            raise ConfigurationError("cannot build a sharded store from an empty key set")
        policy = resolve_backend(backend, **backend_kwargs)
        router = ShardRouter(num_shards, seed=router_seed)
        shard_keys: List[List[Key]] = [[] for _ in range(num_shards)]
        for key in keys:
            shard_keys[router.shard_of(key)].append(key)
        shard_negatives: List[List[Key]] = [[] for _ in range(num_shards)]
        for key in negatives:
            shard_negatives[router.shard_of(key)].append(key)
        filters: List[object] = []
        for shard in range(num_shards):
            if not shard_keys[shard]:
                filters.append(EmptyShardFilter())
                continue
            shard_costs = None
            if costs:
                shard_costs = {
                    key: costs[key] for key in shard_negatives[shard] if key in costs
                }
            filters.append(
                policy.create_filter(
                    shard_keys[shard],
                    negatives=shard_negatives[shard],
                    costs=shard_costs,
                )
            )
        return cls(
            filters=filters,
            router_seed=router_seed,
            backend_name=getattr(policy, "name", type(policy).__name__),
            shard_key_counts=[len(group) for group in shard_keys],
        )

    @classmethod
    def from_parts(
        cls,
        filters: Sequence[object],
        router_seed: int,
        backend_name: str,
        shard_key_counts: Optional[Sequence[int]] = None,
    ) -> "ShardedFilterStore":
        """Reassemble a store from decoded parts (used by the codec)."""
        return cls(
            filters=filters,
            router_seed=router_seed,
            backend_name=backend_name,
            shard_key_counts=shard_key_counts,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of shards (fixed at build time)."""
        return len(self._filters)

    @property
    def router_seed(self) -> int:
        """Seed the router derives its placement salt from."""
        return self._router_seed

    @property
    def backend_name(self) -> str:
        """Name of the backend the shard filters were built with."""
        return self._backend_name

    @property
    def filters(self) -> List[object]:
        """The per-shard filters, in shard order (shared, not copied)."""
        return self._filters

    @property
    def shard_key_counts(self) -> List[int]:
        """Positive keys per shard at build time."""
        return [stats.num_keys for stats in self._stats]

    def shard_stats(self) -> List[ShardStats]:
        """Point-in-time copies of the per-shard counters."""
        with self._stats_lock:
            return [replace(stats) for stats in self._stats]

    def num_keys(self) -> int:
        """Total positive keys across all shards."""
        return sum(stats.num_keys for stats in self._stats)

    def _filter_bits(self, shard: int) -> int:
        size = getattr(self._filters[shard], "size_in_bits", None)
        return int(size()) if callable(size) else 0

    def size_in_bits(self) -> int:
        """Total serialized filter payload across shards, in bits."""
        return sum(self._filter_bits(shard) for shard in range(len(self._filters)))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def shard_of(self, key: Key) -> int:
        """Expose the routing decision (useful for debugging placement)."""
        return self._router.shard_of(key)

    def query(self, key: Key) -> bool:
        """Membership test for one key against its shard's filter."""
        shard = self._router.shard_of(key)
        answer = self._filters[shard].contains(key)
        with self._stats_lock:
            stats = self._stats[shard]
            stats.queries += 1
            if answer:
                stats.positives += 1
        return answer

    def query_many(self, keys: "vec.BatchLike") -> List[bool]:
        """Batch membership test, in input order.

        With numpy available the whole batch is encoded once, the shard
        partition is one vectorized router pass, and each shard's group is
        answered with one engine call (sharing the encoded sub-batch with the
        filter's array program).  Callers that already hold an encoded
        :class:`~repro.hashing.vectorized.KeyBatch` (the asyncio
        micro-batcher encodes its flush window before dispatch) may pass it
        directly and the encoding is reused.  Without numpy, keys are grouped
        per shard and answered through each filter's ``contains_many``
        fallback.
        """
        np = vec.numpy_or_none()
        if isinstance(keys, vec.KeyBatch):
            if np is not None and len(keys):
                return self._query_many_vectorized(np, keys)
            keys = list(keys.keys)
        else:
            keys = list(keys)
            if np is not None and keys:
                return self._query_many_vectorized(np, vec.KeyBatch(keys))
        results: List[bool] = [False] * len(keys)
        groups: dict = {}
        for position, key in enumerate(keys):
            groups.setdefault(self._router.shard_of(key), []).append(position)
        for shard, positions in groups.items():
            filt = self._filters[shard]
            shard_keys = [keys[position] for position in positions]
            batch = getattr(filt, "contains_many", None)
            if batch is not None:
                answers = batch(shard_keys)
            else:
                answers = [filt.contains(key) for key in shard_keys]
            hits = 0
            for position, answer in zip(positions, answers):
                results[position] = bool(answer)
                if answer:
                    hits += 1
            with self._stats_lock:
                stats = self._stats[shard]
                stats.queries += len(positions)
                stats.positives += hits
        return results

    def _query_many_vectorized(self, np, batch: "vec.KeyBatch") -> List[bool]:
        """Engine path of :meth:`query_many`: one partition, one gather."""
        shards = self._router.shard_of_many(batch)
        results = np.zeros(len(batch), dtype=bool)
        for shard in np.unique(shards):
            positions = np.flatnonzero(shards == shard)
            filt = self._filters[int(shard)]
            sub = batch.take(positions)
            answers = None
            batch_fn = getattr(filt, "_contains_batch", None)
            if batch_fn is not None:
                answers = batch_fn(sub)
            if answers is None:
                contains_many = getattr(filt, "contains_many", None)
                if contains_many is not None:
                    answers = np.asarray(contains_many(sub.keys), dtype=bool)
                else:
                    answers = np.fromiter(
                        (filt.contains(key) for key in sub.keys),
                        dtype=bool,
                        count=len(sub.keys),
                    )
            results[positions] = answers
            with self._stats_lock:
                stats = self._stats[int(shard)]
                stats.queries += int(positions.size)
                stats.positives += int(np.count_nonzero(answers))
        return results.tolist()

    def __contains__(self, key: Key) -> bool:
        return self.query(key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedFilterStore(shards={self.num_shards}, backend={self._backend_name!r}, "
            f"keys={self.num_keys()})"
        )
