"""Cluster replication: O(dirty-shard) snapshot deltas over the wire.

The serving stack ends at one box without this module: rebuilds are driven
in-process and a new generation can only reach other processes through the
local shared-memory arena or a shared disk path.  Replication turns the
reproduction into a one-builder/N-follower topology:

* **Delta frames** — :func:`make_delta` diffs two generations of a
  :class:`~repro.service.shards.ShardedFilterStore` and emits a
  :class:`SnapshotDelta` carrying *only* the dirty shards' codec frames plus
  per-shard generations/fingerprints for the clean ones.  Incremental
  rebuilds already share clean shards' filter objects by identity and stamp
  per-shard key-multiset fingerprints, so the diff costs nothing beyond the
  serialization of what actually changed.  :func:`apply_delta` validates the
  clean-shard expectations against the follower's base snapshot and
  assembles the successor store; :func:`apply_to_service` swaps it in
  through the existing ``install_snapshot`` path (atomic hot-swap, and an
  O(dirty) disk commit when the follower runs the disk tier).

* **Wire protocol** — :class:`BuilderPublisher` (builder side) and
  :class:`FollowerClient` (follower side) speak a length-prefixed TCP
  protocol framed exactly like the codec (magic + version + type + length,
  CRC-32 trailer).  A follower announces its base generation in ``HELLO``;
  the publisher ships a delta from any *retained* base — state-based, so one
  frame covers any gap — and falls back to a full snapshot when the
  follower's base is too stale (or the follower NACKs an apply).  Each
  follower connection retries with exponential backoff and re-syncs from
  whatever generation it actually serves.

* **Telemetry** — ``repro_repl_*`` metric families: deltas/bytes shipped
  per kind on the publisher, deltas applied / apply latency / staleness on
  the follower, and a per-follower lag gauge the builder exports.

Frame layout (``HDLT``, version 1)::

    offset 0   magic      4 bytes  b"HDLT"
    offset 4   version    1 byte   currently 1
    offset 5   kind       1 byte   1 = delta, 2 = full snapshot
    offset 6   length     4 bytes  payload size (big-endian)
    offset 10  payload    `length` bytes
    offset -4  crc32      4 bytes  over version + kind + length + payload

Both payload kinds open with ``base_generation u64 | new_generation u64 |
num_shards u32 | router_seed u64``.  A *full* payload then carries the whole
store as one nested codec frame; a *delta* payload carries, per shard in
order, ``dirty u8 | key_count u64 | shard_generation u32 | has_fp u8 |
fingerprint u64 | backend_name str`` plus — for dirty shards only — the
shard filter's nested codec frame.
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CodecError, ServiceError
from repro.obs import Registry, default_registry
from repro.service import codec
from repro.service.codec import _Reader, _Writer
from repro.service.shards import ShardedFilterStore

__all__ = [
    "DELTA_MAGIC",
    "DELTA_VERSION",
    "KIND_DELTA",
    "KIND_FULL",
    "ShardPatch",
    "SnapshotDelta",
    "StaleBaseError",
    "make_delta",
    "full_snapshot",
    "encode_delta",
    "decode_delta",
    "apply_delta",
    "apply_to_service",
    "BuilderPublisher",
    "FollowerClient",
]

#: Magic bytes opening every encoded snapshot delta.
DELTA_MAGIC = b"HDLT"
#: Current delta-frame version (the only one this module reads).
DELTA_VERSION = 1
#: Frame kind: a diff against a named base generation.
KIND_DELTA = 1
#: Frame kind: a complete store (the stale-follower fallback).
KIND_FULL = 2

_DELTA_HEADER = struct.Struct(">4sBBI")

#: Distinguishes publisher/follower instances inside shared metric families.
_PUBLISHER_IDS = itertools.count(1)
_FOLLOWER_IDS = itertools.count(1)


class StaleBaseError(ServiceError):
    """A delta's base generation does not match the follower's snapshot.

    The typed signal for "this delta cannot apply here": the follower's
    serving generation, shard geometry, or clean-shard state diverged from
    what the delta was diffed against.  The wire layer answers it with a
    NACK, which makes the publisher fall back to a full snapshot.
    """


@dataclass(frozen=True)
class ShardPatch:
    """One dirty shard inside a delta: its metadata plus its codec frame."""

    shard: int
    key_count: int
    generation: int
    fingerprint: Optional[int]
    backend_name: str
    frame: bytes


@dataclass(frozen=True)
class _ShardRecord:
    """A clean shard's expected state on the follower (validated on apply)."""

    key_count: int
    generation: int
    fingerprint: Optional[int]
    backend_name: str


@dataclass(frozen=True)
class SnapshotDelta:
    """A decoded replication frame: either a diff or a full snapshot.

    Attributes:
        kind: :data:`KIND_DELTA` or :data:`KIND_FULL`.
        base_generation: The service generation the diff was taken against
            (0 for full snapshots, which need no base).
        new_generation: The service generation applying this frame installs.
        num_shards: Shard count of the target store.
        router_seed: Router seed of the target store (placement identity).
        records: Per-shard expected state, in shard order (delta kind only;
            dirty shards' records describe the *new* state).
        patches: The dirty shards' frames, in shard order (delta kind only).
        store_frame: The whole store's codec frame (full kind only).
    """

    kind: int
    base_generation: int
    new_generation: int
    num_shards: int
    router_seed: int
    records: Tuple[_ShardRecord, ...] = ()
    patches: Tuple[ShardPatch, ...] = ()
    store_frame: Optional[bytes] = None

    @property
    def dirty_shards(self) -> List[int]:
        """Shard indexes this delta replaces (empty for full snapshots)."""
        return [patch.shard for patch in self.patches]

    def num_bytes(self) -> int:
        """Size of this delta's encoded frame."""
        return len(encode_delta(self))


# --------------------------------------------------------------------- #
# Diffing and applying
# --------------------------------------------------------------------- #
def _shard_state(store: ShardedFilterStore, shard: int) -> _ShardRecord:
    return _ShardRecord(
        key_count=store.shard_key_counts[shard],
        generation=store.shard_generations[shard],
        fingerprint=store.shard_fingerprints[shard],
        backend_name=store.shard_backend_names[shard],
    )


def _records_match(expected: _ShardRecord, actual: _ShardRecord) -> bool:
    """Whether a clean-shard expectation matches the follower's state.

    Fingerprints are the strong check but only when both sides know them
    (a store assembled from parts may not); counts, per-shard generations
    and backend names must always agree.
    """
    if (
        expected.fingerprint is not None
        and actual.fingerprint is not None
        and expected.fingerprint != actual.fingerprint
    ):
        return False
    return (
        expected.key_count == actual.key_count
        and expected.generation == actual.generation
        and expected.backend_name == actual.backend_name
    )


def make_delta(
    old_snapshot,
    new_store: ShardedFilterStore,
    new_generation: Optional[int] = None,
) -> SnapshotDelta:
    """Diff ``new_store`` against a base snapshot into a :class:`SnapshotDelta`.

    ``old_snapshot`` is anything with ``.store`` and ``.generation`` (the
    service's :class:`~repro.service.server.Snapshot` dataclass).  A shard is
    *clean* when the new store shares the base's filter object by identity —
    exactly what incremental rebuilds produce for untouched shards, across
    any number of chained generations — or when both sides carry equal
    fingerprints with matching counts/generations/backends.  Every other
    shard's filter is serialized into the delta.

    Raises:
        ServiceError: when the two stores' shard geometry (count or router
            seed) differs — a delta cannot describe a re-sharding — or when
            ``new_generation`` does not move past the base.
    """
    base_store: ShardedFilterStore = old_snapshot.store
    base_generation = int(old_snapshot.generation)
    if (
        base_store.num_shards != new_store.num_shards
        or base_store.router_seed != new_store.router_seed
    ):
        raise ServiceError(
            "cannot diff stores with different shard geometry: base has "
            f"{base_store.num_shards} shards (seed {base_store.router_seed}), "
            f"new has {new_store.num_shards} (seed {new_store.router_seed})"
        )
    if new_generation is None:
        new_generation = base_generation + 1
    if new_generation <= base_generation:
        raise ServiceError(
            f"delta generation must move forward: {new_generation} <= "
            f"base {base_generation}"
        )
    records: List[_ShardRecord] = []
    patches: List[ShardPatch] = []
    for shard in range(new_store.num_shards):
        state = _shard_state(new_store, shard)
        records.append(state)
        clean = base_store.filters[shard] is new_store.filters[shard] or (
            _records_match(_shard_state(base_store, shard), state)
            and state.fingerprint is not None
        )
        if not clean:
            patches.append(
                ShardPatch(
                    shard=shard,
                    key_count=state.key_count,
                    generation=state.generation,
                    fingerprint=state.fingerprint,
                    backend_name=state.backend_name,
                    frame=codec.dumps(new_store.filters[shard]),
                )
            )
    return SnapshotDelta(
        kind=KIND_DELTA,
        base_generation=base_generation,
        new_generation=new_generation,
        num_shards=new_store.num_shards,
        router_seed=new_store.router_seed,
        records=tuple(records),
        patches=tuple(patches),
    )


def full_snapshot(store: ShardedFilterStore, generation: int) -> SnapshotDelta:
    """Wrap a whole store as a :data:`KIND_FULL` frame (the stale fallback)."""
    if generation < 1:
        raise ServiceError(f"snapshot generation must be >= 1, got {generation}")
    return SnapshotDelta(
        kind=KIND_FULL,
        base_generation=0,
        new_generation=generation,
        num_shards=store.num_shards,
        router_seed=store.router_seed,
        store_frame=codec.dumps(store),
    )


def apply_delta(snapshot, delta: SnapshotDelta) -> ShardedFilterStore:
    """Assemble the successor store a delta describes; pure (no service swap).

    For :data:`KIND_FULL` frames the base ``snapshot`` is ignored and the
    embedded store decodes directly.  For diffs, the base snapshot must
    serve exactly ``delta.base_generation`` with matching geometry, and
    every clean shard's state must match the delta's expectation — clean
    shards are then *shared by reference* from the base store (lazy disk
    proxies included), dirty shards decode from their patch frames.

    Raises:
        StaleBaseError: base generation, geometry or clean-shard state
            mismatch (the caller should fetch a full snapshot).
        CodecError: a patch frame is corrupt or decodes to a non-filter.
    """
    if delta.kind == KIND_FULL:
        store = codec.loads(delta.store_frame)
        if not isinstance(store, ShardedFilterStore):
            raise CodecError(
                f"full-snapshot frame decodes to {type(store).__name__}, "
                "expected a ShardedFilterStore"
            )
        return store
    base_store: ShardedFilterStore = snapshot.store
    base_generation = int(snapshot.generation)
    if base_generation != delta.base_generation:
        raise StaleBaseError(
            f"delta diffs against generation {delta.base_generation} but the "
            f"follower serves {base_generation}"
        )
    if (
        base_store.num_shards != delta.num_shards
        or base_store.router_seed != delta.router_seed
    ):
        raise StaleBaseError(
            f"delta targets {delta.num_shards} shards (seed "
            f"{delta.router_seed}) but the follower store has "
            f"{base_store.num_shards} (seed {base_store.router_seed})"
        )
    dirty = {patch.shard for patch in delta.patches}
    for shard in range(delta.num_shards):
        if shard in dirty:
            continue
        if not _records_match(delta.records[shard], _shard_state(base_store, shard)):
            raise StaleBaseError(
                f"clean shard {shard} diverged from the delta's expectation "
                "(fingerprint/count/generation/backend mismatch)"
            )
    replacements: Dict[int, tuple] = {}
    for patch in delta.patches:
        filt = codec.loads(patch.frame)
        replacements[patch.shard] = (
            filt,
            patch.key_count,
            patch.generation,
            patch.fingerprint,
            patch.backend_name,
        )
    return base_store.replace_shards(replacements)


def apply_to_service(service, delta: Union[SnapshotDelta, bytes]) -> int:
    """Apply a delta (or its encoded bytes) to a service; returns the generation.

    ``service`` is anything exposing the ``snapshot`` /
    ``install_snapshot`` surface — :class:`~repro.service.server.\
MembershipService` and :class:`~repro.service.multiproc.ReplicaPool` both
    do.  The swap rides the existing ``install_snapshot`` path, so it is
    atomic for queries, rolls a pool's whole fleet, and — in disk mode —
    commits incrementally (only the dirty shards' frames are appended).

    Raises:
        StaleBaseError: the delta needs a base this service does not serve.
        CodecError: the frame (or a nested patch) is corrupt.
        ServiceError: the install itself is invalid (e.g. a generation that
            does not move the service forward).
    """
    if isinstance(delta, (bytes, bytearray, memoryview)):
        delta = decode_delta(delta)
    if delta.kind == KIND_FULL:
        store = apply_delta(None, delta)
        return service.install_snapshot(store, generation=delta.new_generation)
    snapshot = service.snapshot
    if snapshot is None:
        raise StaleBaseError(
            "the follower has no snapshot yet; it needs a full snapshot first"
        )
    store = apply_delta(snapshot, delta)
    return service.install_snapshot(
        store,
        generation=delta.new_generation,
        rebuilt_shards=delta.dirty_shards,
    )


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #
def encode_delta(delta: SnapshotDelta) -> bytes:
    """Serialize a :class:`SnapshotDelta` into one CRC-checked frame."""
    if delta.kind not in (KIND_DELTA, KIND_FULL):
        raise CodecError(f"unknown delta kind {delta.kind}")
    writer = _Writer()
    writer.u64(delta.base_generation)
    writer.u64(delta.new_generation)
    writer.u32(delta.num_shards)
    writer.u64(delta.router_seed)
    if delta.kind == KIND_FULL:
        if delta.store_frame is None:
            raise CodecError("a full-snapshot delta carries no store frame")
        writer.bytes_field(delta.store_frame)
    else:
        if len(delta.records) != delta.num_shards:
            raise CodecError(
                f"delta records {len(delta.records)} != shard count "
                f"{delta.num_shards}"
            )
        frames = {patch.shard: patch.frame for patch in delta.patches}
        for shard, record in enumerate(delta.records):
            frame = frames.get(shard)
            writer.u8(0 if frame is None else 1)
            writer.u64(record.key_count)
            writer.u32(record.generation)
            writer.u8(0 if record.fingerprint is None else 1)
            writer.u64(record.fingerprint or 0)
            writer.str_field(record.backend_name)
            if frame is not None:
                writer.bytes_field(frame)
    payload = writer.getvalue()
    header = _DELTA_HEADER.pack(DELTA_MAGIC, DELTA_VERSION, delta.kind, len(payload))
    crc = zlib.crc32(header[4:] + payload)
    return header + payload + struct.pack(">I", crc)


def decode_delta(data) -> SnapshotDelta:
    """Decode one delta frame; every malformation raises :class:`CodecError`."""
    if len(data) < _DELTA_HEADER.size + 4:
        raise CodecError(
            f"delta frame too short: {len(data)} bytes < minimum "
            f"{_DELTA_HEADER.size + 4}"
        )
    data = bytes(data)
    magic, version, kind, length = _DELTA_HEADER.unpack_from(data)
    if magic != DELTA_MAGIC:
        raise CodecError(f"bad delta magic {magic!r} (expected {DELTA_MAGIC!r})")
    if version != DELTA_VERSION:
        raise CodecError(f"unsupported delta version {version}")
    if kind not in (KIND_DELTA, KIND_FULL):
        raise CodecError(f"unknown delta kind {kind}")
    end = _DELTA_HEADER.size + length
    if len(data) != end + 4:
        raise CodecError(
            f"delta length mismatch: header declares {length} payload bytes "
            f"but frame holds {len(data) - _DELTA_HEADER.size - 4}"
        )
    (stored_crc,) = struct.unpack_from(">I", data, end)
    actual_crc = zlib.crc32(data[4:end])
    if stored_crc != actual_crc:
        raise CodecError(
            f"delta checksum mismatch: stored {stored_crc:#010x}, computed "
            f"{actual_crc:#010x}"
        )
    reader = _Reader(data[_DELTA_HEADER.size : end])
    try:
        base_generation = reader.u64()
        new_generation = reader.u64()
        num_shards = reader.u32()
        router_seed = reader.u64()
        if new_generation <= base_generation:
            raise CodecError(
                f"delta generations do not move forward: {new_generation} <= "
                f"{base_generation}"
            )
        if num_shards < 1:
            raise CodecError("delta frame declares zero shards")
        if kind == KIND_FULL:
            store_frame = bytes(reader.bytes_field())
            reader.expect_end()
            return SnapshotDelta(
                kind=KIND_FULL,
                base_generation=base_generation,
                new_generation=new_generation,
                num_shards=num_shards,
                router_seed=router_seed,
                store_frame=store_frame,
            )
        records: List[_ShardRecord] = []
        patches: List[ShardPatch] = []
        for shard in range(num_shards):
            is_dirty = reader.u8()
            if is_dirty not in (0, 1):
                raise CodecError(f"shard {shard} dirty flag {is_dirty} not 0/1")
            key_count = reader.u64()
            generation = reader.u32()
            has_fingerprint = reader.u8()
            fingerprint_value = reader.u64()
            fingerprint = fingerprint_value if has_fingerprint else None
            backend_name = reader.str_field()
            record = _ShardRecord(
                key_count=key_count,
                generation=generation,
                fingerprint=fingerprint,
                backend_name=backend_name,
            )
            records.append(record)
            if is_dirty:
                patches.append(
                    ShardPatch(
                        shard=shard,
                        key_count=key_count,
                        generation=generation,
                        fingerprint=fingerprint,
                        backend_name=backend_name,
                        frame=bytes(reader.bytes_field()),
                    )
                )
        reader.expect_end()
    except CodecError:
        raise
    except Exception as exc:  # struct/unicode errors from garbage bytes
        raise CodecError(f"malformed delta payload: {exc}") from exc
    return SnapshotDelta(
        kind=KIND_DELTA,
        base_generation=base_generation,
        new_generation=new_generation,
        num_shards=num_shards,
        router_seed=router_seed,
        records=tuple(records),
        patches=tuple(patches),
    )


# --------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------- #
#: Magic bytes opening every replication wire message.
WIRE_MAGIC = b"HRPL"
WIRE_VERSION = 1
_WIRE_HEADER = struct.Struct(">4sBBI")
#: Largest wire message either side will accept (a full snapshot of a very
#: large store; bounded so a corrupt length field cannot demand petabytes).
_WIRE_MAX_BYTES = 1 << 31

MSG_HELLO = 1
MSG_SNAPSHOT = 2
MSG_ACK = 3
MSG_NACK = 4

#: How long a blocking socket read waits before re-checking the closed flag.
_SOCKET_TICK_SECONDS = 0.25


def _send_message(sock: socket.socket, msg_type: int, payload: bytes) -> None:
    """Write one length-prefixed, CRC-trailed message."""
    header = _WIRE_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, msg_type, len(payload))
    crc = zlib.crc32(header[4:] + payload)
    sock.sendall(header + payload + struct.pack(">I", crc))


def _recv_exact(sock: socket.socket, count: int, should_stop) -> bytes:
    """Read exactly ``count`` bytes, re-checking ``should_stop`` on timeouts."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        if should_stop():
            raise ConnectionError("connection closing")
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout:
            continue
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_message(sock: socket.socket, should_stop) -> Tuple[int, bytes]:
    """Read one message; returns ``(msg_type, payload)``.

    Raises :class:`CodecError` on framing violations (bad magic, version,
    oversized length, checksum mismatch) and :class:`ConnectionError` when
    the peer goes away or ``should_stop`` turns true.
    """
    header = _recv_exact(sock, _WIRE_HEADER.size, should_stop)
    magic, version, msg_type, length = _WIRE_HEADER.unpack(header)
    if magic != WIRE_MAGIC:
        raise CodecError(f"bad wire magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise CodecError(f"unsupported wire version {version}")
    if length > _WIRE_MAX_BYTES:
        raise CodecError(f"wire message declares {length} bytes (limit {_WIRE_MAX_BYTES})")
    payload = _recv_exact(sock, length, should_stop)
    (stored_crc,) = struct.unpack(">I", _recv_exact(sock, 4, should_stop))
    actual_crc = zlib.crc32(header[4:] + payload)
    if stored_crc != actual_crc:
        raise CodecError(
            f"wire checksum mismatch: stored {stored_crc:#010x}, computed "
            f"{actual_crc:#010x}"
        )
    return msg_type, payload


def _pack_hello(generation: int, label: str) -> bytes:
    writer = _Writer()
    writer.u64(generation)
    writer.str_field(label)
    return writer.getvalue()


def _unpack_hello(payload: bytes) -> Tuple[int, str]:
    reader = _Reader(payload)
    generation = reader.u64()
    label = reader.str_field()
    reader.expect_end()
    return generation, label


def _pack_ack(generation: int, apply_seconds: float) -> bytes:
    writer = _Writer()
    writer.u64(generation)
    writer.f64(apply_seconds)
    return writer.getvalue()


def _unpack_ack(payload: bytes) -> Tuple[int, float]:
    reader = _Reader(payload)
    generation = reader.u64()
    seconds = reader.f64()
    reader.expect_end()
    return generation, seconds


def _pack_nack(generation: int, reason: str) -> bytes:
    writer = _Writer()
    writer.u64(generation)
    writer.str_field(reason)
    return writer.getvalue()


def _unpack_nack(payload: bytes) -> Tuple[int, str]:
    reader = _Reader(payload)
    generation = reader.u64()
    reason = reader.str_field()
    reader.expect_end()
    return generation, reason


# --------------------------------------------------------------------- #
# Builder side
# --------------------------------------------------------------------- #
@dataclass
class _FollowerState:
    """Publisher-side view of one connected follower."""

    label: str
    generation: int
    force_full: bool = False
    connected_at: float = field(default_factory=time.monotonic)


class BuilderPublisher:
    """Ships snapshot deltas from a builder service to connected followers.

    The publisher owns a listening socket; each follower connection gets a
    thread that waits for :meth:`publish` to advance the published
    generation, diffs the follower's announced base against the newest
    retained snapshot, and ships the delta (or a full snapshot when the base
    is no longer retained, the geometry diverged, or the follower NACKed).
    Because deltas are *state-based* — clean shards are matched by object
    identity and fingerprint, not by replaying a log — one frame covers any
    retained base, so a follower that missed ten publishes catches up in one
    round trip.

    Args:
        service: The builder — anything with ``snapshot``/``generation``
            (a :class:`~repro.service.server.MembershipService` or
            :class:`~repro.service.multiproc.ReplicaPool`).  The publisher
            never mutates it; call :meth:`publish` after each rebuild (or
            use :meth:`publish_rebuild`).
        retain: How many past generations stay diffable.  A follower whose
            base fell out of this window receives a full snapshot.
        registry: Metrics registry for the ``repro_repl_*`` families.
        label: Publisher label in metric children (default ``pub-<n>``).
    """

    def __init__(
        self,
        service,
        retain: int = 8,
        registry: Optional[Registry] = None,
        label: Optional[str] = None,
    ) -> None:
        if retain < 1:
            raise ServiceError("retain must be at least 1")
        self._service = service
        self._retain = retain
        self._registry = registry if registry is not None else default_registry()
        self._label = label or f"pub-{next(_PUBLISHER_IDS)}"
        self._cond = threading.Condition()
        self._retained: "OrderedDict[int, object]" = OrderedDict()
        self._published_generation = 0
        self._closed = False
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._followers: Dict[int, _FollowerState] = {}
        self._next_follower_id = itertools.count(1)
        self._make_instruments()

    def _make_instruments(self) -> None:
        registry, label = self._registry, self._label
        shipped = registry.counter(
            "repro_repl_deltas_shipped_total",
            "Replication frames shipped to followers, by kind",
            ("publisher", "kind"),
        )
        self._shipped_delta = shipped.labels(label, "delta")
        self._shipped_full = shipped.labels(label, "full")
        sent_bytes = registry.counter(
            "repro_repl_bytes_shipped_total",
            "Encoded replication-frame bytes shipped, by kind",
            ("publisher", "kind"),
        )
        self._bytes_delta = sent_bytes.labels(label, "delta")
        self._bytes_full = sent_bytes.labels(label, "full")
        self._ship_failures = registry.counter(
            "repro_repl_ship_failures_total",
            "Follower connections dropped mid-ship (they reconnect and resync)",
            ("publisher",),
        ).labels(label)
        self._followers_gauge = registry.gauge(
            "repro_repl_followers",
            "Follower connections currently registered",
            ("publisher",),
        ).labels(label)
        self._lag_family = registry.gauge(
            "repro_repl_follower_lag",
            "Generations each follower trails the published generation by",
            ("publisher", "follower"),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the listener and start accepting followers; returns (host, port)."""
        if self._closed:
            raise ServiceError("the publisher is closed")
        if self._listener is not None:
            raise ServiceError("the publisher is already listening")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        listener.settimeout(_SOCKET_TICK_SECONDS)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"repl-accept-{self._label}", daemon=True
        )
        self._accept_thread.start()
        bound = listener.getsockname()
        return bound[0], bound[1]

    def __enter__(self) -> "BuilderPublisher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting, drop every follower connection, join the threads."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
        for thread in list(self._threads):
            thread.join(timeout=10.0)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(self) -> int:
        """Retain the service's current snapshot and wake every follower.

        Returns the published generation.  Call after each rebuild; followers
        receive the diff from whatever base they last acknowledged.
        """
        snapshot = self._service.snapshot
        if snapshot is None:
            raise ServiceError("the builder service has no snapshot to publish")
        with self._cond:
            if self._closed:
                raise ServiceError("the publisher is closed")
            generation = snapshot.generation
            self._retained[generation] = snapshot
            self._retained.move_to_end(generation)
            while len(self._retained) > self._retain:
                self._retained.popitem(last=False)
            if generation > self._published_generation:
                self._published_generation = generation
            self._cond.notify_all()
        return generation

    def publish_rebuild(self, keys, **rebuild_kwargs) -> int:
        """Rebuild the builder service, then :meth:`publish` the result."""
        self._service.rebuild(keys, **rebuild_kwargs)
        return self.publish()

    @property
    def published_generation(self) -> int:
        """The newest generation offered to followers (0 before any publish)."""
        return self._published_generation

    @property
    def retained_generations(self) -> List[int]:
        """Generations currently diffable as delta bases, oldest first."""
        with self._cond:
            return list(self._retained)

    def follower_states(self) -> List[Tuple[str, int]]:
        """(label, acknowledged generation) for every connected follower."""
        with self._cond:
            return [
                (state.label, state.generation)
                for state in self._followers.values()
            ]

    # ------------------------------------------------------------------ #
    # Follower connections
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closed:
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed
            conn.settimeout(_SOCKET_TICK_SECONDS)
            thread = threading.Thread(
                target=self._serve_follower,
                args=(conn,),
                name=f"repl-ship-{self._label}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _pick_frame(self, state: _FollowerState, target) -> SnapshotDelta:
        """Choose delta-vs-full for one follower, under the condition lock."""
        base = None if state.force_full else self._retained.get(state.generation)
        if base is not None:
            try:
                return make_delta(
                    base, target.store, new_generation=target.generation
                )
            except ServiceError:
                pass  # geometry changed under the follower: fall through
        return full_snapshot(target.store, target.generation)

    def _serve_follower(self, conn: socket.socket) -> None:
        follower_id = next(self._next_follower_id)
        state: Optional[_FollowerState] = None
        try:
            msg_type, payload = _recv_message(conn, lambda: self._closed)
            if msg_type != MSG_HELLO:
                raise CodecError(f"expected HELLO, got message type {msg_type}")
            generation, label = _unpack_hello(payload)
            state = _FollowerState(label=label, generation=generation)
            lag_gauge = self._lag_family.labels(self._label, label)
            with self._cond:
                self._followers[follower_id] = state
            self._followers_gauge.inc()
            while True:
                with self._cond:
                    while not self._closed and (
                        self._published_generation <= state.generation
                        or not self._retained
                    ):
                        self._cond.wait(_SOCKET_TICK_SECONDS)
                    if self._closed:
                        return
                    target = self._retained[next(reversed(self._retained))]
                    frame = self._pick_frame(state, target)
                encoded = encode_delta(frame)
                _send_message(conn, MSG_SNAPSHOT, encoded)
                if frame.kind == KIND_DELTA:
                    self._shipped_delta.inc()
                    self._bytes_delta.inc(len(encoded))
                else:
                    self._shipped_full.inc()
                    self._bytes_full.inc(len(encoded))
                msg_type, payload = _recv_message(conn, lambda: self._closed)
                if msg_type == MSG_ACK:
                    acked, _seconds = _unpack_ack(payload)
                    state.generation = acked
                    state.force_full = False
                elif msg_type == MSG_NACK:
                    current, _reason = _unpack_nack(payload)
                    state.generation = current
                    state.force_full = True
                else:
                    raise CodecError(
                        f"expected ACK/NACK, got message type {msg_type}"
                    )
                lag_gauge.set(
                    max(0, self._published_generation - state.generation)
                )
        except (ConnectionError, CodecError, OSError):
            if not self._closed:
                self._ship_failures.inc()
        finally:
            if state is not None:
                with self._cond:
                    self._followers.pop(follower_id, None)
                self._followers_gauge.dec()
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            current = threading.current_thread()
            if current in self._threads:
                self._threads.remove(current)


# --------------------------------------------------------------------- #
# Follower side
# --------------------------------------------------------------------- #
class FollowerClient:
    """Keeps one follower service in sync with a :class:`BuilderPublisher`.

    A daemon thread connects, announces the follower's serving generation in
    ``HELLO``, and applies every snapshot frame the publisher ships —
    ACKing the installed generation (with the apply latency) or NACKing
    with the current generation when a frame cannot apply, which makes the
    publisher fall back to a full snapshot.  Connection failures retry with
    exponential backoff; after a reconnect the follower re-announces
    whatever generation it actually serves, so a crash-recovered process
    resyncs from its last committed state automatically.

    Args:
        service: The follower — a
            :class:`~repro.service.server.MembershipService` or
            :class:`~repro.service.multiproc.ReplicaPool` (RAM or disk
            mode; disk followers commit deltas incrementally).
        host, port: The publisher's listener address.
        label: Follower label sent in ``HELLO`` and used in metric children
            (default ``fol-<n>``).
        registry: Metrics registry for the ``repro_repl_*`` families.
        initial_backoff: First reconnect delay in seconds (doubles per
            consecutive failure).
        max_backoff: Reconnect delay ceiling in seconds.
    """

    def __init__(
        self,
        service,
        host: str,
        port: int,
        label: Optional[str] = None,
        registry: Optional[Registry] = None,
        initial_backoff: float = 0.05,
        max_backoff: float = 2.0,
    ) -> None:
        if initial_backoff <= 0 or max_backoff < initial_backoff:
            raise ServiceError("need 0 < initial_backoff <= max_backoff")
        self._service = service
        self._host = host
        self._port = port
        self._label = label or f"fol-{next(_FOLLOWER_IDS)}"
        self._registry = registry if registry is not None else default_registry()
        self._initial_backoff = initial_backoff
        self._max_backoff = max_backoff
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self._sock: Optional[socket.socket] = None
        self._cond = threading.Condition()
        self._reconnects = 0
        self._make_instruments()

    def _make_instruments(self) -> None:
        registry, label = self._registry, self._label
        applied = registry.counter(
            "repro_repl_deltas_applied_total",
            "Replication frames applied by this follower, by kind",
            ("follower", "kind"),
        )
        self._applied_delta = applied.labels(label, "delta")
        self._applied_full = applied.labels(label, "full")
        self._bytes_received = registry.counter(
            "repro_repl_bytes_received_total",
            "Encoded replication-frame bytes received",
            ("follower",),
        ).labels(label)
        self._apply_seconds = registry.histogram(
            "repro_repl_apply_seconds",
            "Wall-clock seconds from frame decode to snapshot swap",
            ("follower",),
        ).labels(label)
        self._stale = registry.counter(
            "repro_repl_stale_total",
            "Frames NACKed because they could not apply to the local base",
            ("follower",),
        ).labels(label)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "FollowerClient":
        """Start the sync thread (idempotent); returns self for chaining."""
        if self._closed:
            raise ServiceError("the follower client is closed")
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name=f"repl-follow-{self._label}", daemon=True
            )
            self._thread.start()
        return self

    def __enter__(self) -> "FollowerClient":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Stop syncing and drop the connection. Idempotent."""
        self._closed = True
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    @property
    def generation(self) -> int:
        """The follower service's serving generation right now."""
        return self._service.generation

    @property
    def reconnects(self) -> int:
        """Completed reconnect attempts (0 while the first connection holds)."""
        return self._reconnects

    def wait_for_generation(self, generation: int, timeout: float = 30.0) -> bool:
        """Block until the follower serves ``generation`` (or newer).

        Returns ``True`` on success, ``False`` on timeout or close.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._service.generation < generation:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    return self._service.generation >= generation
                self._cond.wait(min(remaining, _SOCKET_TICK_SECONDS))
        return True

    # ------------------------------------------------------------------ #
    # Sync loop
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        backoff = self._initial_backoff
        first = True
        while not self._closed:
            if not first:
                self._reconnects += 1
            first = False
            try:
                sock = socket.create_connection(
                    (self._host, self._port), timeout=5.0
                )
            except OSError:
                self._sleep(backoff)
                backoff = min(backoff * 2, self._max_backoff)
                continue
            sock.settimeout(_SOCKET_TICK_SECONDS)
            self._sock = sock
            try:
                _send_message(
                    sock,
                    MSG_HELLO,
                    _pack_hello(self._service.generation, self._label),
                )
                backoff = self._initial_backoff
                self._sync_loop(sock)
            except (ConnectionError, CodecError, OSError):
                pass  # reconnect below (with backoff)
            finally:
                self._sock = None
                try:
                    sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
            if not self._closed:
                self._sleep(backoff)
                backoff = min(backoff * 2, self._max_backoff)

    def _sync_loop(self, sock: socket.socket) -> None:
        while not self._closed:
            msg_type, payload = _recv_message(sock, lambda: self._closed)
            if msg_type != MSG_SNAPSHOT:
                raise CodecError(f"expected SNAPSHOT, got message type {msg_type}")
            self._bytes_received.inc(len(payload) + _WIRE_HEADER.size + 4)
            start = time.perf_counter()
            try:
                delta = decode_delta(payload)
                generation = apply_to_service(self._service, delta)
            except (CodecError, ServiceError) as exc:
                # StaleBaseError included: report the real serving generation
                # so the publisher re-bases (or falls back to a full frame).
                self._stale.inc()
                _send_message(
                    sock,
                    MSG_NACK,
                    _pack_nack(self._service.generation, f"{type(exc).__name__}: {exc}"),
                )
                continue
            elapsed = time.perf_counter() - start
            self._apply_seconds.observe(elapsed)
            if delta.kind == KIND_DELTA:
                self._applied_delta.inc()
            else:
                self._applied_full.inc()
            with self._cond:
                self._cond.notify_all()
            _send_message(sock, MSG_ACK, _pack_ack(generation, elapsed))

    def _sleep(self, seconds: float) -> None:
        deadline = time.monotonic() + seconds
        while not self._closed:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, _SOCKET_TICK_SECONDS))
