"""Versioned binary frames for persisting and shipping membership filters.

Every serializable object is wrapped in one self-describing frame::

    offset 0   magic      4 bytes  b"HABF"
    offset 4   version    1 byte   currently 2
    offset 5   type tag   1 byte   which structure the payload encodes
    offset 6   length     4 bytes  payload size (big-endian)
    offset 10  payload    `length` bytes
    offset -4  crc32      4 bytes  over version + type + length + payload

The CRC turns silent corruption (bit rot, truncated downloads, partial
writes) into a loud :class:`~repro.errors.CodecError`; the version byte lets
future formats evolve without misreading old frames.  Frames are
self-contained: a filter's hash family is encoded alongside its bits, so
``loads(dumps(f))`` reproduces a filter that answers identically to ``f``
in a fresh process.

Version history: version 2 added per-shard generations and key-set
fingerprints to the sharded-store payload (the incremental-rebuild
metadata) and the frames for the cost-aware and learned backends (WBF,
``KeyScoreModel``, LBF, SLBF, Ada-BF).  Version 1 frames still decode; the
codec always writes the current version.

Composite structures (HABF, the learned filters, the sharded store) embed
their parts as nested length-prefixed frames, so every layer round-trips
through the same code path.  Construction-time statistics (``TPJOStats``)
are *not* serialized — a revived filter serves queries but reports
``construction_stats`` of ``None``.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, List, Optional, Union

from repro.core.bitarray import BitArray
from repro.core.bloom import BloomFilter
from repro.core.habf import HABF, FastHABF
from repro.core.hash_expressor import HashExpressor
from repro.core.params import HABFParams
from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.baselines.xor_filter import XorFilter
from repro.errors import CodecError
from repro.hashing.base import HashFunction
from repro.hashing.double_hashing import DoubleHashFamily
from repro.hashing.registry import GLOBAL_HASH_FAMILY, HashFamily, get_primitive

#: Magic bytes opening every frame.
FRAME_MAGIC = b"HABF"

#: Current frame-format version (always written; every version in
#: :data:`READABLE_VERSIONS` still decodes).
CODEC_VERSION = 2

#: Frame versions :func:`loads` accepts.
READABLE_VERSIONS = (1, 2)

# Type tags (1 byte each).
TAG_BITARRAY = 1
TAG_BLOOM = 2
TAG_EXPRESSOR = 3
TAG_HABF = 4
TAG_FAST_HABF = 5
TAG_XOR = 6
TAG_SHARDED_STORE = 7
TAG_EMPTY_SHARD = 8
TAG_ALWAYS_CONTAINS = 9
TAG_WBF = 10
TAG_SCORE_MODEL = 11
TAG_LBF = 12
TAG_SLBF = 13
TAG_ADABF = 14

# Key kinds used by the WBF cost-cache encoding (keys keep their Python type
# so a revived filter consults its cache with exactly the original lookups).
_KEY_BYTES = 0
_KEY_STR = 1
_KEY_INT = 2

# Hash-family descriptor kinds.
_FAMILY_GLOBAL = 0
_FAMILY_NAMED = 1
_FAMILY_DOUBLE = 2

_HEADER = struct.Struct(">4sBBI")


_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")


class _Writer:
    """Append-only big-endian byte builder.

    Out-of-range values (e.g. a negative seed packed as u64) surface as
    :class:`CodecError` rather than a raw ``struct.error``.
    """

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def _pack(self, fmt: struct.Struct, value) -> None:
        try:
            self._parts.append(fmt.pack(value))
        except struct.error as exc:
            raise CodecError(
                f"value {value!r} does not fit the frame field ({exc})"
            ) from exc

    def u8(self, value: int) -> None:
        self._pack(_U8, value)

    def u16(self, value: int) -> None:
        self._pack(_U16, value)

    def u32(self, value: int) -> None:
        self._pack(_U32, value)

    def u64(self, value: int) -> None:
        self._pack(_U64, value)

    def f64(self, value: float) -> None:
        self._pack(_F64, value)

    def raw(self, data: bytes) -> None:
        self._parts.append(bytes(data))

    def bytes_field(self, data: bytes) -> None:
        self.u32(len(data))
        self.raw(data)

    def str_field(self, text: str) -> None:
        self.bytes_field(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Sequential big-endian reader that fails loudly on truncation.

    With ``zero_copy=True`` the reader hands out :class:`memoryview` slices
    of the input buffer instead of ``bytes`` copies, so bulk payloads (the
    ``BitArray`` bits of every decoded filter) alias the caller's buffer —
    the mechanism behind shared-memory replica serving.  Decoders that need
    real ``bytes`` (text, dict keys) convert explicitly.
    """

    def __init__(self, data, *, zero_copy: bool = False) -> None:
        self._data = memoryview(data) if zero_copy else data
        self._pos = 0
        self.zero_copy = zero_copy

    def take(self, count: int):
        end = self._pos + count
        if count < 0 or end > len(self._data):
            raise CodecError(
                f"truncated frame payload: wanted {count} bytes at offset "
                f"{self._pos}, only {len(self._data) - self._pos} left"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def _unpack(self, fmt: struct.Struct) -> Any:
        return fmt.unpack(self.take(fmt.size))[0]

    def u8(self) -> int:
        return self._unpack(_U8)

    def u16(self) -> int:
        return self._unpack(_U16)

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def f64(self) -> float:
        return self._unpack(_F64)

    def bytes_field(self):
        return self.take(self.u32())

    def str_field(self) -> str:
        return bytes(self.bytes_field()).decode("utf-8")

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise CodecError(
                f"{len(self._data) - self._pos} trailing bytes after payload"
            )


# --------------------------------------------------------------------- #
# Hash-family descriptors
# --------------------------------------------------------------------- #
def _encode_family(writer: _Writer, family: Union[HashFamily, DoubleHashFamily]) -> None:
    if family is GLOBAL_HASH_FAMILY:
        writer.u8(_FAMILY_GLOBAL)
        return
    if isinstance(family, DoubleHashFamily):
        writer.u8(_FAMILY_DOUBLE)
        writer.u16(len(family))
        writer.str_field(family.primitive_name)
        writer.u64(family.seed)
        return
    if isinstance(family, HashFamily):
        writer.u8(_FAMILY_NAMED)
        writer.str_field(family.name)
        writer.u16(len(family))
        for fn in family:
            writer.str_field(fn.name)
            writer.u64(fn.seed)
        return
    raise CodecError(f"cannot serialize hash family of type {type(family).__name__}")


def _decode_family(reader: _Reader) -> Union[HashFamily, DoubleHashFamily]:
    kind = reader.u8()
    if kind == _FAMILY_GLOBAL:
        return GLOBAL_HASH_FAMILY
    if kind == _FAMILY_DOUBLE:
        size = reader.u16()
        primitive = reader.str_field()
        seed = reader.u64()
        return DoubleHashFamily(size=size, primitive=primitive, seed=seed)
    if kind == _FAMILY_NAMED:
        label = reader.str_field()
        count = reader.u16()
        functions = []
        for index in range(count):
            name = reader.str_field()
            seed = reader.u64()
            functions.append(
                HashFunction(name=name, index=index, primitive=get_primitive(name), seed=seed)
            )
        return HashFamily(functions, name=label)
    raise CodecError(f"unknown hash-family descriptor kind {kind}")


# --------------------------------------------------------------------- #
# Per-type payload encoders/decoders
# --------------------------------------------------------------------- #
def _encode_bitarray(writer: _Writer, bits: BitArray) -> None:
    writer.u64(len(bits))
    writer.bytes_field(bits.to_bytes())


def _decode_bitarray(reader: _Reader) -> BitArray:
    num_bits = reader.u64()
    payload = reader.bytes_field()
    if num_bits == 0:
        raise CodecError("BitArray frame declares zero bits")
    try:
        if reader.zero_copy:
            # The decoded array aliases the frame buffer: replicas mapping a
            # SharedFrameArena probe filter bits straight from the segment.
            return BitArray.view(num_bits, payload)
        return BitArray.from_bytes(num_bits, payload)
    except Exception as exc:  # ConfigurationError on length mismatch
        raise CodecError(f"invalid BitArray payload: {exc}") from exc


def _encode_bloom(writer: _Writer, bloom: BloomFilter) -> None:
    writer.u64(bloom.num_bits)
    writer.u16(bloom.num_hashes)
    writer.u64(bloom.num_items)
    _encode_family(writer, bloom.family)
    selection = bloom.initial_selection
    writer.u16(len(selection))
    for index in selection:
        writer.u16(index)
    _encode_bitarray(writer, bloom.bits)


def _decode_bloom(reader: _Reader) -> BloomFilter:
    num_bits = reader.u64()
    num_hashes = reader.u16()
    num_items = reader.u64()
    family = _decode_family(reader)
    selection = [reader.u16() for _ in range(reader.u16())]
    for index in selection:
        if index >= len(family):
            raise CodecError(
                f"selection index {index} out of range for family of size {len(family)}"
            )
    bits = _decode_bitarray(reader)
    if len(bits) != num_bits:
        raise CodecError(
            f"Bloom frame bit-array length {len(bits)} != declared {num_bits}"
        )
    try:
        bloom = BloomFilter(
            num_bits=num_bits, num_hashes=num_hashes, family=family, selection=selection
        )
    except Exception as exc:
        raise CodecError(f"invalid Bloom frame parameters: {exc}") from exc
    bloom._bits = bits
    bloom._num_items = num_items
    return bloom


def _encode_expressor(writer: _Writer, expressor: HashExpressor) -> None:
    writer.u64(expressor.num_cells)
    writer.u16(expressor.cell_hash_bits)
    writer.u64(expressor.inserted_keys)
    _encode_family(writer, expressor._family)
    for value in expressor._hash_index:
        writer.u16(value)
    endbits = BitArray(max(1, expressor.num_cells))
    for index, endbit in enumerate(expressor._endbit):
        if endbit:
            endbits.set(index)
    _encode_bitarray(writer, endbits)


def _decode_expressor(reader: _Reader) -> HashExpressor:
    num_cells = reader.u64()
    cell_hash_bits = reader.u16()
    inserted_keys = reader.u64()
    family = _decode_family(reader)
    try:
        expressor = HashExpressor(
            num_cells=num_cells, cell_hash_bits=cell_hash_bits, family=family
        )
    except Exception as exc:
        raise CodecError(f"invalid HashExpressor frame parameters: {exc}") from exc
    limit = 1 << cell_hash_bits
    hash_index = []
    for _ in range(num_cells):
        value = reader.u16()
        if value >= limit:
            raise CodecError(
                f"cell hashindex {value} does not fit in {cell_hash_bits} bits"
            )
        hash_index.append(value)
    endbits = _decode_bitarray(reader)
    expressor._hash_index = hash_index
    expressor._endbit = [endbits.test(i) for i in range(num_cells)]
    expressor._inserted_keys = inserted_keys
    return expressor


def _encode_habf(writer: _Writer, habf: HABF) -> None:
    params = habf.params
    writer.u64(params.total_bits)
    writer.u16(params.k)
    writer.f64(params.delta)
    writer.u16(params.cell_hash_bits)
    writer.u64(params.seed)
    writer.u16(params.max_queue_passes)
    writer.u8(1 if habf._use_gamma else 0)
    writer.u8(1 if habf._built else 0)
    writer.bytes_field(dumps(habf.bloom))
    if habf.expressor is not None:
        writer.u8(1)
        writer.bytes_field(dumps(habf.expressor))
    else:
        writer.u8(0)


def _decode_habf(reader: _Reader, cls: type) -> HABF:
    try:
        params = HABFParams(
            total_bits=reader.u64(),
            k=reader.u16(),
            delta=reader.f64(),
            cell_hash_bits=reader.u16(),
            seed=reader.u64(),
            max_queue_passes=reader.u16(),
        )
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"invalid HABF frame parameters: {exc}") from exc
    use_gamma = reader.u8() != 0
    built = reader.u8() != 0
    bloom = loads(reader.bytes_field(), zero_copy=reader.zero_copy)
    if not isinstance(bloom, BloomFilter):
        raise CodecError("HABF frame does not embed a Bloom-filter frame")
    expressor: Optional[HashExpressor] = None
    if reader.u8():
        nested = loads(reader.bytes_field(), zero_copy=reader.zero_copy)
        if not isinstance(nested, HashExpressor):
            raise CodecError("HABF frame does not embed a HashExpressor frame")
        expressor = nested
    habf = cls.__new__(cls)
    habf._params = params
    habf._family = bloom.family
    habf._use_gamma = use_gamma
    habf._bloom = bloom
    habf._expressor = expressor
    habf._stats = None
    habf._built = built
    return habf


def _encode_xor(writer: _Writer, xor: XorFilter) -> None:
    writer.u16(xor._fingerprint_bits)
    writer.u64(xor._seed)
    writer.u64(xor._num_keys)
    writer.u64(xor._segment_length)
    writer.u32(len(xor._slots))
    for slot in xor._slots:
        writer.u32(slot)


def _decode_xor(reader: _Reader) -> XorFilter:
    fingerprint_bits = reader.u16()
    seed = reader.u64()
    num_keys = reader.u64()
    segment_length = reader.u64()
    slot_count = reader.u32()
    if not 1 <= fingerprint_bits <= 32:
        raise CodecError(f"fingerprint_bits {fingerprint_bits} out of range")
    if segment_length < 1:
        raise CodecError("Xor frame segment length must be positive")
    if slot_count != segment_length * 3:
        raise CodecError(
            f"Xor frame slot count {slot_count} != 3 * segment length {segment_length}"
        )
    mask = (1 << fingerprint_bits) - 1
    slots = []
    for _ in range(slot_count):
        value = reader.u32()
        if value > mask:
            raise CodecError(f"Xor slot value {value} exceeds fingerprint mask {mask}")
        slots.append(value)
    xor = XorFilter.__new__(XorFilter)
    xor._fingerprint_bits = fingerprint_bits
    xor._fingerprint_mask = mask
    xor._num_keys = num_keys
    xor._segment_length = segment_length
    xor._capacity = slot_count
    xor._seed = seed
    xor._slots = slots
    return xor


def _encode_key(writer: _Writer, key) -> None:
    if isinstance(key, bytes):
        writer.u8(_KEY_BYTES)
        writer.bytes_field(key)
    elif isinstance(key, str):
        writer.u8(_KEY_STR)
        writer.str_field(key)
    elif isinstance(key, int):
        writer.u8(_KEY_INT)
        writer.u8(1 if key < 0 else 0)
        magnitude = abs(key)
        writer.bytes_field(magnitude.to_bytes(max(1, (magnitude.bit_length() + 7) // 8), "little"))
    else:
        raise CodecError(f"cannot serialize cache key of type {type(key).__name__}")


def _decode_key(reader: _Reader):
    kind = reader.u8()
    if kind == _KEY_BYTES:
        # Cache keys must be real (hashable) bytes even in zero-copy mode.
        return bytes(reader.bytes_field())
    if kind == _KEY_STR:
        return reader.str_field()
    if kind == _KEY_INT:
        negative = reader.u8() != 0
        magnitude = int.from_bytes(reader.bytes_field(), "little")
        return -magnitude if negative else magnitude
    raise CodecError(f"unknown key kind {kind}")


def _encode_wbf(writer: _Writer, wbf: WeightedBloomFilter) -> None:
    writer.u16(wbf._default_hashes)
    writer.u16(wbf._max_hashes)
    writer.f64(wbf._cache_fraction)
    writer.u64(wbf._num_items)
    writer.u32(len(wbf._hash_cache))
    for key, count in wbf._hash_cache.items():
        _encode_key(writer, key)
        writer.u16(count)  # u16 like max_hashes: counts above 255 are legal
    _encode_bitarray(writer, wbf._bits)


def _decode_wbf(reader: _Reader) -> WeightedBloomFilter:
    default_hashes = reader.u16()
    max_hashes = reader.u16()
    cache_fraction = reader.f64()
    num_items = reader.u64()
    cache = {}
    for _ in range(reader.u32()):
        key = _decode_key(reader)
        count = reader.u16()
        if not 1 <= count <= max_hashes:
            raise CodecError(
                f"cached hash count {count} outside 1..{max_hashes}"
            )
        cache[key] = count
    bits = _decode_bitarray(reader)
    try:
        wbf = WeightedBloomFilter(
            num_bits=len(bits),
            default_hashes=default_hashes,
            max_hashes=max_hashes,
            cache_fraction=cache_fraction,
        )
    except Exception as exc:
        raise CodecError(f"invalid WBF frame parameters: {exc}") from exc
    wbf._bits = bits
    wbf._hash_cache = cache
    wbf._num_items = num_items
    return wbf


def _learned_numpy():
    """The numpy module, or a loud CodecError for learned frames without it."""
    from repro.baselines.learned import model as model_module

    if model_module.np is None:
        raise CodecError(
            "decoding a learned-filter frame requires numpy (the model weights "
            "revive as a numpy array)"
        )
    return model_module.np


def _encode_model(writer: _Writer, model) -> None:
    writer.u32(model._num_features)
    writer.u8(len(model._ngram_sizes))
    for size in model._ngram_sizes:
        writer.u16(size)
    writer.f64(model._learning_rate)
    writer.u32(model._epochs)
    writer.u64(model._seed)
    writer.u16(model._weight_bits)
    writer.u8(1 if model._trained else 0)
    writer.f64(model._bias)
    for weight in model._weights:
        writer.f64(float(weight))


def _decode_model(reader: _Reader):
    np = _learned_numpy()
    from repro.baselines.learned.model import KeyScoreModel

    num_features = reader.u32()
    ngram_sizes = tuple(reader.u16() for _ in range(reader.u8()))
    learning_rate = reader.f64()
    epochs = reader.u32()
    seed = reader.u64()
    weight_bits = reader.u16()
    trained = reader.u8() != 0
    bias = reader.f64()
    try:
        model = KeyScoreModel(
            num_features=num_features,
            ngram_sizes=ngram_sizes,
            learning_rate=learning_rate,
            epochs=epochs,
            seed=seed,
            weight_bits=weight_bits,
        )
    except Exception as exc:
        raise CodecError(f"invalid KeyScoreModel frame parameters: {exc}") from exc
    model._weights = np.array(
        [reader.f64() for _ in range(num_features)], dtype=np.float64
    )
    model._bias = bias
    model._trained = trained
    return model


def _nested_model(reader: _Reader):
    model = loads(reader.bytes_field(), zero_copy=reader.zero_copy)
    from repro.baselines.learned.model import KeyScoreModel

    if not isinstance(model, KeyScoreModel):
        raise CodecError("learned-filter frame does not embed a KeyScoreModel frame")
    return model


def _nested_bloom(reader: _Reader) -> Optional[BloomFilter]:
    if not reader.u8():
        return None
    bloom = loads(reader.bytes_field(), zero_copy=reader.zero_copy)
    if not isinstance(bloom, BloomFilter):
        raise CodecError("learned-filter frame does not embed a Bloom-filter frame")
    return bloom


def _write_optional_bloom(writer: _Writer, bloom: Optional[BloomFilter]) -> None:
    if bloom is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.bytes_field(dumps(bloom))


def _encode_lbf(writer: _Writer, lbf) -> None:
    writer.u64(lbf._total_bits)
    writer.u64(lbf._seed)
    writer.f64(lbf._threshold)
    writer.u8(1 if lbf._built else 0)
    writer.bytes_field(dumps(lbf._model))
    _write_optional_bloom(writer, lbf._backup)


def _decode_lbf(reader: _Reader):
    _learned_numpy()
    from repro.baselines.learned.lbf import LearnedBloomFilter

    lbf = LearnedBloomFilter.__new__(LearnedBloomFilter)
    lbf._total_bits = reader.u64()
    lbf._seed = reader.u64()
    lbf._threshold = reader.f64()
    lbf._built = reader.u8() != 0
    lbf._model = _nested_model(reader)
    lbf._backup = _nested_bloom(reader)
    return lbf


def _encode_slbf(writer: _Writer, slbf) -> None:
    writer.u64(slbf._total_bits)
    writer.u64(slbf._seed)
    writer.f64(slbf._threshold)
    writer.u8(1 if slbf._built else 0)
    writer.bytes_field(dumps(slbf._model))
    _write_optional_bloom(writer, slbf._initial)
    _write_optional_bloom(writer, slbf._backup)


def _decode_slbf(reader: _Reader):
    _learned_numpy()
    from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter

    slbf = SandwichedLearnedBloomFilter.__new__(SandwichedLearnedBloomFilter)
    slbf._total_bits = reader.u64()
    slbf._seed = reader.u64()
    slbf._threshold = reader.f64()
    slbf._built = reader.u8() != 0
    slbf._model = _nested_model(reader)
    slbf._initial = _nested_bloom(reader)
    slbf._backup = _nested_bloom(reader)
    return slbf


def _encode_adabf(writer: _Writer, adabf) -> None:
    writer.u64(adabf._total_bits)
    writer.u16(adabf._num_groups)
    writer.u64(adabf._seed)
    writer.u8(1 if adabf._built else 0)
    writer.u16(len(adabf._thresholds))
    for threshold in adabf._thresholds:
        writer.f64(float(threshold))
    writer.u16(len(adabf._group_hashes))
    for count in adabf._group_hashes:
        writer.u16(count)
    writer.bytes_field(dumps(adabf._model))
    _write_optional_bloom(writer, adabf._bloom)


def _decode_adabf(reader: _Reader):
    _learned_numpy()
    from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter

    adabf = AdaptiveLearnedBloomFilter.__new__(AdaptiveLearnedBloomFilter)
    adabf._total_bits = reader.u64()
    adabf._num_groups = reader.u16()
    if adabf._num_groups < 2:
        raise CodecError(f"Ada-BF frame declares {adabf._num_groups} groups (minimum 2)")
    adabf._seed = reader.u64()
    adabf._built = reader.u8() != 0
    adabf._thresholds = [reader.f64() for _ in range(reader.u16())]
    adabf._group_hashes = [reader.u16() for _ in range(reader.u16())]
    if any(count < 1 for count in adabf._group_hashes):
        raise CodecError("Ada-BF frame contains a zero group hash count")
    adabf._model = _nested_model(reader)
    adabf._bloom = _nested_bloom(reader)
    return adabf


def _encode_store(writer: _Writer, store: Any) -> None:
    writer.u32(store.num_shards)
    writer.u64(store.router_seed)
    # The backend-name field is free-form, so heterogeneous (adaptively
    # migrated) stores reuse it without a frame-version bump: a "mixed:"
    # prefix followed by the comma-joined per-shard names.  Plain names with
    # a comma or that prefix would be ambiguous on decode, hence the guard.
    shard_names = getattr(store, "shard_backend_names", None)
    if shard_names is not None and len(set(shard_names)) > 1:
        for name in shard_names:
            if "," in name or name.startswith("mixed:"):
                raise CodecError(
                    f"shard backend name {name!r} cannot be encoded in a "
                    "mixed store frame"
                )
        writer.str_field("mixed:" + ",".join(shard_names))
    else:
        writer.str_field(store.backend_name)
    fingerprints = store.shard_fingerprints
    generations = store.shard_generations
    for shard, (filt, key_count) in enumerate(
        zip(store.filters, store.shard_key_counts)
    ):
        writer.u64(key_count)
        writer.u32(generations[shard])
        fingerprint = fingerprints[shard]
        writer.u8(0 if fingerprint is None else 1)
        writer.u64(fingerprint or 0)
        writer.bytes_field(dumps(filt))


def _decode_store(reader: _Reader, version: int) -> Any:
    from repro.service.shards import ShardedFilterStore

    num_shards = reader.u32()
    router_seed = reader.u64()
    backend_name = reader.str_field()
    shard_backend_names: Optional[List[str]] = None
    if backend_name.startswith("mixed:"):
        shard_backend_names = backend_name[len("mixed:") :].split(",")
        if len(shard_backend_names) != num_shards:
            raise CodecError(
                f"mixed store frame names {len(shard_backend_names)} shard "
                f"backends for {num_shards} shards"
            )
        backend_name = "mixed"
    filters = []
    key_counts = []
    generations: List[int] = []
    fingerprints: List[Optional[int]] = []
    for _ in range(num_shards):
        key_counts.append(reader.u64())
        if version >= 2:
            generations.append(reader.u32())
            has_fingerprint = reader.u8() != 0
            value = reader.u64()
            fingerprints.append(value if has_fingerprint else None)
        else:
            # Version-1 store frames predate incremental rebuilds: shard
            # generations default to 1 and fingerprints stay unknown (the
            # first incremental rebuild treats those shards as dirty).
            generations.append(1)
            fingerprints.append(None)
        filters.append(loads(reader.bytes_field(), zero_copy=reader.zero_copy))
    return ShardedFilterStore.from_parts(
        filters=filters,
        router_seed=router_seed,
        backend_name=backend_name,
        shard_key_counts=key_counts,
        shard_generations=generations,
        shard_fingerprints=fingerprints,
        shard_backend_names=shard_backend_names,
    )


# --------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------- #
def dumps(obj: Any) -> bytes:
    """Serialize a supported filter structure into one binary frame."""
    from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
    from repro.baselines.learned.lbf import LearnedBloomFilter
    from repro.baselines.learned.model import KeyScoreModel
    from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter
    from repro.kvstore.filter_policy import AlwaysContainsFilter
    from repro.service.shards import EmptyShardFilter, ShardedFilterStore

    writer = _Writer()
    if isinstance(obj, ShardedFilterStore):
        tag = TAG_SHARDED_STORE
        _encode_store(writer, obj)
    elif isinstance(obj, EmptyShardFilter):
        tag = TAG_EMPTY_SHARD
    elif isinstance(obj, AlwaysContainsFilter):
        tag = TAG_ALWAYS_CONTAINS
    elif isinstance(obj, FastHABF):
        tag = TAG_FAST_HABF
        _encode_habf(writer, obj)
    elif isinstance(obj, HABF):
        tag = TAG_HABF
        _encode_habf(writer, obj)
    elif isinstance(obj, BloomFilter):
        tag = TAG_BLOOM
        _encode_bloom(writer, obj)
    elif isinstance(obj, HashExpressor):
        tag = TAG_EXPRESSOR
        _encode_expressor(writer, obj)
    elif isinstance(obj, XorFilter):
        tag = TAG_XOR
        _encode_xor(writer, obj)
    elif isinstance(obj, WeightedBloomFilter):
        tag = TAG_WBF
        _encode_wbf(writer, obj)
    elif isinstance(obj, KeyScoreModel):
        tag = TAG_SCORE_MODEL
        _encode_model(writer, obj)
    elif isinstance(obj, LearnedBloomFilter):
        tag = TAG_LBF
        _encode_lbf(writer, obj)
    elif isinstance(obj, SandwichedLearnedBloomFilter):
        tag = TAG_SLBF
        _encode_slbf(writer, obj)
    elif isinstance(obj, AdaptiveLearnedBloomFilter):
        tag = TAG_ADABF
        _encode_adabf(writer, obj)
    elif isinstance(obj, BitArray):
        tag = TAG_BITARRAY
        _encode_bitarray(writer, obj)
    else:
        raise CodecError(
            f"cannot serialize object of type {type(obj).__name__}; supported: "
            "BitArray, BloomFilter, HashExpressor, HABF, FastHABF, XorFilter, "
            "WeightedBloomFilter, KeyScoreModel, LBF, SLBF, Ada-BF, "
            "ShardedFilterStore and the degenerate shard/table filters"
        )
    payload = writer.getvalue()
    header = _HEADER.pack(FRAME_MAGIC, CODEC_VERSION, tag, len(payload))
    crc = zlib.crc32(header[4:] + payload)
    return header + payload + struct.pack(">I", crc)


def loads(data, *, zero_copy: bool = False) -> Any:
    """Decode one binary frame back into the filter structure it encodes.

    Args:
        data: The frame bytes — any buffer-protocol object (``bytes``,
            ``memoryview``, a ``multiprocessing.shared_memory`` slice).
        zero_copy: When true, decoded ``BitArray`` payloads *alias* ``data``
            instead of copying it, so the caller's buffer must outlive the
            decoded structure and the filters come back read-only (see
            :meth:`repro.core.bitarray.BitArray.view`).  Slot-table filters
            (Xor, HashExpressor) decode into their own arrays regardless.

    Raises:
        CodecError: on bad magic, unsupported version, unknown type tag,
            truncation, trailing garbage or checksum mismatch.
    """
    if len(data) < _HEADER.size + 4:
        raise CodecError(
            f"frame too short: {len(data)} bytes < minimum {_HEADER.size + 4}"
        )
    magic, version, tag, length = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise CodecError(f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r})")
    if version not in READABLE_VERSIONS:
        raise CodecError(
            f"unsupported frame version {version} (this codec reads versions "
            f"{', '.join(map(str, READABLE_VERSIONS))})"
        )
    end = _HEADER.size + length
    if len(data) != end + 4:
        raise CodecError(
            f"frame length mismatch: header declares {length} payload bytes "
            f"but frame holds {len(data) - _HEADER.size - 4}"
        )
    view = memoryview(data) if not isinstance(data, (bytes, bytearray)) else data
    payload = view[_HEADER.size : end]
    (stored_crc,) = struct.unpack_from(">I", data, end)
    actual_crc = zlib.crc32(view[4:end])
    if stored_crc != actual_crc:
        raise CodecError(
            f"checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )
    reader = _Reader(payload, zero_copy=zero_copy)
    try:
        if tag == TAG_BITARRAY:
            result: Any = _decode_bitarray(reader)
        elif tag == TAG_BLOOM:
            result = _decode_bloom(reader)
        elif tag == TAG_EXPRESSOR:
            result = _decode_expressor(reader)
        elif tag == TAG_HABF:
            result = _decode_habf(reader, HABF)
        elif tag == TAG_FAST_HABF:
            result = _decode_habf(reader, FastHABF)
        elif tag == TAG_XOR:
            result = _decode_xor(reader)
        elif tag == TAG_WBF:
            result = _decode_wbf(reader)
        elif tag == TAG_SCORE_MODEL:
            result = _decode_model(reader)
        elif tag == TAG_LBF:
            result = _decode_lbf(reader)
        elif tag == TAG_SLBF:
            result = _decode_slbf(reader)
        elif tag == TAG_ADABF:
            result = _decode_adabf(reader)
        elif tag == TAG_SHARDED_STORE:
            result = _decode_store(reader, version)
        elif tag == TAG_EMPTY_SHARD:
            from repro.service.shards import EmptyShardFilter

            result = EmptyShardFilter()
        elif tag == TAG_ALWAYS_CONTAINS:
            from repro.kvstore.filter_policy import AlwaysContainsFilter

            result = AlwaysContainsFilter()
        else:
            raise CodecError(f"unknown frame type tag {tag}")
        reader.expect_end()
    except CodecError:
        raise
    except Exception as exc:
        # Structurally valid bytes can still describe an unbuildable object
        # (zero shards, unknown primitive name, ...); callers are promised
        # CodecError for every malformed frame, so normalise here.
        raise CodecError(f"malformed frame payload: {exc}") from exc
    return result


def loads_as(data, cls: type, *, zero_copy: bool = False) -> Any:
    """Decode one frame and require the result to be an instance of ``cls``.

    The typed twin of :func:`loads`, used by the ``from_frame`` classmethods
    on the filter classes.

    Raises:
        CodecError: for every malformed frame, and additionally when the
            frame decodes to a different structure than ``cls``.
    """
    obj = loads(data, zero_copy=zero_copy)
    if not isinstance(obj, cls):
        raise CodecError(
            f"frame holds {type(obj).__name__}, expected {cls.__name__}"
        )
    return obj


def dump(obj: Any, path) -> int:
    """Serialize ``obj`` to ``path``; returns the number of bytes written."""
    frame = dumps(obj)
    with open(path, "wb") as handle:
        handle.write(frame)
    return len(frame)


def load(path) -> Any:
    """Read one frame from ``path`` and decode it."""
    with open(path, "rb") as handle:
        return loads(handle.read())
