"""Pluggable filter backends for the membership service.

Every backend implements the same ``create_filter(keys, negatives, costs)``
interface as :class:`repro.kvstore.filter_policy.FilterPolicy` — in fact the
built-in backends *are* the kvstore filter policies, so a filter tuned for
the LSM read path and one tuned for the serving path are configured the same
way.  The registry adds name-based lookup so services, examples and the
evidence script can select backends from a string (``"habf"``, ``"f-habf"``,
``"bloom"``, ``"bloom-dh"``, ``"xor"``, ``"wbf"``, ``"lbf"``, ``"slbf"``,
``"adabf"``).

Every registered backend's filters round-trip through
:mod:`repro.service.codec`, which is load-bearing twice over: sharded stores
snapshot/restore regardless of policy, and parallel build workers hand
finished shards back to the parent process as codec frames.  The learned
backends additionally need numpy at *build* time (their policies import
without it and fail loudly when asked to train).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.baselines.learned.policy import (
    AdaptiveLearnedBloomFilterPolicy,
    LearnedBloomFilterPolicy,
    SandwichedLearnedBloomFilterPolicy,
)
from repro.errors import ConfigurationError
from repro.kvstore.filter_policy import (
    BloomFilterPolicy,
    DoubleHashBloomFilterPolicy,
    FastHABFFilterPolicy,
    FilterPolicy,
    HABFFilterPolicy,
    WeightedBloomFilterPolicy,
    XorFilterPolicy,
)

BackendFactory = Callable[..., FilterPolicy]
BackendSpec = Union[str, FilterPolicy]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register ``factory`` (keyword-configurable) under ``name``.

    Re-registering a name overwrites the previous factory, which lets tests
    and downstream code shadow a built-in backend.
    """
    if not name:
        raise ConfigurationError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Return the registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str, **kwargs) -> FilterPolicy:
    """Instantiate the backend registered under ``name``.

    Keyword arguments are forwarded to the factory (e.g. ``bits_per_key``,
    ``seed``).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown filter backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return factory(**kwargs)


def resolve_backend(spec: BackendSpec, **kwargs) -> FilterPolicy:
    """Turn a backend spec into a ready policy object.

    ``spec`` may be a registered name (instantiated with ``kwargs``) or an
    object already implementing ``create_filter`` (returned as-is; passing
    ``kwargs`` alongside an instance is an error because they would be
    silently ignored).
    """
    if isinstance(spec, str):
        return get_backend(spec, **kwargs)
    if hasattr(spec, "create_filter"):
        if kwargs:
            raise ConfigurationError(
                "backend keyword arguments are only valid with a backend name, "
                f"not a ready instance of {type(spec).__name__}"
            )
        return spec
    raise ConfigurationError(
        f"backend spec must be a name or a FilterPolicy-like object, got {type(spec).__name__}"
    )


register_backend("habf", HABFFilterPolicy)
register_backend("f-habf", FastHABFFilterPolicy)
register_backend("bloom", BloomFilterPolicy)
register_backend("bloom-dh", DoubleHashBloomFilterPolicy)
register_backend("xor", XorFilterPolicy)
register_backend("wbf", WeightedBloomFilterPolicy)
register_backend("lbf", LearnedBloomFilterPolicy)
register_backend("slbf", SandwichedLearnedBloomFilterPolicy)
register_backend("adabf", AdaptiveLearnedBloomFilterPolicy)

#: Names registered by this module itself.  Process-pool build workers
#: re-resolve backends by name in a fresh interpreter, which only has these
#: registrations — runtime `register_backend` calls are not visible there
#: (unless the worker re-imports whatever module registered them), so
#: automatic worker-mode selection treats only built-ins as process-safe.
BUILTIN_BACKENDS = frozenset(_REGISTRY)
