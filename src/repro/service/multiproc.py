"""Multi-process serving tier: shared-memory shard store + replica dispatch.

One Python process saturates a single GIL-bound dispatch thread (~44k q/s in
``BENCH_async_serving.json``).  This module breaks that ceiling with a
:class:`ReplicaPool`: R worker processes each serve queries against the *same*
filter bytes, mapped once from a ``multiprocessing.shared_memory`` segment.

The pieces:

- :class:`SharedFrameArena` — the builder serializes a whole
  :class:`~repro.service.shards.ShardedFilterStore` into one codec frame laid
  out in a named shared-memory segment (a small header carries the
  generation).  Replicas attach the segment and decode it with the codec's
  ``zero_copy=True`` path, so every decoded ``BitArray`` is a
  :meth:`~repro.core.bitarray.BitArray.view` over the mapping — R replicas
  pay for exactly one copy of the filter bytes.

- :class:`ReplicaPool` — spawns R replica processes, duck-types the service
  surface the asyncio front-end needs (``query_batch`` / ``generation`` /
  ``stats`` / ``max_batch_size`` / ``registry``), and dispatches each
  micro-batch window to a free replica over a pipe.  Plugged into
  :class:`~repro.service.aserve.AdaptiveMicroBatcher` (which reads the pool's
  ``dispatch_parallelism`` and keeps R windows in flight), the pool turns R
  cores into R concurrent engine dispatches behind one listener.

- ``SO_REUSEPORT`` mode — :meth:`ReplicaPool.start_reuseport` has every
  replica run its own :class:`~repro.service.aserve.AsyncMembershipServer`
  listening on one shared port; the kernel load-balances accepted
  connections, removing the front-end process from the data path entirely.

Rebuilds stay generation-consistent across the fleet: the parent builds the
new store, publishes a fresh arena, then acquires every replica (draining
in-flight windows), installs the new generation on each, and releases them —
so windows answered before the swap all carry generation G, windows after all
carry G+1, and no window ever mixes generations.  The old segment is unlinked
once every replica has detached.

Lifecycle safety: the arena owner registers a ``weakref.finalize`` (which
also runs at interpreter exit) that closes the mapping and unlinks the
segment, so a SIGKILL'd *replica* never leaks a segment — the parent owns the
name.  Attaching processes that run their own ``resource_tracker`` (spawn
start method) unregister the segment after mapping it, so a replica's tracker
can never unlink a segment the rest of the fleet still serves from
(Python < 3.13 has no ``track=False``).
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import itertools
import os
import queue
import socket
import struct
import threading
import time
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CodecError, ServiceError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key
from repro.metrics.timing import latency_percentiles
from repro.obs import CollectedFamily, FprEstimator, Registry, Sample, default_registry
from repro.service import codec
from repro.service.adaptive import AdaptivePolicy
from repro.service.backends import BackendSpec
from repro.service.server import BatchAnswer, MembershipService
from repro.service.shards import ShardedFilterStore
from repro.service.stats import LatencyWindow, ServiceStats

__all__ = ["SharedFrameArena", "ReplicaPool", "shared_mapping_memory"]

_ARENA_IDS = itertools.count(1)
_POOL_IDS = itertools.count(1)

#: Sticky per-process answer to "does this process share the arena owner's
#: resource tracker?".  Fork and forkserver children inherit the parent's
#: tracker pipe, so their attach registrations are idempotent set-adds that
#: the owner's ``unlink()`` later clears — they must NOT unregister (that
#: would strip the owner's crash protection).  A spawn child (or an unrelated
#: attaching process) lazily starts its *own* tracker on first use; that
#: tracker would unlink the segment when the child exits, so attach-side
#: registrations there must be withdrawn immediately.
_TRACKER_INHERITED: Optional[bool] = None


def _tracker_is_inherited() -> bool:
    global _TRACKER_INHERITED
    if _TRACKER_INHERITED is None:
        tracker = getattr(resource_tracker, "_resource_tracker", None)
        _TRACKER_INHERITED = getattr(tracker, "_fd", None) is not None
    return _TRACKER_INHERITED


def _release_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Close one process's mapping; the owner also removes the name.

    Runs from an explicit :meth:`SharedFrameArena.dispose`, from GC, or at
    interpreter exit (``weakref.finalize`` registers an atexit hook).  A
    ``BufferError`` means decoded filters still alias the mapping — the
    mapping then stays open (its pages vanish with the process) but the
    owner still unlinks the *name*, which is what leak checks observe.
    """
    with contextlib.suppress(BufferError):
        shm.close()
    if owner:
        with contextlib.suppress(FileNotFoundError):
            shm.unlink()


class SharedFrameArena:
    """One serving generation's codec frame in a named shared-memory segment.

    Layout: a 24-byte header (``magic "ARNA" | version | generation u64 |
    frame length u64``) followed by the store's codec frame.  The *owner*
    (builder) creates the segment with :meth:`publish` and is the only
    process that unlinks it; replicas :meth:`attach` by name and decode the
    frame zero-copy with :meth:`load_store`.
    """

    MAGIC = b"ARNA"
    VERSION = 1
    _HEADER = struct.Struct(">4sBxxxQQ")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        generation: int,
        frame_bytes: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._generation = generation
        self._frame_bytes = frame_bytes
        self._owner = owner
        self._finalizer = weakref.finalize(self, _release_segment, shm, owner)

    # ------------------------------------------------------------------ #
    # Creation
    # ------------------------------------------------------------------ #
    @classmethod
    def publish(
        cls,
        store: ShardedFilterStore,
        generation: int,
        name: Optional[str] = None,
    ) -> "SharedFrameArena":
        """Serialize ``store`` into a new owned segment; returns the arena."""
        if generation < 0:
            raise ServiceError(f"arena generation must be >= 0, got {generation}")
        frame = codec.dumps(store)
        if name is None:
            name = f"repro-arena-{os.getpid()}-{next(_ARENA_IDS)}-g{generation}"
        total = cls._HEADER.size + len(frame)
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        try:
            shm.buf[: cls._HEADER.size] = cls._HEADER.pack(
                cls.MAGIC, cls.VERSION, generation, len(frame)
            )
            shm.buf[cls._HEADER.size : total] = frame
        except Exception:
            shm.close()
            with contextlib.suppress(FileNotFoundError):
                shm.unlink()
            raise
        return cls(shm, generation=generation, frame_bytes=len(frame), owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedFrameArena":
        """Map an existing segment by name (non-owning)."""
        inherited = _tracker_is_inherited()
        shm = shared_memory.SharedMemory(name=name)
        if not inherited:
            with contextlib.suppress(Exception):
                resource_tracker.unregister(shm._name, "shared_memory")
        try:
            if shm.size < cls._HEADER.size:
                raise CodecError(
                    f"segment {name!r} is {shm.size} bytes, smaller than the "
                    f"{cls._HEADER.size}-byte arena header"
                )
            magic, version, generation, frame_bytes = cls._HEADER.unpack_from(shm.buf)
            if magic != cls.MAGIC:
                raise CodecError(f"bad arena magic {bytes(magic)!r} in segment {name!r}")
            if version != cls.VERSION:
                raise CodecError(f"unsupported arena version {version}")
            if cls._HEADER.size + frame_bytes > shm.size:
                raise CodecError(
                    f"arena header declares {frame_bytes} frame bytes but the "
                    f"segment holds only {shm.size - cls._HEADER.size}"
                )
        except Exception:
            shm.close()
            raise
        return cls(shm, generation=generation, frame_bytes=frame_bytes, owner=False)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The segment name replicas attach with."""
        return self._shm.name

    @property
    def generation(self) -> int:
        """The builder generation this arena carries."""
        return self._generation

    @property
    def frame_bytes(self) -> int:
        """Size of the codec frame (the shared filter payload)."""
        return self._frame_bytes

    @property
    def size_bytes(self) -> int:
        """Total segment size (header + frame, page-rounded by the kernel)."""
        return self._shm.size

    @property
    def owner(self) -> bool:
        """Whether this process created (and will unlink) the segment."""
        return self._owner

    def load_store(self) -> ShardedFilterStore:
        """Decode the frame zero-copy; the store aliases this mapping.

        The returned store (its ``BitArray`` payloads specifically) borrows
        the segment's buffer: drop every reference to it *before* calling
        :meth:`dispose`, or the mapping stays open until process exit.
        """
        view = self._shm.buf[self._HEADER.size : self._HEADER.size + self._frame_bytes]
        store = codec.loads(view, zero_copy=True)
        if not isinstance(store, ShardedFilterStore):
            raise CodecError(
                f"arena frame decodes to {type(store).__name__}, expected a "
                "ShardedFilterStore"
            )
        return store

    def dispose(self) -> None:
        """Release the mapping now (owner: also unlink). Idempotent."""
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self._owner else "replica"
        return (
            f"SharedFrameArena(name={self.name!r}, generation={self._generation}, "
            f"frame_bytes={self._frame_bytes}, {role})"
        )


def shared_mapping_memory(pid: int, segment_name: str) -> Optional[Dict[str, int]]:
    """Memory accounting for one process's mapping of a named segment.

    Parses ``/proc/<pid>/smaps`` (Linux only; returns ``None`` elsewhere or
    when the mapping is absent) and sums the kernel's per-mapping counters
    for every range whose backing file matches ``segment_name``.  Returns
    bytes: ``rss`` (resident, includes pages shared with other mappers),
    ``pss`` (resident divided by the number of mappers — the fair share),
    ``private`` (pages only this process has — for a read-only filter
    mapping this should stay ~0, which is exactly the "R replicas pay for
    one copy" claim the multiproc benchmark asserts), and ``shared``.
    """
    try:
        with open(f"/proc/{pid}/smaps", "r", encoding="ascii", errors="replace") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return None
    totals = {"rss": 0, "pss": 0, "private": 0, "shared": 0}
    found = False
    collecting = False
    fields = {
        "Rss:": "rss",
        "Pss:": "pss",
        "Private_Clean:": "private",
        "Private_Dirty:": "private",
        "Shared_Clean:": "shared",
        "Shared_Dirty:": "shared",
    }
    for line in lines:
        head = line.split(None, 1)[0] if line else ""
        if head not in fields and "-" in head:
            # A new mapping header line ("addr-addr perms offset dev inode path").
            collecting = segment_name in line
            found = found or collecting
            continue
        if collecting and head in fields:
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                totals[fields[head]] += int(parts[1]) * 1024
    return totals if found else None


# --------------------------------------------------------------------- #
# Replica worker process
# --------------------------------------------------------------------- #
class _ReuseportRunner:
    """A replica-local asyncio server thread for the ``SO_REUSEPORT`` mode."""

    def __init__(self, service, host: str, port: int, opts: dict) -> None:
        self._ready = threading.Event()
        self._error: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.port: Optional[int] = None
        self._thread = threading.Thread(
            target=self._run,
            args=(service, host, port, opts),
            name="repro-reuseport",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServiceError("reuseport listener did not start within 30s")
        if self._error is not None:
            raise ServiceError(f"reuseport listener failed: {self._error}")

    def _run(self, service, host: str, port: int, opts: dict) -> None:
        try:
            asyncio.run(self._serve(service, host, port, opts))
        except Exception as exc:  # pragma: no cover - propagated via _error
            self._error = f"{type(exc).__name__}: {exc}"
            self._ready.set()

    async def _serve(self, service, host: str, port: int, opts: dict) -> None:
        from repro.service.aserve import AsyncMembershipServer

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            async with AsyncMembershipServer(service, **opts) as server:
                _host, bound = await server.start_tcp(host, port, reuse_port=True)
                self.port = bound
                self._ready.set()
                await self._stop_event.wait()
        except Exception as exc:
            self._error = f"{type(exc).__name__}: {exc}"
            self._ready.set()

    def stop(self, timeout: float = 10.0) -> None:
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(event.set)
        self._thread.join(timeout=timeout)


def _pack_verdicts(verdicts: List[bool]):
    """Verdicts -> a compact wire payload (packed bitmap with numpy)."""
    np = vec.numpy_or_none()
    if np is None:
        return list(verdicts)
    return np.packbits(np.asarray(verdicts, dtype=bool)).tobytes()


def _unpack_verdicts(payload, count: int) -> List[bool]:
    if isinstance(payload, list):
        return payload
    np = vec.numpy_or_none()
    if np is None:  # pragma: no cover - replica has numpy, parent does not
        bits = []
        for byte in payload:
            for offset in range(7, -1, -1):
                bits.append(bool((byte >> offset) & 1))
        return bits[:count]
    return (
        np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=count)
        .astype(bool)
        .tolist()
    )


def _replica_main(conn, index: int, max_batch_size: int) -> None:
    """Entry point of one replica process: serve commands from ``conn``.

    Commands are processed strictly in order, which is what makes the
    generation guarantee compositional: a ``("load", ...)`` command can never
    overtake or interleave with a ``("query", ...)`` window, so every window
    is answered entirely from one installed snapshot.
    """
    from repro.service.diskstore import DiskShardStore

    registry = Registry()
    service = MembershipService(registry=registry, max_batch_size=max_batch_size)
    arena: Optional[SharedFrameArena] = None
    disk: Optional[DiskShardStore] = None
    runner: Optional[_ReuseportRunner] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        try:
            if kind == "query":
                answer = service.query_batch(message[1])
                conn.send(
                    (
                        "answer",
                        answer.generation,
                        len(answer.verdicts),
                        int(sum(answer.verdicts)),
                        _pack_verdicts(answer.verdicts),
                        answer.elapsed_seconds,
                    )
                )
            elif kind == "load":
                new_arena = SharedFrameArena.attach(message[1])
                store = new_arena.load_store()
                service.install_snapshot(store, generation=message[2])
                del store
                if arena is not None:
                    # The old snapshot died with the install; collect any
                    # stragglers so the old mapping's views are released.
                    gc.collect()
                    arena.dispose()
                arena = new_arena
                conn.send(("loaded", message[2]))
            elif kind == "load_disk":
                # Disk-tier roll: every replica maps the same committed page
                # file (cleanup=False — the builder owns orphan sweeping),
                # so the kernel page cache is the fleet's shared copy.
                new_disk = DiskShardStore.open(
                    message[1],
                    cache_budget=message[3],
                    registry=registry,
                    cleanup=False,
                )
                if new_disk.generation != message[2]:
                    generation = new_disk.generation
                    new_disk.close()
                    raise ServiceError(
                        f"disk store serves generation {generation}, "
                        f"expected {message[2]}"
                    )
                service.install_snapshot(
                    new_disk.serving_store(), generation=message[2]
                )
                if disk is not None:
                    gc.collect()
                    disk.close()
                disk = new_disk
                conn.send(("loaded", message[2]))
            elif kind == "stats":
                stats = service.stats()
                conn.send(
                    (
                        "stats",
                        {
                            "replica": index,
                            "pid": os.getpid(),
                            "generation": stats.generation,
                            "queries": stats.queries,
                            "batches": stats.batches,
                            "positives": stats.positives,
                            "rss_bytes": stats.rss_bytes,
                        },
                    )
                )
            elif kind == "listen":
                if runner is not None:
                    raise ServiceError("replica is already listening")
                runner = _ReuseportRunner(service, message[1], message[2], message[3])
                conn.send(("listening", runner.port))
            elif kind == "ping":
                conn.send(("pong", index))
            elif kind == "stop":
                conn.send(("stopped", index))
                break
            else:
                conn.send(("error", f"unknown command {kind!r}"))
        except Exception as exc:
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except Exception:
                break
    if runner is not None:
        runner.stop()
    with contextlib.suppress(Exception):
        service._snapshot = None
        gc.collect()
        if arena is not None:
            arena.dispose()
        if disk is not None:
            disk.close()
    with contextlib.suppress(Exception):
        conn.close()


def _mp_context():
    """Start-method policy, same reasoning as ``shards._process_pool``."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context()  # pragma: no cover - Windows


class _Replica:
    """Parent-side handle for one replica process."""

    __slots__ = ("index", "process", "conn")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn


def _recv(conn, timeout: float, what: str):
    if not conn.poll(timeout):
        raise ServiceError(f"timed out after {timeout:.0f}s waiting for {what}")
    try:
        return conn.recv()
    except (EOFError, OSError) as exc:
        raise ServiceError(f"replica died while answering {what}") from exc


def _expect(conn, kind: str, timeout: float, what: str):
    reply = _recv(conn, timeout, what)
    if reply[0] == "error":
        raise ServiceError(f"replica error during {what}: {reply[1]}")
    if reply[0] != kind:
        raise ServiceError(f"replica protocol violation: expected {kind!r}, got {reply[0]!r}")
    return reply


class ReplicaPool:
    """R replica processes serving one shared-memory filter store.

    Duck-types the service surface of
    :class:`~repro.service.server.MembershipService` that the asyncio
    front-end consumes — plug a pool straight into
    :class:`~repro.service.aserve.AdaptiveMicroBatcher` or
    :class:`~repro.service.aserve.AsyncMembershipServer` and the batcher
    keeps ``replicas`` windows in flight (it reads
    :attr:`dispatch_parallelism`).

    The parent holds the *builder* (a private :class:`MembershipService`
    that never serves queries): :meth:`load` / :meth:`rebuild` build a store
    in the parent (incremental rebuilds included), publish it as a
    :class:`SharedFrameArena`, and roll every replica onto the new
    generation atomically — in-flight windows drain first, so the window
    stream observes generations in monotone order and no window mixes two.

    Args:
        replicas: Worker process count (the pool's dispatch parallelism).
        backend: Filter backend, as for :class:`MembershipService`.
        num_shards: Shards per generation.
        max_batch_size: Largest window :meth:`query_batch` accepts.
        router_seed: Shard-router seed (stable across generations).
        build_workers: Default parallelism for builds/rebuilds.
        registry: Metrics registry; per-replica dispatch counters live here
            and a scrape-time collector re-exports the service families
            (``repro_service_queries_total`` etc.) with a ``replica`` label,
            so one ``GET /metrics`` on the front-end aggregates the fleet.
        request_timeout: Seconds to wait for a replica's window answer.
        load_timeout: Seconds to wait for a replica to install a generation.
        start_method: Override the multiprocessing start method (default:
            fork while single-threaded, else forkserver, else spawn).
        fpr_estimator: An optional :class:`~repro.obs.FprEstimator`,
            attached to the parent-side builder.  Replicas answer the
            queries, so the parent feeds each dispatched window back into
            the estimator (and the builder store's per-shard counters) —
            the same live evidence the single-process service collects.
        adaptive_policy: An optional
            :class:`~repro.service.adaptive.AdaptivePolicy` on the builder;
            adaptive migrations then ride :meth:`rebuild`'s drain-then-roll
            swap, keeping the fleet's generation stream atomic.
        store_path: When set, generations persist through the builder's
            :class:`~repro.service.diskstore.DiskShardStore` and replicas
            serve by mapping the *same* page file instead of attaching a
            shared-memory arena — the kernel page cache becomes the fleet's
            one copy of the filter bytes, and it survives restarts.
        cache_budget: Per-replica byte budget for decoded hot shards in
            disk mode (``None`` = unbounded, ``0`` = always cold).
        backend_kwargs: Forwarded to the backend factory.
    """

    def __init__(
        self,
        replicas: int = 4,
        backend: BackendSpec = "habf",
        num_shards: int = 4,
        max_batch_size: int = 65536,
        router_seed: int = 0,
        build_workers: Optional[int] = None,
        registry: Optional[Registry] = None,
        request_timeout: float = 30.0,
        load_timeout: float = 120.0,
        start_method: Optional[str] = None,
        fpr_estimator: Optional[FprEstimator] = None,
        adaptive_policy: Optional[AdaptivePolicy] = None,
        store_path=None,
        cache_budget: Optional[int] = None,
        **backend_kwargs,
    ) -> None:
        if replicas < 1:
            raise ServiceError("a replica pool needs at least 1 replica")
        self._num_replicas = replicas
        self._store_path = store_path
        self._cache_budget = cache_budget
        self._max_batch_size = max_batch_size
        self._request_timeout = request_timeout
        self._load_timeout = load_timeout
        self._start_method = start_method
        self._registry = registry if registry is not None else default_registry()
        self._builder = MembershipService(
            backend=backend,
            num_shards=num_shards,
            max_batch_size=max_batch_size,
            router_seed=router_seed,
            build_workers=build_workers,
            registry=self._registry,
            fpr_estimator=fpr_estimator,
            adaptive_policy=adaptive_policy,
            store_path=store_path,
            cache_budget=cache_budget,
            **backend_kwargs,
        )
        self._replicas: List[_Replica] = []
        self._free: "queue.Queue[_Replica]" = queue.Queue()
        self._arena: Optional[SharedFrameArena] = None
        self._reuseport_socket: Optional[socket.socket] = None
        self._closed = False
        self._swap_lock = threading.Lock()
        self._latency = LatencyWindow(4096)
        self._obs_label = f"pool-{next(_POOL_IDS)}"
        self._make_instruments()
        self._registry.add_collector(self._collect_replica_families)

    def _make_instruments(self) -> None:
        registry, label = self._registry, self._obs_label
        count = self._num_replicas
        windows = registry.counter(
            "repro_replica_windows_total",
            "Micro-batch windows dispatched to each replica",
            ("pool", "replica"),
        )
        keys = registry.counter(
            "repro_replica_keys_total",
            "Keys answered by each replica",
            ("pool", "replica"),
        )
        positives = registry.counter(
            "repro_replica_positives_total",
            "Verdicts answered present by each replica",
            ("pool", "replica"),
        )
        dispatch = registry.histogram(
            "repro_replica_dispatch_seconds",
            "Round-trip time of one window through a replica (pipe + engine)",
            ("pool", "replica"),
        )
        self._replica_windows = [windows.labels(label, str(i)) for i in range(count)]
        self._replica_keys = [keys.labels(label, str(i)) for i in range(count)]
        self._replica_positives = [positives.labels(label, str(i)) for i in range(count)]
        self._replica_dispatch = [dispatch.labels(label, str(i)) for i in range(count)]
        self._rejected = registry.counter(
            "repro_service_rejected_batches_total",
            "Batch calls refused (empty or oversized)",
            ("service",),
        ).labels(label)

    def _collect_replica_families(self) -> List[CollectedFamily]:
        """Scrape-time per-replica view on the *existing* service families.

        The front-end's ``GET /metrics`` thereby aggregates the whole fleet:
        ``repro_service_queries_total{service="pool-1",replica="2"}`` sits
        next to the single-process ``service="svc-N"`` children, and the
        per-replica split is the parent's own dispatch accounting (no IPC at
        scrape time).
        """
        base = (("service", self._obs_label),)

        def family(name: str, help_text: str, children) -> CollectedFamily:
            return CollectedFamily(
                name=name,
                kind="counter",
                help=help_text,
                samples=tuple(
                    Sample("", base + (("replica", str(i)),), float(child.value))
                    for i, child in enumerate(children)
                ),
            )

        return [
            family(
                "repro_service_queries_total",
                "Keys tested, scalar and batch combined",
                self._replica_keys,
            ),
            family(
                "repro_service_batches_total",
                "query_many/query_batch calls accepted",
                self._replica_windows,
            ),
            family(
                "repro_service_positives_total",
                "Membership tests answered present",
                self._replica_positives,
            ),
        ]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _spawn(self) -> None:
        context = (
            _mp_context()
            if self._start_method is None
            else __import__("multiprocessing").get_context(self._start_method)
        )
        for index in range(self._num_replicas):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_replica_main,
                args=(child_conn, index, self._max_batch_size),
                name=f"repro-replica-{index}",
                daemon=True,
            )
            process.start()
            # Close the parent's copy of the child end so a dead replica
            # surfaces as EOF instead of a hang.
            child_conn.close()
            self._replicas.append(_Replica(index, process, parent_conn))

    def _reap_dead(self) -> None:
        """Drop replicas whose process died (e.g. SIGKILL) from the fleet.

        A dead replica can never hand its free-queue token back, so leaving
        it in ``self._replicas`` would wedge the next generation swap's
        drain.  Reaping shrinks the fleet to the survivors; a later swap
        rolls exactly those (and respawns a full fleet only if none are
        left).  Stale free-queue tokens for reaped replicas are skipped at
        acquisition time.
        """
        if all(replica.process.is_alive() for replica in self._replicas):
            return
        survivors = []
        for replica in self._replicas:
            if replica.process.is_alive():
                survivors.append(replica)
                continue
            replica.process.join(timeout=0)
            with contextlib.suppress(Exception):
                replica.conn.close()
        self._replicas = survivors

    def _acquire_all(self) -> List[_Replica]:
        """Drain the free queue: returns once no window is in flight."""
        held = []
        deadline = time.monotonic() + self._request_timeout
        while len(held) < len(self._replicas):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for replica in held:
                    self._free.put(replica)
                raise ServiceError(
                    "timed out draining in-flight windows before a generation swap"
                )
            try:
                replica = self._free.get(timeout=remaining)
            except queue.Empty:
                continue
            if not replica.process.is_alive():
                continue  # stale token for a reaped replica
            held.append(replica)
        return held

    # ------------------------------------------------------------------ #
    # Loading and rebuilding
    # ------------------------------------------------------------------ #
    def load(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        workers: Optional[int] = None,
    ) -> int:
        """Build the first generation, publish it, and start the replicas."""
        return self.rebuild(keys, negatives=negatives, costs=costs, workers=workers)

    def rebuild(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        changed_keys: Optional[Sequence[Key]] = None,
        incremental: bool = True,
        workers: Optional[int] = None,
    ) -> int:
        """Build a new generation and roll every replica onto it.

        The build runs in the parent (incremental when the previous
        generation allows it, exactly like the single-process service); the
        swap acquires all replicas — draining in-flight windows — before any
        replica installs the new arena, so the answered-window stream sees
        generations in monotone order and no window mixes two.  Replicas
        that died since the last swap (e.g. SIGKILL) are reaped first, so
        the roll covers exactly the surviving fleet — an adaptive migration
        lands on every replica still serving — and a fleet with no
        survivors respawns in full.  Returns the new generation.
        """
        if self._closed:
            raise ServiceError("the replica pool is closed")
        with self._swap_lock:
            self._reap_dead()
            generation = self._builder.rebuild(
                keys,
                negatives=negatives,
                costs=costs,
                changed_keys=changed_keys,
                incremental=incremental,
                workers=workers,
            )
            self._roll_replicas(generation)
            return generation

    def _roll_replicas(self, generation: int) -> None:
        """Roll the fleet onto the builder's current snapshot.

        Caller holds ``_swap_lock`` and has already moved the builder (and,
        in disk mode, committed the generation durably).  Drains in-flight
        windows, installs the generation on every surviving replica, then
        retires the previous arena.
        """
        if self._store_path is not None:
            # Disk tier: the builder already committed this generation
            # durably; replicas roll by reopening the path (their own mmap
            # of the same pages) instead of attaching a shared-memory arena.
            load_command = (
                "load_disk",
                str(self._store_path),
                generation,
                self._cache_budget,
            )
            arena = None
        else:
            store = self._builder.snapshot.store
            arena = SharedFrameArena.publish(store, generation)
            load_command = ("load", arena.name, generation)
        try:
            if not self._replicas:
                self._spawn()
                held = list(self._replicas)
            else:
                held = self._acquire_all()
            try:
                for replica in held:
                    replica.conn.send(load_command)
                for replica in held:
                    _expect(
                        replica.conn,
                        "loaded",
                        self._load_timeout,
                        f"generation {generation} install on replica {replica.index}",
                    )
            finally:
                for replica in held:
                    self._free.put(replica)
        except Exception:
            if arena is not None:
                arena.dispose()
            raise
        previous, self._arena = self._arena, arena
        if previous is not None:
            # Every replica detached the old mapping before acking, so
            # the owner can drop the name; pages die with the mappings.
            previous.dispose()

    def install_snapshot(
        self,
        store: ShardedFilterStore,
        num_keys: Optional[int] = None,
        generation: Optional[int] = None,
        rebuilt_shards: Optional[Sequence[int]] = None,
    ) -> int:
        """Install an externally built store on the builder and roll the fleet.

        Same contract as :meth:`MembershipService.install_snapshot` — the
        generation must move forward, and ``rebuilt_shards`` lets a disk-mode
        pool commit incrementally — followed by the same drain-then-roll swap
        :meth:`rebuild` uses, so no window ever mixes generations.  This is
        what lets a whole pool act as a replication *follower*: a
        :class:`~repro.service.replication.FollowerClient` pointed at a pool
        rolls all R replicas per applied delta.
        """
        if self._closed:
            raise ServiceError("the replica pool is closed")
        with self._swap_lock:
            self._reap_dead()
            generation = self._builder.install_snapshot(
                store,
                num_keys=num_keys,
                generation=generation,
                rebuilt_shards=rebuilt_shards,
            )
            self._roll_replicas(generation)
            return generation

    def apply_snapshot_delta(self, delta) -> int:
        """Apply a replication delta fleet-wide; returns the new generation."""
        from repro.service import replication

        return replication.apply_to_service(self, delta)

    def close(self, timeout: float = 10.0) -> None:
        """Stop every replica and release the arena. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for replica in self._replicas:
            with contextlib.suppress(Exception):
                replica.conn.send(("stop",))
        for replica in self._replicas:
            with contextlib.suppress(Exception):
                if replica.conn.poll(timeout):
                    replica.conn.recv()
            replica.process.join(timeout=timeout)
            if replica.process.is_alive():
                replica.process.terminate()
                replica.process.join(timeout=timeout)
            with contextlib.suppress(Exception):
                replica.conn.close()
        self._replicas = []
        while True:
            try:
                self._free.get_nowait()
            except queue.Empty:
                break
        if self._reuseport_socket is not None:
            with contextlib.suppress(OSError):
                self._reuseport_socket.close()
            self._reuseport_socket = None
        if self._arena is not None:
            self._arena.dispose()
            self._arena = None
        disk = self._builder.disk_store
        if disk is not None:
            disk.close()

    # ------------------------------------------------------------------ #
    # Query dispatch (thread-safe; called from the batcher's executor)
    # ------------------------------------------------------------------ #
    def query_batch(self, keys: "vec.BatchLike") -> BatchAnswer:
        """Dispatch one window to a free replica; returns its answer.

        Thread-safe: the free-queue hands each concurrent caller its own
        replica, so R batcher dispatch threads drive R replicas in parallel.
        The reported generation is whatever snapshot the replica served —
        one generation per window, by construction.
        """
        raw = list(keys.keys) if isinstance(keys, vec.KeyBatch) else list(keys)
        if not raw or len(raw) > self._max_batch_size:
            self._rejected.inc()
            raise ServiceError(
                f"batch of {len(raw)} keys rejected; accepted sizes are "
                f"1..{self._max_batch_size}"
            )
        if self._closed:
            raise ServiceError("the replica pool is closed")
        if not self._replicas:
            raise ServiceError("the pool has no snapshot yet; call load() first")
        try:
            replica = self._free.get(timeout=self._request_timeout)
        except queue.Empty:
            raise ServiceError(
                f"no replica became free within {self._request_timeout:.0f}s"
            ) from None
        healthy = False
        start = time.perf_counter()
        try:
            try:
                replica.conn.send(("query", raw))
            except (BrokenPipeError, OSError) as exc:
                raise ServiceError(
                    f"replica {replica.index} is gone (broken pipe)"
                ) from exc
            reply = _expect(
                replica.conn,
                "answer",
                self._request_timeout,
                f"window of {len(raw)} keys on replica {replica.index}",
            )
            healthy = True
        finally:
            if healthy or replica.process.is_alive():
                self._free.put(replica)
        elapsed = time.perf_counter() - start
        _tag, generation, count, positives, payload, _engine_seconds = reply
        verdicts = _unpack_verdicts(payload, count)
        index = replica.index
        self._replica_windows[index].inc()
        self._replica_keys[index].inc(count)
        if positives:
            self._replica_positives[index].inc(positives)
        self._replica_dispatch[index].observe(elapsed)
        self._latency.record(elapsed / max(count, 1))
        # Replicas answer from their own store copies, so the builder's
        # per-shard counters (the adaptive scorer's traffic evidence) and
        # the FPR estimator only see this window if the parent feeds it
        # back.  One router pass serves both.
        estimator = self._builder.fpr_estimator
        if estimator is not None or self._builder.adaptive_policy is not None:
            snapshot = self._builder.snapshot
            if snapshot is not None:
                shards = snapshot.store.record_shard_traffic(raw, verdicts)
                if positives and estimator is not None and estimator.active:
                    estimator.observe_batch(
                        raw, verdicts, snapshot.store.shard_of, shards=shards
                    )
        return BatchAnswer(
            verdicts=verdicts, generation=generation, elapsed_seconds=elapsed
        )

    def query_many(self, keys: Sequence[Key]) -> List[bool]:
        """Batch membership test, in input order (one replica per call)."""
        return self.query_batch(keys).verdicts

    def query(self, key: Key) -> bool:
        """Single-key convenience (a one-key window; prefer batches)."""
        return self.query_batch([key]).verdicts[0]

    # ------------------------------------------------------------------ #
    # SO_REUSEPORT direct-accept mode
    # ------------------------------------------------------------------ #
    def start_reuseport(
        self, host: str = "127.0.0.1", port: int = 0, **server_opts
    ) -> Tuple[str, int]:
        """Have every replica accept TCP connections on one shared port.

        The parent binds (but never listens on) a ``SO_REUSEPORT`` socket to
        reserve the port for the pool's lifetime; each replica then runs its
        own :class:`~repro.service.aserve.AsyncMembershipServer` listening on
        that port with ``reuse_port=True``, and the kernel load-balances
        accepted connections across replicas — no dispatcher process in the
        data path.  ``server_opts`` are forwarded to each replica's server
        (``max_batch=...``, ``max_wait_ms=...``).  Returns ``(host, port)``.
        """
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ServiceError("SO_REUSEPORT is not available on this platform")
        if self._closed:
            raise ServiceError("the replica pool is closed")
        if not self._replicas:
            raise ServiceError("the pool has no snapshot yet; call load() first")
        reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            reserve.bind((host, port))
        except OSError:
            reserve.close()
            raise
        actual_port = reserve.getsockname()[1]
        self._reuseport_socket = reserve
        held = self._acquire_all()
        try:
            for replica in held:
                replica.conn.send(("listen", host, actual_port, dict(server_opts)))
            for replica in held:
                _expect(
                    replica.conn,
                    "listening",
                    self._load_timeout,
                    f"reuseport listener on replica {replica.index}",
                )
        finally:
            for replica in held:
                self._free.put(replica)
        return host, actual_port

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """Generation the fleet serves (0 before the first load)."""
        return self._builder.generation

    @property
    def snapshot(self):
        """The builder's serving snapshot (what the fleet was rolled onto),
        or ``None`` before the first load.  Replication diffs against this."""
        return self._builder.snapshot

    @property
    def max_batch_size(self) -> int:
        """Largest window :meth:`query_batch` accepts."""
        return self._max_batch_size

    @property
    def registry(self) -> Registry:
        """The metrics registry the pool (and its builder) report to."""
        return self._registry

    @property
    def dispatch_parallelism(self) -> int:
        """Windows the front-end should keep in flight (= replica count)."""
        return self._num_replicas

    @property
    def num_replicas(self) -> int:
        """Configured replica process count."""
        return self._num_replicas

    @property
    def arena(self) -> Optional[SharedFrameArena]:
        """The currently published arena (``None`` before the first load,
        and always ``None`` in disk mode)."""
        return self._arena

    @property
    def disk_store(self):
        """The builder's disk tier, or ``None`` (shared-memory mode)."""
        return self._builder.disk_store

    @property
    def replica_pids(self) -> List[int]:
        """PIDs of the live replica processes (for memory accounting)."""
        return [
            replica.process.pid
            for replica in self._replicas
            if replica.process.pid is not None
        ]

    @property
    def fpr_estimator(self) -> Optional[FprEstimator]:
        """The builder's live-FPR estimator, or ``None``."""
        return self._builder.fpr_estimator

    @property
    def adaptive_policy(self) -> Optional[AdaptivePolicy]:
        """The builder's adaptive backend-selection policy, or ``None``."""
        return self._builder.adaptive_policy

    def stats(self) -> ServiceStats:
        """Fleet-aggregated stats in the standard :class:`ServiceStats` shape.

        Build/rebuild counters come from the parent's builder; traffic
        counters are the parent-side dispatch accounting summed over
        replicas.  Without an estimator or adaptive policy the per-shard
        rows report build-time facts only (replica-resident counters are
        available via :meth:`stats_by_replica`); with one attached, the
        parent's window feedback keeps the builder's shard counters — and
        therefore the rows here — tracking replica traffic.
        """
        stats = self._builder.stats()
        stats.queries = sum(int(child.value) for child in self._replica_keys)
        stats.batches = sum(int(child.value) for child in self._replica_windows)
        stats.positives = sum(int(child.value) for child in self._replica_positives)
        stats.rejected_batches = int(self._rejected.value)
        samples = self._latency.samples()
        stats.latency = latency_percentiles(samples) if samples else None
        return stats

    def stats_by_replica(self) -> List[dict]:
        """Fetch each replica's own counters over the control channel.

        Acquires replicas one at a time (windows keep flowing on the rest);
        includes replica-side queries served through ``SO_REUSEPORT``
        listeners, which the parent's dispatch accounting cannot see.
        """
        if self._closed or not self._replicas:
            return []
        reports = []
        for _ in range(len(self._replicas)):
            replica = self._free.get(timeout=self._request_timeout)
            if not replica.process.is_alive():
                continue  # stale token for a dead replica; drop it
            try:
                replica.conn.send(("stats",))
                reply = _expect(
                    replica.conn,
                    "stats",
                    self._request_timeout,
                    f"stats from replica {replica.index}",
                )
                reports.append(reply[1])
            finally:
                self._free.put(replica)
        reports.sort(key=lambda report: report["replica"])
        return reports

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicaPool(replicas={self._num_replicas}, "
            f"generation={self.generation}, closed={self._closed})"
        )
