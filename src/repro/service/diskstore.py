"""Disk-backed shard store: page-oriented frame file + mmap cold reads.

Every shard of a :class:`~repro.service.shards.ShardedFilterStore` already
round-trips through one self-describing codec frame; this module keeps those
frames *on disk* and serves queries from an ``mmap`` of the file, so a key
set much larger than RAM answers with a bounded resident footprint.

Layout on disk (one directory per store)::

    <store_path>/
        DIRECTORY              the commit point (atomic-rename target)
        frames-000001.pages    append-only page file of codec frames

``DIRECTORY`` is a single CRC-trailed record mapping each shard id to its
*page run* in the page file::

    offset 0   magic     4 bytes  b"DSKD"
    offset 4   version   1 byte   currently 1
    offset 5   length    4 bytes  payload size (big-endian)
    offset 9   payload   page_size | store generation | page-file epoch |
                         next free page | router seed | backend name |
                         page-file name | per shard: key count, shard
                         generation, fingerprint, backend name, size bits,
                         start page, frame bytes, frame crc32
    offset -4  crc32     4 bytes  over version + length + payload

Commits are crash-safe by construction: new frames are appended (or a whole
new page file is written under a fresh name), ``fsync``\\ ed, and only then
does ``DIRECTORY`` get replaced via write-temp + ``fsync`` + atomic rename +
parent-directory ``fsync``.  A crash at any instant leaves either the old
directory (pointing at untouched old runs — appended garbage past
``next_free_page`` is simply ignored) or the new one (whose runs were synced
first).  There is no torn state to repair, only orphan files to sweep on the
next owning :meth:`DiskShardStore.open`.

Serving composes with the rest of the stack instead of forking it: each
committed generation becomes an immutable *epoch* — one ``mmap`` of the page
file plus a regular :class:`ShardedFilterStore` whose per-shard filters are
lazy proxies.  A proxy resolves through a byte-budgeted LRU of decoded
shards; a miss decodes the shard's frame straight off the mapping with
``codec.loads(..., zero_copy=True)``, so the decoded ``BitArray`` is a
:meth:`~repro.core.bitarray.BitArray.view` aliasing the file pages — cold
shards cost page-cache pages, not heap.  The epoch view plugs into
:class:`~repro.service.server.MembershipService` snapshots unchanged, which
is how the async front-end, incremental rebuilds, and the multi-process
replica pool (every replica maps the same file; the kernel shares the pages)
all gain the disk tier for free.

Incremental rebuilds stay incremental on disk: :meth:`DiskShardStore.commit`
takes the rebuilt shard list and appends only those shards' frames — clean
shards keep their existing page runs, so a one-dirty-shard rebuild writes
O(one shard) bytes.  Appends accumulate garbage (superseded runs); when the
dead fraction exceeds ``compact_ratio`` the commit finishes by rewriting the
live frames into a fresh page file (same crash-safe protocol) and unlinking
the old one — readers still holding the old mapping keep it alive through
the inode until they drop it.
"""

from __future__ import annotations

import contextlib
import itertools
import mmap
import os
import threading
import time
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CodecError, ServiceError
from repro.obs import Registry, default_registry
from repro.service import codec
from repro.service.shards import ShardedFilterStore

__all__ = ["DiskShardStore", "DirectoryEntry", "DEFAULT_PAGE_SIZE"]

#: Magic bytes opening the DIRECTORY record.
DIRECTORY_MAGIC = b"DSKD"

#: Current DIRECTORY format version.
DIRECTORY_VERSION = 1

#: The commit-point file name inside a store directory.
DIRECTORY_NAME = "DIRECTORY"

_DIRECTORY_TMP = "DIRECTORY.tmp"

#: Default page size frames are aligned to (one kernel page on most targets).
DEFAULT_PAGE_SIZE = 4096

_DISK_IDS = itertools.count(1)

#: Test-only fault injection: when set, called with a named point inside the
#: commit protocol ("pages-appended", "pages-synced", "directory-written",
#: "directory-renamed", "before-cleanup").  The crash battery SIGKILLs the
#: process at each point and asserts the store reopens consistent.
_FAULT_HOOK: Optional[Callable[[str], None]] = None


def _maybe_fault(point: str) -> None:
    hook = _FAULT_HOOK
    if hook is not None:
        hook(point)


class DirectoryEntry:
    """One shard's row in the directory: where its frame lives, and what it is."""

    __slots__ = (
        "key_count",
        "generation",
        "fingerprint",
        "backend_name",
        "size_in_bits",
        "start_page",
        "frame_bytes",
        "frame_crc",
    )

    def __init__(
        self,
        key_count: int,
        generation: int,
        fingerprint: Optional[int],
        backend_name: str,
        size_in_bits: int,
        start_page: int,
        frame_bytes: int,
        frame_crc: int,
    ) -> None:
        self.key_count = key_count
        self.generation = generation
        self.fingerprint = fingerprint
        self.backend_name = backend_name
        self.size_in_bits = size_in_bits
        self.start_page = start_page
        self.frame_bytes = frame_bytes
        self.frame_crc = frame_crc


class _Directory:
    """Decoded DIRECTORY record (immutable by convention)."""

    __slots__ = (
        "page_size",
        "generation",
        "epoch",
        "next_free_page",
        "router_seed",
        "backend_name",
        "pages_name",
        "shards",
    )

    def __init__(
        self,
        page_size: int,
        generation: int,
        epoch: int,
        next_free_page: int,
        router_seed: int,
        backend_name: str,
        pages_name: str,
        shards: Tuple[DirectoryEntry, ...],
    ) -> None:
        self.page_size = page_size
        self.generation = generation
        self.epoch = epoch
        self.next_free_page = next_free_page
        self.router_seed = router_seed
        self.backend_name = backend_name
        self.pages_name = pages_name
        self.shards = shards

    def encode(self) -> bytes:
        writer = codec._Writer()
        writer.u32(self.page_size)
        writer.u64(self.generation)
        writer.u64(self.epoch)
        writer.u64(self.next_free_page)
        writer.u64(self.router_seed)
        writer.str_field(self.backend_name)
        writer.str_field(self.pages_name)
        writer.u32(len(self.shards))
        for entry in self.shards:
            writer.u64(entry.key_count)
            writer.u32(entry.generation)
            writer.u8(1 if entry.fingerprint is not None else 0)
            writer.u64(entry.fingerprint or 0)
            writer.str_field(entry.backend_name)
            writer.u64(entry.size_in_bits)
            writer.u64(entry.start_page)
            writer.u64(entry.frame_bytes)
            writer.u32(entry.frame_crc)
        payload = writer.getvalue()
        head = codec._Writer()
        head.raw(DIRECTORY_MAGIC)
        head.u8(DIRECTORY_VERSION)
        head.u32(len(payload))
        body = head.getvalue() + payload
        # CRC over everything after the magic, so a flipped version or
        # length byte is just as loud as a flipped payload byte.
        return body + zlib.crc32(body[4:]).to_bytes(4, "big")

    @classmethod
    def decode(cls, data: bytes) -> "_Directory":
        if len(data) < 13:
            raise CodecError(
                f"directory record too short: {len(data)} bytes < minimum 13"
            )
        if bytes(data[:4]) != DIRECTORY_MAGIC:
            raise CodecError(
                f"bad directory magic {bytes(data[:4])!r} (expected {DIRECTORY_MAGIC!r})"
            )
        version = data[4]
        if version != DIRECTORY_VERSION:
            raise CodecError(f"unsupported directory version {version}")
        length = int.from_bytes(data[5:9], "big")
        if len(data) != 9 + length + 4:
            raise CodecError(
                f"directory length mismatch: header declares {length} payload "
                f"bytes but the record holds {len(data) - 13}"
            )
        stored_crc = int.from_bytes(data[-4:], "big")
        actual_crc = zlib.crc32(data[4:-4])
        if stored_crc != actual_crc:
            raise CodecError(
                f"directory checksum mismatch: stored {stored_crc:#010x}, "
                f"computed {actual_crc:#010x}"
            )
        reader = codec._Reader(data[9:-4])
        page_size = reader.u32()
        generation = reader.u64()
        epoch = reader.u64()
        next_free_page = reader.u64()
        router_seed = reader.u64()
        backend_name = bytes(reader.take(reader.u32())).decode("utf-8")
        pages_name = bytes(reader.take(reader.u32())).decode("utf-8")
        num_shards = reader.u32()
        if page_size < 1 or num_shards < 1 or next_free_page < 1:
            raise CodecError(
                "directory record is internally inconsistent "
                f"(page_size={page_size}, shards={num_shards}, "
                f"next_free_page={next_free_page})"
            )
        shards = []
        for _ in range(num_shards):
            key_count = reader.u64()
            shard_generation = reader.u32()
            has_fingerprint = reader.u8()
            fingerprint = reader.u64()
            name = bytes(reader.take(reader.u32())).decode("utf-8")
            size_in_bits = reader.u64()
            start_page = reader.u64()
            frame_bytes = reader.u64()
            frame_crc = reader.u32()
            pages = -(-frame_bytes // page_size) if frame_bytes else 0
            if frame_bytes < codec._HEADER.size + 4:
                raise CodecError(
                    f"directory declares a {frame_bytes}-byte frame, smaller "
                    "than a frame header"
                )
            if start_page + pages > next_free_page:
                raise CodecError(
                    f"shard run [{start_page}, {start_page + pages}) exceeds "
                    f"the directory's next free page {next_free_page}"
                )
            shards.append(
                DirectoryEntry(
                    key_count=key_count,
                    generation=shard_generation,
                    fingerprint=fingerprint if has_fingerprint else None,
                    backend_name=name,
                    size_in_bits=size_in_bits,
                    start_page=start_page,
                    frame_bytes=frame_bytes,
                    frame_crc=frame_crc,
                )
            )
        return cls(
            page_size=page_size,
            generation=generation,
            epoch=epoch,
            next_free_page=next_free_page,
            router_seed=router_seed,
            backend_name=backend_name,
            pages_name=pages_name,
            shards=tuple(shards),
        )


class _Epoch:
    """One committed directory plus its live mapping and serving view."""

    __slots__ = ("directory", "mm", "buf", "view", "pages_path")

    def __init__(self, directory: _Directory, mm: mmap.mmap, pages_path: Path) -> None:
        self.directory = directory
        self.mm = mm
        # A single memoryview over the mapping; frame reads slice it, so a
        # cold decode never copies the file bytes into the heap.
        self.buf = memoryview(mm)
        self.view: Optional[ShardedFilterStore] = None
        self.pages_path = pages_path


class _LazyShardFilter:
    """Filter proxy bound to one epoch's shard; decodes on first probe.

    Satisfies the duck type :meth:`ShardedFilterStore.query_many` dispatches
    on (``_contains_batch`` / ``contains_many`` / ``contains``) plus the
    ``size_in_bits`` the stats layer reads — the latter answered from the
    directory, so introspection never faults a cold shard in.
    """

    __slots__ = ("_owner", "_epoch", "_shard")

    def __init__(self, owner: "DiskShardStore", epoch: _Epoch, shard: int) -> None:
        self._owner = owner
        self._epoch = epoch
        self._shard = shard

    @property
    def algorithm_name(self) -> str:
        return self._epoch.directory.shards[self._shard].backend_name

    def _resolve(self):
        return self._owner._filter_for(self._epoch, self._shard)

    def contains(self, key) -> bool:
        return bool(self._resolve().contains(key))

    def __contains__(self, key) -> bool:
        return self.contains(key)

    def contains_many(self, keys) -> List[bool]:
        target = self._resolve()
        many = getattr(target, "contains_many", None)
        if many is not None:
            return many(keys)
        return [bool(target.contains(key)) for key in keys]

    def _contains_batch(self, batch):
        target = self._resolve()
        batch_fn = getattr(target, "_contains_batch", None)
        if batch_fn is not None:
            return batch_fn(batch)
        return None

    def size_in_bits(self) -> int:
        return self._epoch.directory.shards[self._shard].size_in_bits


class _FrameCache:
    """Byte-budgeted LRU of decoded shard filters.

    Cost is the shard's *serialized* frame size — deterministic, directory
    known, and proportional to the real footprint for copy-decoded filters
    (zero-copy decodes alias the mapping, so the budget then bounds how much
    of the mapping cache entries may pin).  ``budget=None`` means unbounded;
    ``budget=0`` disables admission entirely (every probe decodes cold).
    """

    __slots__ = ("budget", "bytes", "hits", "misses", "evictions", "_entries")

    def __init__(self, budget: Optional[int]) -> None:
        self.budget = budget
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, Tuple[object, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: tuple, value: object, cost: int) -> None:
        if self.budget is not None and self.budget <= 0:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= old[1]
        self._entries[key] = (value, cost)
        self.bytes += cost
        if self.budget is not None:
            while self.bytes > self.budget and self._entries:
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self.bytes -= evicted_cost
                self.evictions += 1

    def prune(self, live_keys) -> None:
        """Drop entries no committed directory can reach any more."""
        live = set(live_keys)
        for key in [key for key in self._entries if key not in live]:
            _, cost = self._entries.pop(key)
            self.bytes -= cost

    def clear(self) -> None:
        self._entries.clear()
        self.bytes = 0


class DiskShardStore:
    """A sharded filter store persisted as page-aligned codec frames.

    Create one from a built store with :meth:`create`, reopen it with
    :meth:`open`, publish new generations with :meth:`commit` (append-only
    for incremental rebuilds), and serve through :meth:`serving_store` — a
    regular :class:`ShardedFilterStore` whose shards decode lazily off the
    mapping through the byte-budgeted LRU.

    Args (via :meth:`create` / :meth:`open`):
        cache_budget: Max bytes of decoded shards kept hot (``None`` =
            unbounded, ``0`` = always cold).
        compact_ratio: Dead-byte fraction of the page file above which a
            commit rewrites it (default 0.5).
        registry: Metrics registry for the ``repro_disk_*`` families.
        cleanup: Sweep orphan temp/page files on open.  Pass ``False`` from
            non-owning readers (replicas) — a concurrent owner commit may
            legitimately be building files an orphan sweep would delete.
    """

    def __init__(self, *args, **kwargs) -> None:
        raise ServiceError(
            "use DiskShardStore.create(path, store, ...) or "
            "DiskShardStore.open(path, ...)"
        )

    @classmethod
    def _new(
        cls,
        path: Path,
        cache_budget: Optional[int],
        compact_ratio: float,
        registry: Optional[Registry],
    ) -> "DiskShardStore":
        if not 0.0 < compact_ratio <= 1.0:
            raise ServiceError(
                f"compact_ratio must be in (0, 1], got {compact_ratio}"
            )
        if cache_budget is not None and cache_budget < 0:
            raise ServiceError(f"cache_budget must be >= 0, got {cache_budget}")
        self = object.__new__(cls)
        self._path = path
        self._compact_ratio = compact_ratio
        self._cache = _FrameCache(cache_budget)
        self._lock = threading.Lock()
        self._commit_lock = threading.Lock()
        self._epoch: Optional[_Epoch] = None
        self._closed = False
        self._registry = registry if registry is not None else default_registry()
        self._obs_label = f"disk-{next(_DISK_IDS)}"
        self._make_instruments(cache_budget)
        return self

    def _make_instruments(self, cache_budget: Optional[int]) -> None:
        registry, label = self._registry, self._obs_label
        self._hits_counter = registry.counter(
            "repro_disk_cache_hits_total",
            "Shard probes answered by the hot decoded-shard cache",
            ("store",),
        ).labels(label)
        self._misses_counter = registry.counter(
            "repro_disk_cache_misses_total",
            "Shard probes that decoded the frame cold off the mapping",
            ("store",),
        ).labels(label)
        self._evictions_counter = registry.counter(
            "repro_disk_cache_evictions_total",
            "Decoded shards evicted to stay within the byte budget",
            ("store",),
        ).labels(label)
        self._cache_bytes_gauge = registry.gauge(
            "repro_disk_cache_bytes",
            "Serialized bytes of the decoded shards currently cached",
            ("store",),
        ).labels(label)
        self._budget_gauge = registry.gauge(
            "repro_disk_cache_budget_bytes",
            "Configured shard-cache byte budget (-1 = unbounded)",
            ("store",),
        ).labels(label)
        self._budget_gauge.set(-1 if cache_budget is None else cache_budget)
        self._mapped_gauge = registry.gauge(
            "repro_disk_mapped_bytes",
            "Bytes of the page file the serving epoch has mapped",
            ("store",),
        ).labels(label)
        self._cold_read_seconds = registry.histogram(
            "repro_disk_cold_read_seconds",
            "Latency decoding one shard frame from the mapping (cache miss)",
            ("store",),
        ).labels(label)
        self._commits_counter = registry.counter(
            "repro_disk_commits_total",
            "Directory commits (creates, incremental appends, full rewrites)",
            ("store",),
        ).labels(label)
        self._compactions_counter = registry.counter(
            "repro_disk_compactions_total",
            "Page-file rewrites triggered by the dead-byte ratio",
            ("store",),
        ).labels(label)
        self._pages_written_counter = registry.counter(
            "repro_disk_pages_written_total",
            "Pages appended or rewritten across all commits",
            ("store",),
        ).labels(label)

    # ------------------------------------------------------------------ #
    # Creation / opening
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        path,
        store: ShardedFilterStore,
        generation: int = 1,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_budget: Optional[int] = None,
        compact_ratio: float = 0.5,
        registry: Optional[Registry] = None,
    ) -> "DiskShardStore":
        """Persist ``store`` into a fresh store directory and serve it."""
        if generation < 1:
            raise ServiceError(f"store generation must be >= 1, got {generation}")
        if page_size < 64:
            raise ServiceError(f"page_size must be >= 64, got {page_size}")
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        if (path / DIRECTORY_NAME).exists():
            raise ServiceError(
                f"{path} already holds a store; open() it instead of create()"
            )
        self = cls._new(path, cache_budget, compact_ratio, registry)
        self._page_size = page_size
        with self._commit_lock:
            self._commit_full(store, generation, epoch=1)
        return self

    @classmethod
    def exists(cls, path) -> bool:
        """Whether ``path`` holds a committed store directory."""
        return (Path(path) / DIRECTORY_NAME).exists()

    @classmethod
    def open(
        cls,
        path,
        *,
        cache_budget: Optional[int] = None,
        compact_ratio: float = 0.5,
        registry: Optional[Registry] = None,
        cleanup: bool = True,
    ) -> "DiskShardStore":
        """Open an existing store directory at its last committed generation.

        Raises:
            CodecError: when the directory record or page file is corrupt,
                truncated, or internally inconsistent (a crash between the
                page-file sync and the directory rename is *not* corruption
                — the previous directory simply still rules).
            ServiceError: when ``path`` holds no store at all.
        """
        path = Path(path)
        directory_path = path / DIRECTORY_NAME
        if not directory_path.exists():
            raise ServiceError(f"{path} holds no {DIRECTORY_NAME}; create() one first")
        directory = _Directory.decode(directory_path.read_bytes())
        self = cls._new(path, cache_budget, compact_ratio, registry)
        self._page_size = directory.page_size
        self._install_epoch(directory)
        if cleanup:
            self._sweep_orphans(directory)
        return self

    def _sweep_orphans(self, directory: _Directory) -> None:
        """Remove leftovers of interrupted commits (owner-side only)."""
        with contextlib.suppress(OSError):
            (self._path / _DIRECTORY_TMP).unlink()
        for candidate in self._path.glob("frames-*.pages"):
            if candidate.name != directory.pages_name:
                with contextlib.suppress(OSError):
                    candidate.unlink()

    def _install_epoch(self, directory: _Directory) -> _Epoch:
        """Map the directory's page file and swap it in as the serving epoch."""
        pages_path = self._path / directory.pages_name
        mapped_bytes = directory.next_free_page * directory.page_size
        try:
            size = os.path.getsize(pages_path)
        except OSError as exc:
            raise CodecError(
                f"directory references missing page file {directory.pages_name!r}"
            ) from exc
        if size < mapped_bytes:
            raise CodecError(
                f"page file {directory.pages_name!r} holds {size} bytes but the "
                f"directory expects at least {mapped_bytes} (truncated file)"
            )
        with open(pages_path, "rb") as handle:
            mm = mmap.mmap(handle.fileno(), mapped_bytes, access=mmap.ACCESS_READ)
        epoch = _Epoch(directory, mm, pages_path)
        epoch.view = ShardedFilterStore.from_parts(
            filters=[
                _LazyShardFilter(self, epoch, shard)
                for shard in range(len(directory.shards))
            ],
            router_seed=directory.router_seed,
            backend_name=directory.backend_name,
            shard_key_counts=[entry.key_count for entry in directory.shards],
            shard_generations=[entry.generation for entry in directory.shards],
            shard_fingerprints=[entry.fingerprint for entry in directory.shards],
            shard_backend_names=[entry.backend_name for entry in directory.shards],
        )
        self._epoch = epoch
        self._mapped_gauge.set(mapped_bytes)
        with self._lock:
            self._cache.prune(
                (shard, entry.generation, entry.frame_crc)
                for shard, entry in enumerate(directory.shards)
            )
            self._cache_bytes_gauge.set(self._cache.bytes)
        return epoch

    # ------------------------------------------------------------------ #
    # Commit protocol
    # ------------------------------------------------------------------ #
    @staticmethod
    def _shard_entry(
        store: ShardedFilterStore,
        shard: int,
        frame: Optional[bytes],
        start_page: int,
        previous: Optional[DirectoryEntry],
    ) -> DirectoryEntry:
        if frame is None:
            assert previous is not None
            return previous
        size = getattr(store.filters[shard], "size_in_bits", None)
        return DirectoryEntry(
            key_count=store.shard_key_counts[shard],
            generation=store.shard_generations[shard],
            fingerprint=store.shard_fingerprints[shard],
            backend_name=store.shard_backend_names[shard],
            size_in_bits=int(size()) if callable(size) else 0,
            start_page=start_page,
            frame_bytes=len(frame),
            frame_crc=zlib.crc32(frame),
        )

    def _write_directory(self, directory: _Directory) -> None:
        record = directory.encode()
        tmp = self._path / _DIRECTORY_TMP
        with open(tmp, "wb") as handle:
            handle.write(record)
            handle.flush()
            os.fsync(handle.fileno())
        _maybe_fault("directory-written")
        os.replace(tmp, self._path / DIRECTORY_NAME)
        _maybe_fault("directory-renamed")
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        with contextlib.suppress(OSError):
            fd = os.open(self._path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    def _pages_of(self, frame_bytes: int) -> int:
        return -(-frame_bytes // self._page_size)

    def _commit_full(
        self, store: ShardedFilterStore, generation: int, epoch: int
    ) -> None:
        """Write every shard's frame into a fresh page file, then swap."""
        page_size = self._page_size
        pages_name = f"frames-{epoch:06d}.pages"
        pages_path = self._path / pages_name
        entries: List[DirectoryEntry] = []
        next_page = 0
        with open(pages_path, "wb") as handle:
            for shard in range(store.num_shards):
                frame = codec.dumps(store.filters[shard])
                entries.append(
                    self._shard_entry(store, shard, frame, next_page, None)
                )
                handle.write(frame)
                pages = self._pages_of(len(frame))
                padding = pages * page_size - len(frame)
                if padding:
                    handle.write(b"\x00" * padding)
                next_page += pages
            _maybe_fault("pages-appended")
            handle.flush()
            os.fsync(handle.fileno())
        _maybe_fault("pages-synced")
        directory = _Directory(
            page_size=page_size,
            generation=generation,
            epoch=epoch,
            next_free_page=next_page,
            router_seed=store.router_seed,
            backend_name=store.backend_name,
            pages_name=pages_name,
            shards=tuple(entries),
        )
        self._write_directory(directory)
        _maybe_fault("before-cleanup")
        previous = self._epoch
        self._install_epoch(directory)
        if previous is not None and previous.pages_path.name != pages_name:
            with contextlib.suppress(OSError):
                previous.pages_path.unlink()
        self._commits_counter.inc()
        self._pages_written_counter.inc(next_page)

    def _commit_append(
        self,
        store: ShardedFilterStore,
        generation: int,
        dirty: Sequence[int],
    ) -> None:
        """Append only the dirty shards' frames behind the current epoch."""
        current = self._epoch
        assert current is not None
        old = current.directory
        frames: Dict[int, bytes] = {
            shard: codec.dumps(store.filters[shard]) for shard in sorted(set(dirty))
        }
        page_size = self._page_size
        next_page = old.next_free_page
        entries: List[DirectoryEntry] = []
        starts: Dict[int, int] = {}
        for shard in sorted(frames):
            starts[shard] = next_page
            next_page += self._pages_of(len(frames[shard]))
        for shard in range(store.num_shards):
            frame = frames.get(shard)
            if frame is None and store.shard_generations[shard] != old.shards[shard].generation:
                raise ServiceError(
                    f"shard {shard} was not in rebuilt_shards but its generation "
                    f"moved ({old.shards[shard].generation} -> "
                    f"{store.shard_generations[shard]}); commit it as dirty"
                )
            entries.append(
                self._shard_entry(
                    store, shard, frame, starts.get(shard, 0), old.shards[shard]
                )
            )
        with open(current.pages_path, "r+b") as handle:
            handle.seek(old.next_free_page * page_size)
            for shard in sorted(frames):
                frame = frames[shard]
                handle.write(frame)
                padding = self._pages_of(len(frame)) * page_size - len(frame)
                if padding:
                    handle.write(b"\x00" * padding)
            _maybe_fault("pages-appended")
            handle.flush()
            os.fsync(handle.fileno())
        _maybe_fault("pages-synced")
        directory = _Directory(
            page_size=page_size,
            generation=generation,
            epoch=old.epoch,
            next_free_page=next_page,
            router_seed=store.router_seed,
            backend_name=store.backend_name,
            pages_name=old.pages_name,
            shards=tuple(entries),
        )
        self._write_directory(directory)
        _maybe_fault("before-cleanup")
        self._install_epoch(directory)
        self._commits_counter.inc()
        self._pages_written_counter.inc(next_page - old.next_free_page)

    def commit(
        self,
        store: ShardedFilterStore,
        generation: int,
        rebuilt_shards: Optional[Sequence[int]] = None,
    ) -> int:
        """Persist ``store`` as the next generation; returns it.

        ``rebuilt_shards`` (the list :meth:`ShardedFilterStore.rebuild_from`
        returns) turns the commit incremental: only those shards' frames are
        appended, every other shard keeps its page run — which also means
        clean shards' filters are never serialized, so a store whose clean
        shards are this store's own lazy proxies commits without faulting
        them in.  ``None`` (or a list covering every shard) writes a full
        fresh page file.  Either way the directory rename is the atomic
        commit point, and the in-memory store swaps to the new epoch only
        after it — a failed or killed commit leaves both the file state and
        this process serving the previous generation.
        """
        if self._closed:
            raise ServiceError("the disk store is closed")
        with self._commit_lock:
            current = self._epoch
            if current is None:
                raise ServiceError("store was never created; use create()")
            old = current.directory
            if generation <= old.generation:
                raise ServiceError(
                    f"store generation must move forward: {generation} <= "
                    f"committed {old.generation}"
                )
            geometry_changed = (
                store.num_shards != len(old.shards)
                or store.router_seed != old.router_seed
            )
            full = (
                rebuilt_shards is None
                or len(set(rebuilt_shards)) >= store.num_shards
            )
            if geometry_changed and not full:
                raise ServiceError(
                    "store geometry changed (shards or router seed); an "
                    "incremental commit cannot describe that — pass "
                    "rebuilt_shards=None"
                )
            if full:
                self._commit_full(store, generation, epoch=old.epoch + 1)
            else:
                self._commit_append(store, generation, rebuilt_shards)
                if self.garbage_ratio > self._compact_ratio:
                    self._compact()
            return generation

    def _compact(self) -> None:
        """Rewrite the live frames into a fresh page file (same generation)."""
        current = self._epoch
        assert current is not None
        old = current.directory
        page_size = self._page_size
        epoch = old.epoch + 1
        pages_name = f"frames-{epoch:06d}.pages"
        pages_path = self._path / pages_name
        entries: List[DirectoryEntry] = []
        next_page = 0
        with open(pages_path, "wb") as handle:
            for shard, entry in enumerate(old.shards):
                offset = entry.start_page * page_size
                frame = bytes(current.buf[offset : offset + entry.frame_bytes])
                start = next_page
                handle.write(frame)
                pages = self._pages_of(len(frame))
                padding = pages * page_size - len(frame)
                if padding:
                    handle.write(b"\x00" * padding)
                next_page += pages
                entries.append(
                    DirectoryEntry(
                        key_count=entry.key_count,
                        generation=entry.generation,
                        fingerprint=entry.fingerprint,
                        backend_name=entry.backend_name,
                        size_in_bits=entry.size_in_bits,
                        start_page=start,
                        frame_bytes=entry.frame_bytes,
                        frame_crc=entry.frame_crc,
                    )
                )
            _maybe_fault("pages-appended")
            handle.flush()
            os.fsync(handle.fileno())
        _maybe_fault("pages-synced")
        directory = _Directory(
            page_size=page_size,
            generation=old.generation,
            epoch=epoch,
            next_free_page=next_page,
            router_seed=old.router_seed,
            backend_name=old.backend_name,
            pages_name=pages_name,
            shards=tuple(entries),
        )
        self._write_directory(directory)
        _maybe_fault("before-cleanup")
        previous = self._epoch
        self._install_epoch(directory)
        if previous is not None:
            with contextlib.suppress(OSError):
                previous.pages_path.unlink()
        self._compactions_counter.inc()
        self._pages_written_counter.inc(next_page)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def _filter_for(self, epoch: _Epoch, shard: int):
        """Resolve one shard's decoded filter through the LRU (thread-safe)."""
        entry = epoch.directory.shards[shard]
        key = (shard, entry.generation, entry.frame_crc)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits_counter.inc()
                return cached
            self._misses_counter.inc()
        start = time.perf_counter()
        offset = entry.start_page * epoch.directory.page_size
        frame = epoch.buf[offset : offset + entry.frame_bytes]
        decoded = codec.loads(frame, zero_copy=True)
        self._cold_read_seconds.observe(time.perf_counter() - start)
        with self._lock:
            before = self._cache.evictions
            self._cache.put(key, decoded, entry.frame_bytes)
            evicted = self._cache.evictions - before
            if evicted:
                self._evictions_counter.inc(evicted)
            self._cache_bytes_gauge.set(self._cache.bytes)
        return decoded

    def serving_store(self) -> ShardedFilterStore:
        """The current epoch's store view (lazy shards; plug into snapshots)."""
        epoch = self._require_epoch()
        return epoch.view

    def materialize(self) -> ShardedFilterStore:
        """Decode every shard into a plain in-RAM store (no mapping aliases).

        This is what :meth:`MembershipService.save_snapshot` serializes in
        disk mode — proxies cannot cross the codec, real filters can.
        """
        epoch = self._require_epoch()
        directory = epoch.directory
        filters = []
        for entry in directory.shards:
            offset = entry.start_page * directory.page_size
            frame = bytes(epoch.buf[offset : offset + entry.frame_bytes])
            filters.append(codec.loads(frame))
        return ShardedFilterStore.from_parts(
            filters=filters,
            router_seed=directory.router_seed,
            backend_name=directory.backend_name,
            shard_key_counts=[entry.key_count for entry in directory.shards],
            shard_generations=[entry.generation for entry in directory.shards],
            shard_fingerprints=[entry.fingerprint for entry in directory.shards],
            shard_backend_names=[entry.backend_name for entry in directory.shards],
        )

    def verify(self) -> int:
        """Scrub every shard: directory CRC vs frame bytes, full decode.

        Returns the number of shards checked; raises :class:`CodecError` on
        the first mismatch.  (Normal reads already CRC-check through the
        codec; this is the explicit offline scrub.)
        """
        epoch = self._require_epoch()
        directory = epoch.directory
        for shard, entry in enumerate(directory.shards):
            offset = entry.start_page * directory.page_size
            frame = bytes(epoch.buf[offset : offset + entry.frame_bytes])
            crc = zlib.crc32(frame)
            if crc != entry.frame_crc:
                raise CodecError(
                    f"shard {shard} frame checksum mismatch: directory has "
                    f"{entry.frame_crc:#010x}, file has {crc:#010x}"
                )
            codec.loads(frame)
        return len(directory.shards)

    def _require_epoch(self) -> _Epoch:
        epoch = self._epoch
        if epoch is None or self._closed:
            raise ServiceError("the disk store is closed")
        return epoch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """The store directory."""
        return self._path

    @property
    def page_size(self) -> int:
        """Bytes per page (fixed at create time)."""
        return self._page_size

    @property
    def generation(self) -> int:
        """The committed store generation currently serving."""
        return self._require_epoch().directory.generation

    @property
    def num_shards(self) -> int:
        """Shards in the committed directory."""
        return len(self._require_epoch().directory.shards)

    @property
    def mapped_bytes(self) -> int:
        """Bytes of the page file the serving epoch has mapped."""
        directory = self._require_epoch().directory
        return directory.next_free_page * directory.page_size

    @property
    def live_bytes(self) -> int:
        """Page-rounded bytes of the frames the directory references."""
        directory = self._require_epoch().directory
        return sum(
            self._pages_of(entry.frame_bytes) * directory.page_size
            for entry in directory.shards
        )

    @property
    def garbage_ratio(self) -> float:
        """Dead fraction of the page file (superseded runs from appends)."""
        mapped = self.mapped_bytes
        if not mapped:
            return 0.0
        return 1.0 - self.live_bytes / mapped

    @property
    def pages_file(self) -> Path:
        """Path of the current page file (for memory accounting in tests)."""
        return self._require_epoch().pages_path

    @property
    def cache_budget(self) -> Optional[int]:
        """Configured decoded-shard cache budget in bytes."""
        return self._cache.budget

    def cache_stats(self) -> Dict[str, int]:
        """Point-in-time cache counters (hits/misses/evictions/bytes/entries)."""
        with self._lock:
            return {
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "bytes": self._cache.bytes,
                "entries": len(self._cache),
            }

    def close(self) -> None:
        """Drop the cache and release the mapping. Idempotent.

        Serving snapshots still holding this store's views keep the mapping
        alive through their buffer references; the close is then deferred to
        their collection (same contract as the shared-memory arena).
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._cache.clear()
            self._cache_bytes_gauge.set(0)
        epoch, self._epoch = self._epoch, None
        if epoch is not None:
            epoch.view = None
            epoch.buf = None
            with contextlib.suppress(BufferError):
                epoch.mm.close()
        self._mapped_gauge.set(0)

    def __enter__(self) -> "DiskShardStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._epoch is None:
            return f"DiskShardStore(path={str(self._path)!r}, closed)"
        directory = self._epoch.directory
        return (
            f"DiskShardStore(path={str(self._path)!r}, "
            f"generation={directory.generation}, shards={len(directory.shards)}, "
            f"mapped_bytes={self.mapped_bytes})"
        )
