"""Workload-adaptive backend selection: score backends per shard, migrate losers.

The paper's premise is that filter configuration should follow the observed
cost and distribution of keys, yet a service that pins one backend statically
for every shard re-decides nothing as traffic drifts.  This module closes
that loop with the telemetry the serving layer already collects:

* :class:`BackendScorer` reads a shard's live evidence — the
  :class:`~repro.obs.fpr_estimator.FprEstimator`'s observed and
  cost-weighted FPR, the shard's traffic counters, and its in-memory
  footprint — and computes a weighted composite score for each candidate
  backend *without building anything*: the incumbent is scored from its
  live numbers, challengers from analytic models of the same quantities
  (candidate sizing comes from each backend's policy parameters).  The
  composite is a weighted sum over the evidence layers that are actually
  available, normalised by the weight of those layers — the
  multi-criteria idiom where missing evidence shrinks the denominator
  instead of silently counting as zero.

* :class:`AdaptivePolicy` turns per-shard scores into a
  :class:`MigrationPlan`: a shard migrates only when a challenger beats the
  incumbent by at least ``hysteresis`` *and* the estimator has sampled
  enough of that shard's traffic to trust the live numbers.  The plan's
  ``assignments`` feed straight into
  :meth:`~repro.service.shards.ShardedFilterStore.rebuild_from`'s
  ``shard_backends``, so migrations ride the existing atomic
  generation-roll (single-process and :class:`~repro.service.multiproc.ReplicaPool`
  alike) and mixed-backend stores persist through the unchanged frame-v2
  codec.

What makes a challenger winnable without building it?  The estimator splits
a shard's error mass into *known* false positives (keys registered as the
rebuild's negatives) and unseen ones.  A negative-aware backend (HABF tunes
hash families against exactly those keys) can suppress much of the known
mass but none of the unseen mass; an oblivious backend (standard Bloom,
xor) suppresses neither but may spend its bit budget more efficiently.
:data:`KNOWN_NEGATIVE_SUPPRESSION` encodes those priors per registered
backend, and the cost layer multiplies a challenger's analytic FPR by the
fraction of cost mass it is expected to keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.fpr_estimator import ShardFprEstimate
from repro.service.stats import ShardStats
from repro.theory.bloom_math import min_fpr_for_bits_per_key

__all__ = [
    "KNOWN_NEGATIVE_SUPPRESSION",
    "AdaptivePolicy",
    "BackendCandidate",
    "BackendScorer",
    "MigrationPlan",
    "ShardScore",
    "analytic_bits_per_key",
    "analytic_fpr",
]

#: Fraction of *known-negative* false-positive cost each backend is expected
#: to suppress when rebuilt with those negatives in hand.  HABF/f-HABF
#: re-pick hash families specifically to exclude the registered negatives
#: (the paper's core mechanism); WBF reassigns its weighted budget; the
#: learned baselines generalise from them less reliably; standard Bloom and
#: xor ignore negatives entirely.  Unlisted (custom-registered) backends
#: default to 0.0 — no claimed suppression — which only ever under-sells a
#: challenger, never mis-migrates toward it.
KNOWN_NEGATIVE_SUPPRESSION: Dict[str, float] = {
    "habf": 0.95,
    "f-habf": 0.95,
    "wbf": 0.85,
    "slbf": 0.6,
    "lbf": 0.5,
    "adabf": 0.5,
    "bloom": 0.0,
    "bloom-dh": 0.0,
    "xor": 0.0,
}

#: Default evidence-layer weights: cost-weighted error dominates (it is the
#: paper's objective, Eq. 1/20), raw FPR second, memory footprint a
#: tie-breaker.
DEFAULT_WEIGHTS: Dict[str, float] = {"fpr": 0.35, "cost": 0.45, "memory": 0.20}


def analytic_fpr(name: str, bits_per_key: float, num_keys: int) -> float:
    """A backend's model FPR at ``bits_per_key`` over ``num_keys`` keys.

    The xor filter's rate is set by its fingerprint width (``2^-f`` with
    ``f`` derived from the bit budget); every other registered backend is
    Bloom-shaped at its budget, so the optimal-k Bloom bound is the common
    prior — including for HABF, whose *advantage* over that bound comes
    from negatives and costs, which the scorer's cost layer models
    separately.  Unknown (custom) names fall back to the Bloom bound too.

    >>> round(analytic_fpr("bloom", 10.0, 1000), 5)
    0.00819
    >>> round(analytic_fpr("xor", 10.0, 1000), 5)
    0.00391
    """
    if num_keys < 1:
        return 0.0
    if name == "xor":
        from repro.baselines.xor_filter import fingerprint_bits_for_budget

        return 2.0 ** -fingerprint_bits_for_budget(bits_per_key, num_keys)
    return min_fpr_for_bits_per_key(bits_per_key)


def analytic_bits_per_key(name: str, bits_per_key: float, num_keys: int) -> float:
    """A backend's expected in-memory bits per key at a nominal budget.

    Most backends consume the budget they are asked for; the xor filter's
    peeling construction over-allocates ~23% slots plus a constant, so its
    footprint model follows its capacity formula rather than the nominal
    budget.
    """
    if name == "xor" and num_keys >= 1:
        from repro.baselines.xor_filter import fingerprint_bits_for_budget

        bits = fingerprint_bits_for_budget(bits_per_key, num_keys)
        return bits * (1.23 + 32.0 / num_keys)
    return float(bits_per_key)


@dataclass(frozen=True)
class BackendCandidate:
    """One backend the policy may migrate shards to.

    ``kwargs`` are passed to the registry when the candidate wins a shard
    (``resolve_backend(name, **kwargs)``); ``bits_per_key`` inside them
    also parameterises the analytic scoring models (default 10.0, the
    registry's own default budget).
    """

    name: str
    kwargs: Mapping[str, object] = field(default_factory=dict)

    @property
    def bits_per_key(self) -> float:
        return float(self.kwargs.get("bits_per_key", 10.0))


@dataclass
class ShardScore:
    """Scoring outcome for one shard.

    Attributes:
        shard: Shard index.
        incumbent: Backend currently serving the shard.
        winner: Highest-scoring backend (ties prefer the incumbent).
        margin: ``scores[winner] - scores[incumbent]`` (0.0 when the
            incumbent wins).
        live: Whether the incumbent was scored from live estimator
            evidence (enough samples) rather than its analytic model.
        scores: Composite score per backend name, higher is better.
    """

    shard: int
    incumbent: str
    winner: str
    margin: float
    live: bool
    scores: Dict[str, float] = field(default_factory=dict)


@dataclass
class MigrationPlan:
    """What an evaluation decided, in the shape ``rebuild_from`` consumes.

    Attributes:
        assignments: shard → ``(backend_name, kwargs)`` for every shard
            whose target backend is one of the policy's candidates —
            passed as ``shard_backends`` so migrated shards *stay*
            migrated on later rebuilds.  Shards serving on a backend
            outside the candidate set (and not migrating) are omitted and
            keep the service-level default.
        migrations: Shards whose backend changes in this plan.
        scores: Per-shard scoring detail, in shard order.
    """

    assignments: Dict[int, Tuple[str, dict]] = field(default_factory=dict)
    migrations: List[int] = field(default_factory=list)
    scores: List[ShardScore] = field(default_factory=list)


class BackendScorer:
    """Scores candidate backends for one shard from available evidence.

    Three layers, each *lower-is-better* in raw form and normalised to
    ``[0, 1]`` across the candidates before weighting:

    * ``fpr`` — always available.  The incumbent contributes its live
      ``observed_fpr`` once ``min_sampled`` positive verdicts were
      shadow-checked; before that (and for every challenger) the analytic
      model of :func:`analytic_fpr` stands in.  With live evidence a
      challenger's analytic rate is scaled by the *count* of error mass it
      would keep (``1 − suppression × known_fp_fraction``) — a
      negative-aware backend's observed FPR on this traffic mix would be
      lower than its Bloom-shaped bound exactly when the shard's false
      positives concentrate on known negatives.
    * ``cost`` — only once live evidence exists.  The incumbent
      contributes its live ``cost_weighted_fpr``; a challenger contributes
      its analytic FPR scaled by the error-cost mass it would *keep*:
      ``analytic × (1 − suppression × known_fp_cost_fraction)``.
    * ``memory`` — always available.  The incumbent contributes its actual
      ``size_in_bits / num_keys``; challengers their
      :func:`analytic_bits_per_key`.

    The composite is ``Σ weight·score / Σ weight`` over the layers that
    produced values, so an unavailable layer redistributes its weight
    instead of dragging every candidate toward zero.

    >>> from repro.service.stats import ShardStats
    >>> scorer = BackendScorer(min_sampled=100)
    >>> stats = ShardStats(shard=0, num_keys=1000, queries=5000,
    ...                    positives=2600, size_in_bits=10000, backend="bloom")
    >>> candidates = [BackendCandidate("bloom"), BackendCandidate("xor")]
    >>> scores = scorer.score_shard(stats, None, candidates)
    >>> scores["xor"] > scores["bloom"]  # analytic only: xor wins on FPR
    True
    """

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        min_sampled: int = 200,
        suppression: Optional[Mapping[str, float]] = None,
    ) -> None:
        merged = dict(DEFAULT_WEIGHTS)
        if weights:
            merged.update(weights)
        unknown = set(merged) - set(DEFAULT_WEIGHTS)
        if unknown:
            raise ConfigurationError(
                f"unknown scoring layers {sorted(unknown)}; "
                f"expected a subset of {sorted(DEFAULT_WEIGHTS)}"
            )
        if any(value < 0 for value in merged.values()) or not any(
            merged.values()
        ):
            raise ConfigurationError("scoring weights must be >= 0, not all zero")
        if min_sampled < 1:
            raise ConfigurationError("min_sampled must be at least 1")
        self._weights = merged
        self._min_sampled = min_sampled
        self._suppression = dict(KNOWN_NEGATIVE_SUPPRESSION)
        if suppression:
            self._suppression.update(suppression)

    @property
    def min_sampled(self) -> int:
        """Samples required before live evidence outranks the analytic model."""
        return self._min_sampled

    def live_ok(self, estimate: Optional[ShardFprEstimate]) -> bool:
        """Whether an estimate carries enough samples to trust."""
        return (
            estimate is not None
            and estimate.sampled >= self._min_sampled
            and estimate.observed_fpr is not None
        )

    def score_shard(
        self,
        stats: ShardStats,
        estimate: Optional[ShardFprEstimate],
        candidates: Sequence[BackendCandidate],
    ) -> Dict[str, float]:
        """Composite score per candidate backend name, higher is better."""
        if not candidates:
            return {}
        incumbent = stats.backend
        num_keys = stats.num_keys
        live = self.live_ok(estimate)
        layers: List[Tuple[float, List[float]]] = []

        count_fraction = (
            min(1.0, max(0.0, estimate.known_fp_fraction)) if live else 0.0
        )
        fpr_values = []
        for candidate in candidates:
            if live and candidate.name == incumbent:
                fpr_values.append(float(estimate.observed_fpr))
            else:
                kept = (
                    1.0
                    - self._suppression.get(candidate.name, 0.0) * count_fraction
                )
                fpr_values.append(
                    analytic_fpr(candidate.name, candidate.bits_per_key, num_keys)
                    * kept
                )
        layers.append((self._weights["fpr"], fpr_values))

        if live and estimate.cost_weighted_fpr is not None:
            fraction = min(1.0, max(0.0, estimate.known_fp_cost_fraction))
            cost_values = []
            for candidate in candidates:
                if candidate.name == incumbent:
                    cost_values.append(float(estimate.cost_weighted_fpr))
                else:
                    kept = 1.0 - self._suppression.get(candidate.name, 0.0) * fraction
                    cost_values.append(
                        analytic_fpr(
                            candidate.name, candidate.bits_per_key, num_keys
                        )
                        * kept
                    )
            layers.append((self._weights["cost"], cost_values))

        memory_values = []
        for candidate in candidates:
            if candidate.name == incumbent and num_keys > 0 and stats.size_in_bits:
                memory_values.append(stats.size_in_bits / num_keys)
            else:
                memory_values.append(
                    analytic_bits_per_key(
                        candidate.name, candidate.bits_per_key, num_keys
                    )
                )
        layers.append((self._weights["memory"], memory_values))

        totals = [0.0] * len(candidates)
        available_weight = 0.0
        for weight, values in layers:
            if weight <= 0.0:
                continue
            low, high = min(values), max(values)
            spread = high - low
            for index, value in enumerate(values):
                normalised = 1.0 if spread <= 0.0 else (high - value) / spread
                totals[index] += weight * normalised
            available_weight += weight
        if available_weight <= 0.0:
            return {candidate.name: 0.0 for candidate in candidates}
        return {
            candidate.name: totals[index] / available_weight
            for index, candidate in enumerate(candidates)
        }


class AdaptivePolicy:
    """Decides, at rebuild time, which backend should serve each shard.

    Install one on a :class:`~repro.service.server.MembershipService`
    (``adaptive_policy=``); every ``rebuild()`` then evaluates the live
    evidence and folds the resulting plan into the store construction, so a
    migration is exactly as atomic as the rebuild carrying it.

    Args:
        candidates: Backends eligible to serve shards.  The service's
            default backend is worth listing (with its kwargs) so the
            scorer can defend it explicitly; an incumbent missing from the
            list is still scored (with default kwargs) but can only lose
            shards, never gain them.
        scorer: Scoring function (default :class:`BackendScorer`).
        hysteresis: Minimum composite-score margin a challenger needs over
            the incumbent before a shard migrates.  Post-migration the
            estimator's evidence for that shard resets, and the shard
            cannot move again until ``min_sampled`` fresh samples accrue —
            the two together damp flapping.

    >>> from repro.service.stats import ShardStats
    >>> from repro.obs.fpr_estimator import ShardFprEstimate
    >>> policy = AdaptivePolicy(
    ...     [BackendCandidate("bloom", {"bits_per_key": 10.0}),
    ...      BackendCandidate("habf", {"bits_per_key": 10.0})],
    ...     scorer=BackendScorer(min_sampled=100),
    ... )
    >>> stats = ShardStats(shard=0, num_keys=1000, queries=20000,
    ...                    positives=2000, size_in_bits=10000, backend="bloom")
    >>> hot = ShardFprEstimate(  # costly, known-negative-dominated errors
    ...     shard=0, sampled=500, false_positives=60, fp_fraction=0.12,
    ...     observed_fpr=0.012, cost_weighted_fpr=0.08, queries=20000,
    ...     positives=2000, known_false_positives=55,
    ...     known_fp_fraction=0.92, known_fp_cost_fraction=0.95)
    >>> plan = policy.plan([stats], [hot])
    >>> plan.migrations
    [0]
    >>> plan.assignments[0][0]
    'habf'
    """

    def __init__(
        self,
        candidates: Sequence[BackendCandidate],
        scorer: Optional[BackendScorer] = None,
        hysteresis: float = 0.05,
    ) -> None:
        if not candidates:
            raise ConfigurationError("an adaptive policy needs at least one candidate")
        names = [candidate.name for candidate in candidates]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate candidate backends: {names}")
        if hysteresis < 0.0:
            raise ConfigurationError("hysteresis must be >= 0")
        self._candidates = list(candidates)
        self._by_name = {candidate.name: candidate for candidate in candidates}
        self._scorer = scorer or BackendScorer()
        self._hysteresis = hysteresis

    @property
    def candidates(self) -> List[BackendCandidate]:
        return list(self._candidates)

    @property
    def scorer(self) -> BackendScorer:
        return self._scorer

    @property
    def hysteresis(self) -> float:
        return self._hysteresis

    def plan(
        self,
        shard_stats: Sequence[ShardStats],
        estimates: Sequence[Optional[ShardFprEstimate]],
    ) -> MigrationPlan:
        """Score every shard and decide its target backend.

        ``shard_stats`` comes from the serving store
        (:meth:`~repro.service.shards.ShardedFilterStore.shard_stats`),
        ``estimates`` from
        :meth:`~repro.obs.fpr_estimator.FprEstimator.estimates` over the
        same list (entries may be ``None`` for shards without evidence).
        """
        plan = MigrationPlan()
        for index, stats in enumerate(shard_stats):
            estimate = estimates[index] if index < len(estimates) else None
            incumbent = stats.backend
            roster = list(self._candidates)
            if incumbent and incumbent not in self._by_name:
                roster.append(BackendCandidate(incumbent))
            scores = self._scorer.score_shard(stats, estimate, roster)
            if not scores:
                continue
            best = max(
                scores,
                key=lambda name: (scores[name], name == incumbent),
            )
            incumbent_score = scores.get(incumbent, 0.0)
            margin = scores[best] - incumbent_score
            live = self._scorer.live_ok(estimate)
            migrate = (
                best != incumbent
                and best in self._by_name
                and live
                and stats.queries > 0
                and margin >= self._hysteresis
            )
            winner = best if migrate else (incumbent or best)
            plan.scores.append(
                ShardScore(
                    shard=stats.shard,
                    incumbent=incumbent,
                    winner=winner,
                    margin=margin if migrate else 0.0,
                    live=live,
                    scores=scores,
                )
            )
            if migrate:
                plan.migrations.append(stats.shard)
                target = self._by_name[best]
                plan.assignments[stats.shard] = (target.name, dict(target.kwargs))
            elif incumbent in self._by_name:
                # Keep a previously-migrated (or explicitly listed) shard on
                # its incumbent: omitting it would revert the shard to the
                # rebuild's call-level backend.
                keep = self._by_name[incumbent]
                plan.assignments[stats.shard] = (keep.name, dict(keep.kwargs))
        return plan
