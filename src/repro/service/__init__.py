"""Sharded membership-serving subsystem built on the :mod:`repro.core` filters.

The reproduction's core modules build and query filters in-process, one shot
at a time.  This subpackage turns them into something deployable — the
blacklist-gateway / LSM read-path setting the paper motivates:

* :mod:`repro.service.codec` — a versioned, checksummed binary frame format
  that round-trips every filter (BitArray, BloomFilter, HashExpressor, HABF,
  f-HABF, Xor, WBF and the learned LBF/SLBF/Ada-BF with their score model)
  to and from ``bytes``, so built filters can be persisted and shipped
  between processes.
* :mod:`repro.service.backends` — a registry exposing every filter family
  through the single ``create_filter(keys, negatives, costs)`` interface
  shared with :mod:`repro.kvstore.filter_policy`.
* :mod:`repro.service.shards` — :class:`ShardedFilterStore`, which partitions
  keys across N independently-built filters (in parallel with
  ``workers=N``), answers batches by grouping keys per shard, and tracks
  per-shard generations plus key-set fingerprints so rebuilds can skip
  clean shards.
* :mod:`repro.service.server` — :class:`MembershipService`, a
  generation-versioned serving core with atomic hot-swap rebuilds
  (incremental by default: only dirty shards are reconstructed) and
  latency-percentile statistics.
* :mod:`repro.service.aserve` — the asyncio front-end:
  :class:`AdaptiveMicroBatcher` coalesces concurrent callers into engine
  batches and :class:`AsyncMembershipServer` exposes TCP/HTTP protocols on
  top of it (see ``docs/SERVING.md``).
* :mod:`repro.service.multiproc` — the multi-process serving tier:
  :class:`SharedFrameArena` lays a whole store's codec frame out in one
  ``multiprocessing.shared_memory`` segment and :class:`ReplicaPool` runs R
  worker processes that decode it zero-copy and answer micro-batch windows
  (pipe dispatch or ``SO_REUSEPORT`` direct accept), with
  generation-consistent fleet-wide rebuilds.
* :mod:`repro.service.diskstore` — the disk tier: :class:`DiskShardStore`
  persists every shard's codec frame in a page-oriented file behind an
  atomically-renamed directory, serves cold shards zero-copy off an
  ``mmap`` and hot shards from a byte-budgeted LRU, and plugs into
  ``MembershipService(store_path=...)`` / ``ReplicaPool(store_path=...)``
  so key sets larger than RAM serve with bounded resident memory.
* :mod:`repro.service.replication` — the cluster tier: snapshot *deltas*
  (only the dirty shards' codec frames plus per-shard expectations) shipped
  from a builder to N followers over a length-prefixed, CRC-framed TCP
  protocol (:class:`BuilderPublisher` / :class:`FollowerClient`), applied as
  the same atomic ``install_snapshot`` hot-swap — one builder, many
  followers, all answering with the generation they serve.
* :mod:`repro.service.stats` — the stats dataclasses shared by the above
  (since the telemetry layer, views over :mod:`repro.obs` registry
  instruments; ``GET /metrics`` and the ``METRICS`` line command expose the
  same numbers in Prometheus text format).
* :mod:`repro.service.adaptive` — workload-adaptive backend selection:
  :class:`BackendScorer` scores every candidate backend per shard from the
  live telemetry (observed/cost-weighted FPR, traffic, memory) and
  :class:`AdaptivePolicy` migrates losing shards to the winner as part of
  the ordinary atomic rebuild swap, producing mixed-backend stores the
  codec persists unchanged.
"""

from repro.service.adaptive import (
    AdaptivePolicy,
    BackendCandidate,
    BackendScorer,
    MigrationPlan,
    ShardScore,
)
from repro.service.aserve import AdaptiveMicroBatcher, AsyncMembershipServer
from repro.service.backends import (
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.service.codec import (
    CODEC_VERSION,
    FRAME_MAGIC,
    dump,
    dumps,
    load,
    loads,
    loads_as,
)
from repro.service.diskstore import DEFAULT_PAGE_SIZE, DirectoryEntry, DiskShardStore
from repro.service.multiproc import ReplicaPool, SharedFrameArena
from repro.service.replication import (
    BuilderPublisher,
    FollowerClient,
    SnapshotDelta,
    StaleBaseError,
    apply_delta,
    apply_to_service,
    decode_delta,
    encode_delta,
    full_snapshot,
    make_delta,
)
from repro.service.server import BatchAnswer, MembershipService, Snapshot
from repro.service.shards import EmptyShardFilter, ShardRouter, ShardedFilterStore
from repro.service.stats import (
    AdaptiveStats,
    LatencyWindow,
    MicroBatchStats,
    ServiceStats,
    ShardStats,
)

__all__ = [
    "MembershipService",
    "Snapshot",
    "BatchAnswer",
    "AdaptivePolicy",
    "AdaptiveStats",
    "BackendCandidate",
    "BackendScorer",
    "MigrationPlan",
    "ShardScore",
    "AdaptiveMicroBatcher",
    "AsyncMembershipServer",
    "ReplicaPool",
    "SharedFrameArena",
    "BuilderPublisher",
    "FollowerClient",
    "SnapshotDelta",
    "StaleBaseError",
    "make_delta",
    "full_snapshot",
    "encode_delta",
    "decode_delta",
    "apply_delta",
    "apply_to_service",
    "DiskShardStore",
    "DirectoryEntry",
    "DEFAULT_PAGE_SIZE",
    "MicroBatchStats",
    "ShardedFilterStore",
    "ShardRouter",
    "EmptyShardFilter",
    "ServiceStats",
    "ShardStats",
    "LatencyWindow",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "dumps",
    "loads",
    "loads_as",
    "dump",
    "load",
    "FRAME_MAGIC",
    "CODEC_VERSION",
]
