"""Asyncio serving front-end with adaptive micro-batching.

The batch engine (PR 2/3) answers a 10^5-key batch 4–14x faster than the
scalar loop, but a network front-end only sees that speedup if concurrent
scalar requests actually reach the engine *as batches*.  This module closes
that gap with three pieces, all stdlib-only:

* :class:`AdaptiveMicroBatcher` — a coalescing queue in front of
  :meth:`~repro.service.server.MembershipService.query_batch`.  Concurrent
  ``await front.query(key)`` calls park on futures; a single flusher task
  collects a window of up to ``max_batch`` keys, dispatches the whole window
  as one engine call on a worker thread, and resolves every waiter with its
  verdict plus the generation that answered.  The window deadline *adapts*
  to the observed arrival rate (see below).
* :class:`AsyncMembershipServer` — a plain TCP line protocol plus an
  optional minimal HTTP/1.1 handler, both feeding the micro-batcher, so any
  number of connections share one engine dispatch stream.
* :class:`repro.service.stats.MicroBatchStats` — batch-size / wait-time /
  queue-depth percentiles surfaced through ``stats()`` next to the service's
  own counters.

Window policy (the "adaptive" part)
-----------------------------------

A window opens at the first pending key and closes at the earliest of:

1. **full** — the window holds ``max_batch`` keys;
2. **adaptive deadline** — the projected time to fill ``max_batch`` at the
   EWMA arrival rate, clamped to ``[min_wait_ms, max_wait_ms]``.  Dense
   traffic shortens the deadline (no reason to wait — the batch fills
   anyway); sparse traffic is capped at ``max_wait_ms`` so a lonely key
   never waits longer than a few milliseconds;
3. **quiet queue** — a scheduler tick passes with no new arrivals and at
   least ``min_wait_ms`` has elapsed.  Closed-loop callers (each awaiting
   its answer before sending the next key) would otherwise pay the full
   deadline for nothing: once every in-flight caller has enqueued, waiting
   longer cannot grow the window.

Generation consistency: the flusher hands the whole window to
``query_batch``, which reads the snapshot reference exactly once — so a
window never straddles a hot rebuild, and every waiter learns which
generation answered it.

Concurrency model: all batcher state is touched only from the event-loop
thread; the engine dispatch runs on a single worker thread, so new arrivals
keep coalescing while a batch is being answered (pipelining).
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import functools
import itertools
import json
import urllib.parse
import weakref
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key
from repro.obs import (
    CONTENT_TYPE as _METRICS_CONTENT_TYPE,
)
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    Registry,
    Tracer,
    current_trace,
    default_registry,
    render_text,
    stage,
)
from repro.service.server import BatchAnswer, MembershipService
from repro.service.stats import LatencyWindow, MicroBatchStats, ServiceStats

__all__ = ["AdaptiveMicroBatcher", "AsyncMembershipServer"]

#: Floor used when converting a near-instant window into an arrival rate, so
#: one burst that coalesced in microseconds does not produce an absurd EWMA.
_MIN_WINDOW_SECONDS = 50e-6
#: EWMA smoothing factor for the arrival-rate estimate.
_RATE_SMOOTHING = 0.3

#: Distinguishes batcher instances inside shared metric families (the same
#: scheme the service uses with ``service="svc-<n>"``).
_BATCHER_IDS = itertools.count(1)


class _Span:
    """One caller's request inside a flush window: keys + the waiting future.

    Multi-key requests stay contiguous — a span is never split across two
    windows, so every request is answered by exactly one generation.  Spans
    that arrive with numpy available carry their :class:`~repro.hashing.\
vectorized.KeyBatch` encoding, which the flusher reuses via
    ``KeyBatch.concat`` instead of re-normalising the keys.
    """

    __slots__ = ("keys", "future", "batch")

    def __init__(self, keys: List[Key], future: "asyncio.Future", batch=None) -> None:
        self.keys = keys
        self.future = future
        self.batch = batch


class AdaptiveMicroBatcher:
    """Coalesce concurrent membership queries into engine-sized batches.

    Args:
        service: The :class:`~repro.service.server.MembershipService` to
            dispatch against (must be loaded before the first query).
        max_batch: Window size cap; also the bypass threshold — a single
            ``query_many`` request of at least this many keys is already a
            full batch and dispatches directly, skipping the queue.
        max_wait_ms: Hard cap on how long a window may stay open.
        min_wait_ms: Floor on the window (0 = flush as soon as the queue
            goes quiet; raise it to trade latency for larger batches under
            sparse open-loop traffic).
        executor: Worker pool for engine dispatches.  Defaults to a private
            pool of ``dispatch_parallelism`` threads.
        dispatch_parallelism: How many flush windows may be in flight at
            once.  Defaults to the service's ``dispatch_parallelism``
            attribute when it has one (a
            :class:`~repro.service.multiproc.ReplicaPool` reports its
            replica count) and 1 otherwise.  At 1 — the in-process default —
            dispatches are serialized exactly as before; the GIL makes more
            threads pointless for single-process CPU-bound work.  Above 1
            the flusher hands each window to a dispatch task and immediately
            starts collecting the next, so R replica processes answer R
            windows concurrently.
        stats_window: Samples kept for each percentile distribution.
        tracer: Mints one trace per flush window (stages ``queue_wait``,
            ``window_assembly``, ``engine_dispatch``, and — inside the store
            — ``shard_probe``).  Defaults to a tracer on the service's
            registry with span logging off; pass your own to attach a
            ``span_log``.

    Use as an async context manager, or call :meth:`aclose` explicitly; the
    flusher task starts lazily on the first query.
    """

    def __init__(
        self,
        service: MembershipService,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        min_wait_ms: float = 0.0,
        executor: Optional[ThreadPoolExecutor] = None,
        stats_window: int = 4096,
        tracer: Optional[Tracer] = None,
        dispatch_parallelism: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        service_cap = getattr(service, "max_batch_size", None)
        if service_cap is not None and max_batch > service_cap:
            raise ConfigurationError(
                f"max_batch={max_batch} exceeds the service's max_batch_size="
                f"{service_cap}; the service would reject every full window"
            )
        if min_wait_ms < 0 or max_wait_ms < min_wait_ms:
            raise ConfigurationError("need 0 <= min_wait_ms <= max_wait_ms")
        if dispatch_parallelism is None:
            dispatch_parallelism = int(getattr(service, "dispatch_parallelism", 1))
        if dispatch_parallelism < 1:
            raise ConfigurationError("dispatch_parallelism must be at least 1")
        self._parallelism = dispatch_parallelism
        self._service = service
        self._max_batch = max_batch
        self._max_wait = max_wait_ms / 1e3
        self._min_wait = min_wait_ms / 1e3
        self._owns_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=dispatch_parallelism, thread_name_prefix="aserve-dispatch"
        )
        self._inflight: set = set()
        self._inflight_sem: Optional[asyncio.Semaphore] = None
        self._spans: Deque[_Span] = deque()
        self._pending_keys = 0
        self._arrivals = 0
        self._rate_ewma = 0.0
        self._closed = False
        self._flusher: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._more: Optional[asyncio.Event] = None
        # Exact-percentile windows (event-loop thread only, aside from the
        # lock they carry internally); the monotone counters live as registry
        # instruments below.
        self._batch_sizes = LatencyWindow(stats_window)
        self._waits = LatencyWindow(stats_window)
        self._depths = LatencyWindow(stats_window)
        registry = getattr(service, "registry", None)
        self._registry: Registry = registry if registry is not None else default_registry()
        self._tracer = tracer if tracer is not None else Tracer(registry=self._registry)
        self._obs_label = f"mb-{next(_BATCHER_IDS)}"
        self._make_instruments()

    def _make_instruments(self) -> None:
        """Bind this batcher's label children in the shared metric families."""
        registry, label = self._registry, self._obs_label
        flushes = registry.counter(
            "repro_batch_flushes_total",
            "Flush windows by outcome: full (hit max_batch), timer "
            "(deadline/quiet queue), empty (every waiter cancelled)",
            ("batcher", "kind"),
        )
        self._full_flushes = flushes.labels(label, "full")
        self._timer_flushes = flushes.labels(label, "timer")
        self._empty_flushes = flushes.labels(label, "empty")
        self._coalesced_keys = registry.counter(
            "repro_batch_coalesced_keys_total",
            "Keys answered through dispatched windows",
            ("batcher",),
        ).labels(label)
        self._bypassed_batches = registry.counter(
            "repro_batch_bypassed_total",
            "Engine-sized requests that skipped the coalescing queue",
            ("batcher",),
        ).labels(label)
        self._cancelled_callers = registry.counter(
            "repro_batch_cancelled_callers_total",
            "Waiters dropped because their future was cancelled",
            ("batcher",),
        ).labels(label)
        self._batch_size_hist = registry.histogram(
            "repro_batch_size",
            "Keys per dispatched window",
            ("batcher",),
            buckets=DEFAULT_SIZE_BUCKETS,
        ).labels(label)
        self._window_seconds_hist = registry.histogram(
            "repro_batch_window_seconds",
            "How long flush windows stayed open collecting callers",
            ("batcher",),
        ).labels(label)
        self._depth_hist = registry.histogram(
            "repro_batch_queue_depth",
            "Pending keys when a flush window closed",
            ("batcher",),
            buckets=DEFAULT_SIZE_BUCKETS,
        ).labels(label)
        wait_gauge = registry.gauge(
            "repro_batch_current_wait_seconds",
            "The adaptive window deadline right now",
            ("batcher",),
        ).labels(label)
        # Weakly bound so the registry's child (whose callback closes over
        # this reference) never pins the batcher — and through it the service
        # and its filters — for the life of the process.
        ref = weakref.ref(self)

        def _current_wait() -> float:
            batcher = ref()
            return batcher.current_wait_seconds if batcher is not None else 0.0

        wait_gauge.set_function(_current_wait)

    # ------------------------------------------------------------------ #
    # Public query surface
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> MembershipService:
        """The wrapped service (shared, not copied)."""
        return self._service

    @property
    def registry(self) -> Registry:
        """The metrics registry this batcher (and its service) report to."""
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The tracer minting one trace per flush window."""
        return self._tracer

    @property
    def max_batch(self) -> int:
        """Window size cap / direct-dispatch threshold."""
        return self._max_batch

    @property
    def current_wait_seconds(self) -> float:
        """The adaptive window deadline right now (see module docstring)."""
        if self._rate_ewma <= 0.0:
            return self._max_wait
        expected_fill = self._max_batch / self._rate_ewma
        return min(self._max_wait, max(self._min_wait, expected_fill))

    async def query(self, key: Key) -> bool:
        """Membership test for one key, answered from a coalesced window."""
        verdicts, _generation = await self._submit([key])
        return verdicts[0]

    async def query_with_generation(self, key: Key) -> Tuple[bool, int]:
        """Like :meth:`query`, also reporting the generation that answered."""
        verdicts, generation = await self._submit([key])
        return verdicts[0], generation

    async def query_many(self, keys: Sequence[Key]) -> List[bool]:
        """Batch membership test, in input order (one generation per call)."""
        verdicts, _generation = await self.query_many_with_generation(keys)
        return verdicts

    async def query_many_with_generation(
        self, keys: Sequence[Key]
    ) -> Tuple[List[bool], int]:
        """Like :meth:`query_many`, also reporting the answering generation.

        Requests of at least ``max_batch`` keys are already engine-sized and
        bypass the coalescing queue entirely.
        """
        keys = list(keys)
        if not keys:
            raise ServiceError("batch of 0 keys rejected; coalesce needs at least 1")
        if len(keys) >= self._max_batch:
            self._ensure_open()
            answer = await self._dispatch(keys)
            self._bypassed_batches.inc()
            return answer.verdicts, answer.generation
        batch = vec.KeyBatch(keys) if vec.numpy_or_none() is not None else None
        return await self._submit(keys, batch)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "AdaptiveMicroBatcher":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Flush every pending waiter, stop the flusher, release the executor."""
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._flusher is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._flusher
            self._flusher = None
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def batching_stats(self) -> MicroBatchStats:
        """Point-in-time micro-batcher counters and distributions.

        The counter fields are views over this batcher's registry instrument
        children (``flushes`` derives as full + timer — every successful
        dispatch is exactly one of the two); the percentile fields come from
        the exact-sample windows.
        """
        full = int(self._full_flushes.value)
        timer = int(self._timer_flushes.value)
        return MicroBatchStats(
            flushes=full + timer,
            full_flushes=full,
            timer_flushes=timer,
            empty_flushes=int(self._empty_flushes.value),
            coalesced_keys=int(self._coalesced_keys.value),
            bypassed_batches=int(self._bypassed_batches.value),
            cancelled_callers=int(self._cancelled_callers.value),
            current_wait_ms=self.current_wait_seconds * 1e3,
            batch_size=self._batch_sizes.percentiles(),
            wait=self._waits.percentiles(),
            queue_depth=self._depths.percentiles(),
        )

    def stats(self) -> ServiceStats:
        """The wrapped service's stats with :class:`MicroBatchStats` attached."""
        stats = self._service.stats()
        stats.batching = self.batching_stats()
        return stats

    # ------------------------------------------------------------------ #
    # Internals (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("the micro-batcher is closed")

    def _ensure_flusher(self) -> None:
        self._ensure_open()
        if self._flusher is None or self._flusher.done():
            self._wake = asyncio.Event()
            self._more = asyncio.Event()
            if self._parallelism > 1 and self._inflight_sem is None:
                self._inflight_sem = asyncio.Semaphore(self._parallelism)
            self._flusher = asyncio.get_running_loop().create_task(
                self._run(), name="aserve-flusher"
            )

    async def _submit(self, keys: List[Key], batch=None) -> Tuple[List[bool], int]:
        self._ensure_flusher()
        future = asyncio.get_running_loop().create_future()
        self._spans.append(_Span(keys, future, batch))
        self._pending_keys += len(keys)
        self._arrivals += 1
        # Exact per-enqueue depths stay in the ring window; the histogram
        # mirror samples once per flush instead (an observe per enqueue is
        # measurable at wire rates).
        self._depths.record(float(self._pending_keys))
        self._wake.set()
        self._more.set()
        return await future

    async def _dispatch(self, request) -> BatchAnswer:
        loop = asyncio.get_running_loop()
        if current_trace() is not None:
            # run_in_executor does not propagate contextvars to the worker
            # thread (asyncio.to_thread does, but only exists on 3.9+ with a
            # per-call thread); copying the context carries the active trace
            # into the engine so shard_probe stages land on the same trace.
            context = contextvars.copy_context()
            return await loop.run_in_executor(
                self._executor, context.run, self._service.query_batch, request
            )
        return await loop.run_in_executor(
            self._executor, self._service.query_batch, request
        )

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self._closed and not self._spans:
                break
            await self._wake.wait()
            if self._closed and not self._spans:
                break
            window_start = loop.time()
            if not self._closed:
                await self._collect_window(loop, window_start)
            await self._flush(loop.time() - window_start)

    async def _collect_window(self, loop, window_start: float) -> None:
        """Hold the window open per the policy in the module docstring."""
        deadline = window_start + self.current_wait_seconds
        min_deadline = window_start + self._min_wait
        while not self._closed and self._pending_keys < self._max_batch:
            now = loop.time()
            if now >= deadline:
                break
            arrivals_before = self._arrivals
            self._more.clear()
            # One scheduler tick: let every ready caller enqueue.
            await asyncio.sleep(0)
            if self._arrivals != arrivals_before:
                continue  # still draining a burst
            now = loop.time()
            if now >= min_deadline:
                break  # quiet queue past the window floor: flush now
            # Quiet but inside the floor: park until an arrival or the floor
            # elapses (deadline >= min_deadline always, by the clamp above).
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._more.wait(), timeout=min_deadline - now)

    async def _flush(self, waited_seconds: float) -> None:
        self._depth_hist.observe(float(self._pending_keys))
        spans: List[_Span] = []
        taken_keys = 0
        while self._spans:
            span = self._spans[0]
            if spans and taken_keys + len(span.keys) > self._max_batch:
                break  # next span starts the following window, intact
            self._spans.popleft()
            self._pending_keys -= len(span.keys)
            if span.future.cancelled():
                self._cancelled_callers.inc()
                continue
            spans.append(span)
            taken_keys += len(span.keys)
        if not self._spans and not self._closed:
            self._wake.clear()
        if not spans:
            self._empty_flushes.inc()
            return
        instant_rate = taken_keys / max(waited_seconds, _MIN_WINDOW_SECONDS)
        if self._rate_ewma <= 0.0:
            self._rate_ewma = instant_rate
        else:
            self._rate_ewma += _RATE_SMOOTHING * (instant_rate - self._rate_ewma)
        tracer = self._tracer
        trace = tracer.begin()
        with tracer.activate(trace):
            tracer.record_stage(trace, "queue_wait", waited_seconds, keys=taken_keys)
            with stage("window_assembly", spans=len(spans)):
                request = self._assemble(spans)
            if self._parallelism <= 1:
                try:
                    with stage("engine_dispatch", keys=taken_keys):
                        answer = await self._dispatch(request)
                except Exception as exc:  # ServiceError (no snapshot yet) included
                    self._fail_window(spans, exc)
                    return
                self._settle_window(spans, answer, taken_keys, waited_seconds)
                return
        # Pipelined dispatch: hand the window to a task and immediately go
        # back to collecting the next one.  The semaphore bounds windows in
        # flight to the dispatch parallelism, so a slow engine backs traffic
        # up into (larger) windows instead of unbounded tasks.
        await self._inflight_sem.acquire()
        task = asyncio.get_running_loop().create_task(
            self._dispatch_window(trace, spans, request, taken_keys, waited_seconds)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _dispatch_window(
        self, trace, spans: List[_Span], request, taken_keys: int, waited_seconds: float
    ) -> None:
        """One in-flight window: dispatch, then settle its waiters."""
        tracer = self._tracer
        try:
            with tracer.activate(trace):
                try:
                    with stage("engine_dispatch", keys=taken_keys):
                        answer = await self._dispatch(request)
                except Exception as exc:
                    self._fail_window(spans, exc)
                    return
            self._settle_window(spans, answer, taken_keys, waited_seconds)
        finally:
            self._inflight_sem.release()

    def _fail_window(self, spans: List[_Span], exc: Exception) -> None:
        for span in spans:
            if not span.future.done():
                span.future.set_exception(exc)

    def _settle_window(
        self, spans: List[_Span], answer, taken_keys: int, waited_seconds: float
    ) -> None:
        self._coalesced_keys.inc(taken_keys)
        if taken_keys >= self._max_batch:
            self._full_flushes.inc()
        else:
            self._timer_flushes.inc()
        self._batch_sizes.record(float(taken_keys))
        self._batch_size_hist.observe(float(taken_keys))
        self._waits.record(waited_seconds)
        self._window_seconds_hist.observe(waited_seconds)
        offset = 0
        for span in spans:
            count = len(span.keys)
            if span.future.cancelled():
                self._cancelled_callers.inc()
            else:
                span.future.set_result(
                    (answer.verdicts[offset : offset + count], answer.generation)
                )
            offset += count

    def _assemble(self, spans: List[_Span]):
        """Build the engine request for a window, reusing span encodings."""
        if vec.numpy_or_none() is None:
            return [key for span in spans for key in span.keys]
        parts: List[vec.KeyBatch] = []
        pending: List[Key] = []
        for span in spans:
            if span.batch is not None:
                if pending:
                    parts.append(vec.KeyBatch(pending))
                    pending = []
                parts.append(span.batch)
            else:
                pending.extend(span.keys)
        if pending:
            parts.append(vec.KeyBatch(pending))
        return parts[0] if len(parts) == 1 else vec.KeyBatch.concat(parts)


# --------------------------------------------------------------------- #
# Network front-ends
# --------------------------------------------------------------------- #
class _RawBody:
    """A pre-encoded HTTP body with an explicit content type (non-JSON)."""

    __slots__ = ("data", "content_type")

    def __init__(self, data: bytes, content_type: str) -> None:
        self.data = data
        self.content_type = content_type


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    414: "URI Too Long",
    431: "Request Header Fields Too Large",
}
#: Largest request body the HTTP handler will buffer.  Generous for any sane
#: query_many batch (the service's own max_batch_size rejects oversized key
#: counts), while bounding what one connection can make the process hold.
_HTTP_MAX_BODY_BYTES = 1 << 20
#: Stream buffer limit for both listeners.  asyncio's default readline limit
#: is 64 KiB, which a legitimate multi-key ``M`` line can exceed; this cap
#: bounds one line/body at the same size the HTTP handler accepts.
_STREAM_LIMIT_BYTES = _HTTP_MAX_BODY_BYTES
#: Larger body cap applied to ``POST /rebuild`` only — a pushed key set is
#: legitimately bigger than a query batch.  ``readexactly`` is not bounded by
#: the stream ``limit`` (only ``readline`` is), so a per-path cap works.
_REBUILD_MAX_BODY_BYTES = 8 << 20
#: Most keys one pushed rebuild may carry across keys/negatives/changed_keys,
#: bounding the build work a single operator request can demand.
_REBUILD_MAX_KEYS = 1_000_000
#: Fields a rebuild spec (the ``R`` command / ``POST /rebuild`` JSON) accepts.
_REBUILD_FIELDS = frozenset(
    {"keys", "negatives", "costs", "changed_keys", "incremental"}
)


class AsyncMembershipServer:
    """TCP (and optional HTTP/1.1) membership serving over a micro-batcher.

    Every connection's requests feed the same :class:`AdaptiveMicroBatcher`,
    so concurrent clients coalesce into shared engine batches.  Both
    protocols are specified in ``docs/SERVING.md``; in short:

    TCP line protocol (UTF-8, newline-terminated, whitespace-delimited keys)::

        Q <key>              -> V <generation> <0|1>
        M <key> <key> ...    -> V <generation> <0|1> <0|1> ...
        R <json spec>        -> R <new generation>   (operator-pushed rebuild)
        GEN                  -> G <generation>
        STATS                -> S <one-line JSON of ServiceStats>
        METRICS              -> Prometheus exposition text, terminated by a
                                line holding a single "."
        PING                 -> PONG
        anything invalid     -> E <message>

    HTTP endpoints (JSON responses except ``/metrics``, which serves the
    Prometheus text format)::

        GET  /query?key=K        GET /generation      GET /stats
        GET  /metrics            (Prometheus text exposition)
        POST /query_many         (body: JSON list or newline-delimited keys)
        POST /rebuild            (body: JSON rebuild spec; returns the new
                                  generation — see docs/SERVING.md)

    Responses use content-length framing and default to ``Connection:
    close``; a client that sends an explicit ``Connection: keep-alive``
    request header gets a ``keep-alive`` response and may reuse the socket
    for its next request.  Error responses always close.

    The rebuild spec is a JSON object: ``{"keys": [...]}`` required, plus
    optional ``"negatives"``, ``"costs"`` (key → float), ``"changed_keys"``
    (forces those keys' shards dirty) and ``"incremental"`` (default true).
    Builds run on a worker thread, so queries keep flowing — and keep
    answering from the old generation — until the swap.

    Args:
        service: The loaded service to serve.
        batcher: An existing micro-batcher to share; by default a private
            one is created from ``**batcher_opts``.
        **batcher_opts: Forwarded to :class:`AdaptiveMicroBatcher`.
    """

    def __init__(
        self,
        service: MembershipService,
        batcher: Optional[AdaptiveMicroBatcher] = None,
        **batcher_opts,
    ) -> None:
        self._service = service
        self._owns_batcher = batcher is None
        self._batcher = batcher or AdaptiveMicroBatcher(service, **batcher_opts)
        self._servers: List[asyncio.AbstractServer] = []
        self._connections: set = set()

    @property
    def batcher(self) -> AdaptiveMicroBatcher:
        """The micro-batcher every connection dispatches through."""
        return self._batcher

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0, reuse_port: bool = False
    ) -> Tuple[str, int]:
        """Start the line-protocol listener; returns the bound (host, port).

        ``reuse_port=True`` sets ``SO_REUSEPORT`` before binding, so several
        processes can listen on the same port and the kernel load-balances
        accepted connections across them — the direct-accept mode of
        :class:`~repro.service.multiproc.ReplicaPool`.
        """
        kwargs = {"reuse_port": True} if reuse_port else {}
        server = await asyncio.start_server(
            self._handle_tcp, host, port, limit=_STREAM_LIMIT_BYTES, **kwargs
        )
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start_http(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Start the HTTP/1.1 listener; returns the bound (host, port)."""
        server = await asyncio.start_server(
            self._handle_http, host, port, limit=_STREAM_LIMIT_BYTES
        )
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def __aenter__(self) -> "AsyncMembershipServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Stop the listeners, then drain and close the micro-batcher.

        A batcher passed in by the caller is shared, not owned: it keeps
        serving in-process callers after the network front-end shuts down.
        """
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        # Python < 3.12 wait_closed() does not wait for handler tasks; close
        # lingering connections explicitly so none outlive the batcher.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        if self._owns_batcher:
            await self._batcher.aclose()

    def _track_connection(self) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)

    # ------------------------------------------------------------------ #
    # TCP line protocol
    # ------------------------------------------------------------------ #
    async def _handle_tcp(self, reader, writer) -> None:
        self._track_connection()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line overran the stream limit; the buffered remainder is
                    # unusable, so answer with an error and drop the peer.
                    writer.write(
                        f"E line exceeds {_STREAM_LIMIT_BYTES} bytes\n".encode()
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    response = await self._dispatch_line(
                        line.decode("utf-8", errors="replace").strip()
                    )
                except ServiceError as exc:
                    response = "E " + " ".join(str(exc).split())
                if response is None:
                    continue
                writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass  # server shutdown; ending quietly keeps 3.11 streams silent
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch_line(self, line: str) -> Optional[str]:
        if not line:
            return None
        parts = line.split()
        command = parts[0].upper()
        if command == "PING":
            return "PONG"
        if command == "GEN":
            return f"G {self._service.generation}"
        if command == "STATS":
            return "S " + json.dumps(asdict(self._batcher.stats()))
        if command == "METRICS":
            # Multi-line response: the exposition text (which ends with a
            # newline), then a line holding a single "." as the terminator —
            # line-oriented clients read until they see it.
            return render_text(self._batcher.registry) + "."
        if command == "Q":
            if len(parts) != 2:
                return "E Q takes exactly one key"
            verdict, generation = await self._batcher.query_with_generation(parts[1])
            return f"V {generation} {int(verdict)}"
        if command == "M":
            if len(parts) < 2:
                return "E M takes at least one key"
            verdicts, generation = await self._batcher.query_many_with_generation(
                parts[1:]
            )
            return f"V {generation} " + " ".join(str(int(v)) for v in verdicts)
        if command == "R":
            # The spec is JSON, so re-split with maxsplit=1 to keep it intact
            # (the whitespace-normalising split above would still work for
            # compact JSON, but not for pretty-printed specs).
            _, _, spec_text = line.partition(" ")
            if not spec_text.strip():
                return "E R takes a JSON rebuild spec"
            spec = self._parse_rebuild_spec(spec_text)
            generation = await self._run_rebuild(spec)
            return f"R {generation}"
        return f"E unknown command {parts[0]!r}"

    # ------------------------------------------------------------------ #
    # Operator-pushed rebuilds (shared by the R command and POST /rebuild)
    # ------------------------------------------------------------------ #
    def _parse_rebuild_spec(self, text: str) -> dict:
        """Validate a rebuild spec; every malformation raises ServiceError."""
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"rebuild spec is not valid JSON: {exc}") from None
        if not isinstance(spec, dict):
            raise ServiceError("rebuild spec must be a JSON object")
        unknown = set(spec) - _REBUILD_FIELDS
        if unknown:
            raise ServiceError(
                f"unknown rebuild fields: {', '.join(sorted(unknown))}"
            )
        keys = spec.get("keys")
        if not isinstance(keys, list) or not keys:
            raise ServiceError('rebuild spec needs a non-empty "keys" list')
        negatives = spec.get("negatives", [])
        if not isinstance(negatives, list):
            raise ServiceError('"negatives" must be a list')
        changed = spec.get("changed_keys")
        if changed is not None and not isinstance(changed, list):
            raise ServiceError('"changed_keys" must be a list')
        costs = spec.get("costs")
        if costs is not None and not isinstance(costs, dict):
            raise ServiceError('"costs" must be an object of key -> cost')
        incremental = spec.get("incremental", True)
        if not isinstance(incremental, bool):
            raise ServiceError('"incremental" must be a boolean')
        total = len(keys) + len(negatives) + (len(changed) if changed else 0)
        if total > _REBUILD_MAX_KEYS:
            raise ServiceError(
                f"rebuild spec carries {total} keys; the limit is "
                f"{_REBUILD_MAX_KEYS}"
            )
        try:
            parsed_costs = (
                {str(key): float(value) for key, value in costs.items()}
                if costs
                else None
            )
        except (TypeError, ValueError):
            raise ServiceError('"costs" values must be numbers') from None
        return {
            "keys": [str(key) for key in keys],
            "negatives": [str(key) for key in negatives],
            "costs": parsed_costs,
            "changed_keys": (
                [str(key) for key in changed] if changed is not None else None
            ),
            "incremental": incremental,
        }

    async def _run_rebuild(self, spec: dict) -> int:
        """Run a validated rebuild on a worker thread; returns the generation.

        The build is CPU work that must not block the event loop — queries
        keep coalescing and dispatching (answered by the old generation)
        while it runs; the swap itself is the service's atomic hot-swap.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self._service.rebuild,
                spec["keys"],
                negatives=spec["negatives"],
                costs=spec["costs"],
                changed_keys=spec["changed_keys"],
                incremental=spec["incremental"],
            ),
        )

    # ------------------------------------------------------------------ #
    # Minimal HTTP/1.1
    # ------------------------------------------------------------------ #
    @staticmethod
    async def _discard_remaining(reader) -> None:
        """Best-effort drain of unread request bytes before closing.

        Closing a socket with unread data in its receive buffer makes the
        kernel send RST instead of FIN, which can destroy the error response
        still in flight to the client.  Draining is bounded (a few stream
        limits, short per-read timeout) so one misbehaving peer cannot pin
        the handler.
        """
        remaining = 4 * _STREAM_LIMIT_BYTES
        with contextlib.suppress(asyncio.TimeoutError, ConnectionResetError):
            while remaining > 0:
                chunk = await asyncio.wait_for(
                    reader.read(min(65536, remaining)), timeout=0.5
                )
                if not chunk:
                    return
                remaining -= len(chunk)

    async def _write_http_response(
        self, reader, writer, status: int, payload, keep_alive: bool = False
    ) -> None:
        """Emit one complete, content-length-framed response.

        Every response carries an explicit ``Connection`` header.  With
        ``keep_alive=False`` (the default, and all error paths) the header
        says ``close`` and the shutdown order matters: ``write_eof`` sends
        FIN right after the body (so the client sees a clean
        end-of-response), then any input the handler never read — an
        oversized line, an over-limit body, a pipelined second request — is
        drained before the ``finally`` closes the socket, because closing
        with unread bytes in the receive buffer makes the kernel send RST,
        which can destroy the response still in flight.  With
        ``keep_alive=True`` the header says ``keep-alive`` and the socket is
        left open for the client's next request — content-length framing
        tells the client exactly where this response ends.

        ``payload`` is JSON-encoded unless it is a :class:`_RawBody`, which
        carries pre-encoded bytes and their content type (the ``/metrics``
        exposition).
        """
        if isinstance(payload, _RawBody):
            data = payload.data
            content_type = payload.content_type
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()
        if keep_alive:
            return
        with contextlib.suppress(OSError, RuntimeError):
            writer.write_eof()
        await self._discard_remaining(reader)

    async def _handle_http(self, reader, writer) -> None:
        self._track_connection()
        try:
            while await self._serve_one_http(reader, writer):
                pass
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # pragma: no cover - torn-down connection
        except asyncio.CancelledError:
            pass  # server shutdown; ending quietly keeps 3.11 streams silent
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _serve_one_http(self, reader, writer) -> bool:
        """Serve one request; returns whether the connection stays open.

        Keep-alive is opt-in: only a request carrying an explicit
        ``Connection: keep-alive`` header gets a ``keep-alive`` response and
        a reusable socket.  Requests without the header — including
        HTTP/1.1 pipelining attempts — keep the original
        one-response-then-EOF behaviour, and every error path closes.
        """
        try:
            request_line = await reader.readline()
        except ValueError:
            # Request line overran the stream limit; the buffered rest of
            # the connection is unusable, so answer and hang up.
            await self._write_http_response(
                reader,
                writer,
                414,
                {"error": f"request line exceeds {_STREAM_LIMIT_BYTES} bytes"},
            )
            return False
        if not request_line:
            return False  # peer left (or finished a keep-alive exchange)
        pieces = request_line.decode("latin-1").split()
        if len(pieces) < 2:
            await self._write_http_response(
                reader, writer, 400, {"error": "malformed request line"}
            )
            return False
        method, target = pieces[0].upper(), pieces[1]
        content_length = 0
        connection_header = ""
        while True:
            try:
                header = await reader.readline()
            except ValueError:
                await self._write_http_response(
                    reader,
                    writer,
                    431,
                    {"error": f"header line exceeds {_STREAM_LIMIT_BYTES} bytes"},
                )
                return False
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                with contextlib.suppress(ValueError):
                    content_length = int(value.strip())
            elif name == "connection":
                connection_header = value.strip().lower()
        keep_alive = connection_header == "keep-alive"
        if content_length < 0:
            # The declared length is nonsense, so the body (if any) was
            # never read: answer (which drains it), hang up.
            await self._write_http_response(
                reader, writer, 400, {"error": "negative Content-Length"}
            )
            return False
        path = target.partition("?")[0]
        max_body = (
            _REBUILD_MAX_BODY_BYTES if path == "/rebuild" else _HTTP_MAX_BODY_BYTES
        )
        if content_length > max_body:
            await self._write_http_response(
                reader,
                writer,
                413,
                {"error": f"request body exceeds {max_body} bytes"},
            )
            return False
        try:
            body = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
        except asyncio.IncompleteReadError as exc:
            # EOF inside the body: everything sent was consumed, so the
            # response goes out over an already-drained connection.
            await self._write_http_response(
                reader,
                writer,
                400,
                {
                    "error": (
                        "request body truncated: Content-Length "
                        f"{content_length}, received {len(exc.partial)}"
                    )
                },
            )
            return False
        status, payload = await self._http_response(method, target, body)
        keep_alive = keep_alive and status == 200
        await self._write_http_response(
            reader, writer, status, payload, keep_alive=keep_alive
        )
        return keep_alive

    async def _http_response(self, method: str, target: str, body: bytes):
        path, _, query = target.partition("?")
        try:
            if method == "GET" and path == "/query":
                values = urllib.parse.parse_qs(query).get("key", [])
                if len(values) != 1:
                    return 400, {"error": "exactly one ?key= parameter required"}
                verdict, generation = await self._batcher.query_with_generation(
                    values[0]
                )
                return 200, {
                    "key": values[0],
                    "member": verdict,
                    "generation": generation,
                }
            if method == "GET" and path == "/generation":
                return 200, {"generation": self._service.generation}
            if method == "GET" and path == "/stats":
                return 200, asdict(self._batcher.stats())
            if method == "GET" and path == "/metrics":
                text = render_text(self._batcher.registry)
                return 200, _RawBody(text.encode("utf-8"), _METRICS_CONTENT_TYPE)
            if method == "POST" and path == "/query_many":
                text = body.decode("utf-8", errors="replace").strip()
                if text.startswith("["):
                    keys = [str(key) for key in json.loads(text)]
                else:
                    keys = [line for line in text.splitlines() if line]
                if not keys:
                    return 400, {"error": "request body contained no keys"}
                verdicts, generation = await self._batcher.query_many_with_generation(
                    keys
                )
                return 200, {"members": verdicts, "generation": generation}
            if method == "POST" and path == "/rebuild":
                spec = self._parse_rebuild_spec(
                    body.decode("utf-8", errors="replace")
                )
                generation = await self._run_rebuild(spec)
                return 200, {
                    "generation": generation,
                    "num_keys": len(spec["keys"]),
                }
        except (ServiceError, json.JSONDecodeError) as exc:
            return 400, {"error": str(exc)}
        return 404, {"error": f"no route for {method} {path}"}
