"""Generation-versioned membership serving with atomic hot-swap rebuilds.

A :class:`MembershipService` owns one immutable :class:`Snapshot` (a built
:class:`~repro.service.shards.ShardedFilterStore` plus its generation number)
and serves every query from it.  A rebuild constructs a *new* store off to
the side — the old snapshot keeps answering queries the whole time — and then
swaps the snapshot reference in one assignment.  Queries read the reference
once per call, so a query sees either the old generation or the new one in
full, never a half-built store.

The blacklist-gateway deployment the paper motivates maps directly onto this:
the blacklist is re-fetched periodically, a new generation is built from it,
and the gateway never stops filtering while that happens.

Network-concurrent callers should not talk to this class one key at a time:
:mod:`repro.service.aserve` wraps it in an asyncio front-end whose adaptive
micro-batcher coalesces concurrent scalar queries into :meth:`query_batch`
windows, converting the batch engine's speedup into serving throughput.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.errors import ServiceError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key
from repro.metrics.memory import process_rss_bytes
from repro.metrics.timing import Stopwatch, latency_percentiles
from repro.obs import (
    CollectedFamily,
    FprEstimator,
    Registry,
    Sample,
    ShardFprEstimate,
    default_registry,
)
from repro.service import codec
from repro.service.adaptive import AdaptivePolicy, MigrationPlan
from repro.service.backends import BackendSpec
from repro.service.diskstore import DiskShardStore
from repro.service.shards import ShardedFilterStore
from repro.service.stats import AdaptiveStats, LatencyWindow, ServiceStats

#: Distinguishes service instances inside shared metric families: every
#: instance labels its children ``service="svc-<n>"`` so two services in one
#: process (or two hundred across a test run) never mix their counters.
_SERVICE_IDS = itertools.count(1)


@dataclass(frozen=True)
class Snapshot:
    """One immutable serving generation.

    Attributes:
        generation: Monotonically increasing version number (1 = first load).
        store: The sharded filter store answering this generation's queries.
        num_keys: Positive keys the store was built from.
        build_params: The backend spec and kwargs the store was built with,
            or ``None`` when unknown (e.g. installed from a codec snapshot).
            Incremental rebuilds only reuse clean shards when these match
            the service's current configuration — a shard built at 8
            bits/key must not survive into generations configured for 16.
    """

    generation: int
    store: ShardedFilterStore
    num_keys: int
    build_params: Optional[tuple] = None


@dataclass(frozen=True)
class BatchAnswer:
    """The result of one :meth:`MembershipService.query_batch` dispatch.

    The serving layer needs more than the verdict vector: the asyncio
    micro-batcher resolves every waiter in a flush window with the generation
    that actually answered, so callers can observe that their window never
    straddled a hot rebuild.

    Attributes:
        verdicts: One membership verdict per key, in input order.
        generation: The snapshot generation every verdict was answered from
            (read once per dispatch — a batch sees exactly one generation).
        elapsed_seconds: Wall-clock time the store spent on the batch.
    """

    verdicts: List[bool]
    generation: int
    elapsed_seconds: float

    def __len__(self) -> int:
        return len(self.verdicts)


class MembershipService:
    """Serves membership queries over a sharded, hot-rebuildable filter store.

    Args:
        backend: Filter backend for every shard — a registered name
            (``"habf"``, ``"f-habf"``, ``"bloom"``, ``"xor"``) or a
            FilterPolicy-like instance.
        num_shards: Number of shards per generation.
        max_batch_size: ``query_many`` batches larger than this are rejected
            with a :class:`~repro.errors.ServiceError` (and counted), so one
            malformed caller cannot stall the service.
        router_seed: Seed for the shard router (stable across generations, so
            placement — and therefore shard-level stats — stays comparable,
            and incremental rebuilds can diff shard fingerprints at all).
        latency_window: Number of recent per-key latency samples kept for the
            percentile report.
        build_workers: Default worker count for every build and rebuild
            (``None``/1 = sequential; see
            :meth:`~repro.service.shards.ShardedFilterStore.build`).  A
            per-call ``workers`` argument overrides it.
        registry: The :class:`~repro.obs.Registry` this service's counters,
            gauges and histograms live in (default: the process-global one).
            Instrument families are shared — each service only owns its
            ``service="svc-<n>"`` label children — and the registry also
            receives a weak scrape-time collector exporting per-shard
            counters and live FPR estimates.  Pass
            :func:`~repro.obs.null_registry` to disable instrumentation
            wholesale; note ``stats()`` counter fields then read zero (the
            latency windows still work).
        fpr_estimator: An optional :class:`~repro.obs.FprEstimator`; when
            attached, each rebuild re-registers the generation's build keys
            as its ground-truth oracle (unless a custom oracle was set), and
            — unless :attr:`~repro.obs.FprEstimator.auto_known_negatives`
            was cleared — the rebuild's negatives as its known-negative set
            (plus its costs, when given); the query paths feed it verdicts
            to shadow-sample.
        adaptive_policy: An optional
            :class:`~repro.service.adaptive.AdaptivePolicy`.  When
            installed, every :meth:`rebuild` scores the serving shards from
            the estimator's live evidence and migrates losing shards to the
            winning candidate backend as part of the same atomic generation
            swap.  Pair it with ``fpr_estimator`` — without live evidence
            the policy never migrates anything.
        store_path: When set, generations persist to a
            :class:`~repro.service.diskstore.DiskShardStore` at this path
            and queries are served from its ``mmap`` through a
            byte-budgeted LRU of decoded shards (the disk tier).  Each
            rebuild commits atomically — incremental rebuilds append only
            the dirty shards' frames — and the snapshot swap happens only
            after the commit, so the on-disk store and the serving
            generation never diverge.  An existing store at the path is
            reopened by the first :meth:`rebuild` (or explicitly via
            :meth:`open_store`) and served as the pre-rebuild generation.
        cache_budget: Byte budget for the disk tier's decoded-shard LRU
            (``None`` = unbounded, ``0`` = always cold).  Only valid with
            ``store_path``.
        backend_kwargs: Forwarded to the backend factory when ``backend`` is
            a name (e.g. ``bits_per_key=12.0``).
    """

    def __init__(
        self,
        backend: BackendSpec = "habf",
        num_shards: int = 4,
        max_batch_size: int = 65536,
        router_seed: int = 0,
        latency_window: int = 4096,
        build_workers: Optional[int] = None,
        registry: Optional[Registry] = None,
        fpr_estimator: Optional[FprEstimator] = None,
        adaptive_policy: Optional[AdaptivePolicy] = None,
        store_path=None,
        cache_budget: Optional[int] = None,
        **backend_kwargs,
    ) -> None:
        if num_shards < 1:
            raise ServiceError("num_shards must be at least 1")
        if max_batch_size < 1:
            raise ServiceError("max_batch_size must be at least 1")
        if cache_budget is not None and store_path is None:
            raise ServiceError("cache_budget requires store_path")
        self._backend = backend
        self._backend_kwargs = dict(backend_kwargs)
        self._num_shards = num_shards
        self._max_batch_size = max_batch_size
        self._router_seed = router_seed
        self._build_workers = build_workers
        self._snapshot: Optional[Snapshot] = None
        self._swap_lock = threading.Lock()
        self._latency = LatencyWindow(latency_window)
        self._rebuild_latency = LatencyWindow(128)
        self._registry = registry if registry is not None else default_registry()
        self._obs_label = f"svc-{next(_SERVICE_IDS)}"
        self._fpr = fpr_estimator
        self._adaptive = adaptive_policy
        self._store_path = store_path
        self._cache_budget = cache_budget
        self._disk: Optional[DiskShardStore] = None
        self._last_plan: Optional[MigrationPlan] = None
        self._started = time.monotonic()
        self._make_instruments()
        self._registry.add_collector(self._collect_shard_families)

    def _make_instruments(self) -> None:
        """Bind this instance's label children in the shared metric families."""
        registry, label = self._registry, self._obs_label
        self._queries = registry.counter(
            "repro_service_queries_total",
            "Keys tested, scalar and batch combined",
            ("service",),
        ).labels(label)
        self._batches = registry.counter(
            "repro_service_batches_total",
            "query_many/query_batch calls accepted",
            ("service",),
        ).labels(label)
        self._rejected_batches = registry.counter(
            "repro_service_rejected_batches_total",
            "Batch calls refused (empty or oversized)",
            ("service",),
        ).labels(label)
        self._positives = registry.counter(
            "repro_service_positives_total",
            "Membership tests answered present",
            ("service",),
        ).labels(label)
        self._rebuilds = registry.counter(
            "repro_service_rebuilds_total",
            "Completed hot rebuilds (generation swaps after the first load)",
            ("service",),
        ).labels(label)
        self._shards_rebuilt = registry.counter(
            "repro_service_shards_rebuilt_total",
            "Shards reconstructed across every build and rebuild",
            ("service",),
        ).labels(label)
        self._shards_skipped = registry.counter(
            "repro_service_shards_skipped_total",
            "Shards incremental rebuilds left untouched (clean fingerprints)",
            ("service",),
        ).labels(label)
        self._generation_gauge = registry.gauge(
            "repro_service_generation",
            "Generation currently serving (0 before the first load)",
            ("service",),
        ).labels(label)
        self._keys_gauge = registry.gauge(
            "repro_service_keys",
            "Positive keys in the serving snapshot",
            ("service",),
        ).labels(label)
        self._query_seconds = registry.histogram(
            "repro_query_seconds",
            "Per-key query latency; each batch contributes its per-key average once",
            ("service",),
        ).labels(label)
        self._rebuild_seconds = registry.histogram(
            "repro_rebuild_seconds",
            "Build/rebuild wall-clock duration, one observation per swap",
            ("service",),
        ).labels(label)
        if self._adaptive is not None:
            self._adaptive_evals = registry.counter(
                "repro_adaptive_evaluations_total",
                "Rebuilds on which the adaptive policy scored the shards",
                ("service",),
            ).labels(label)
            self._adaptive_migrated = registry.counter(
                "repro_adaptive_migrations_total",
                "Shard backend migrations applied by the adaptive policy",
                ("service",),
            ).labels(label)

    # ------------------------------------------------------------------ #
    # Loading and rebuilding
    # ------------------------------------------------------------------ #
    def _build_signature(self) -> tuple:
        """The comparable identity of this service's build configuration.

        A string backend compares by name; a policy instance compares by
        object equality (the same instance keeps matching, a restored or
        reconstructed one does not — conservatively forcing a full rebuild).
        """
        return (self._backend, tuple(sorted(self._backend_kwargs.items())))

    def _build_store(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key],
        costs: Optional[Mapping[Key, float]],
        workers: Optional[int],
        shard_backends: Optional[dict] = None,
    ) -> ShardedFilterStore:
        return ShardedFilterStore.build(
            keys,
            negatives=negatives,
            costs=costs,
            num_shards=self._num_shards,
            backend=self._backend,
            router_seed=self._router_seed,
            workers=workers,
            shard_backends=shard_backends,
            **self._backend_kwargs,
        )

    def _construct_generation(
        self,
        previous: Optional[Snapshot],
        keys: List[Key],
        negatives: List[Key],
        costs: Optional[Mapping[Key, float]],
        changed_keys: Optional[Sequence[Key]],
        incremental: bool,
        workers: Optional[int],
        shard_backends: Optional[dict] = None,
    ):
        """Build the next store, incrementally when the previous one allows it.

        Incremental reconstruction needs comparable shard placement (same
        shard count and router seed) and a previous generation *known* to be
        built with the service's exact backend configuration; otherwise —
        and on the first load — every shard is built.  (A snapshot installed
        via :meth:`install_snapshot` records no build parameters, so the
        first rebuild after a restore is always full.)  ``shard_backends``
        (an adaptive plan's assignments) overrides the backend per shard on
        either path; a shard whose planned backend differs from the one
        serving it counts dirty and rebuilds.
        """
        if incremental and previous is not None:
            store = previous.store
            if (
                store.num_shards == self._num_shards
                and store.router_seed == self._router_seed
                and previous.build_params is not None
                and previous.build_params == self._build_signature()
            ):
                return ShardedFilterStore.rebuild_from(
                    store,
                    keys,
                    negatives=negatives,
                    costs=costs,
                    backend=self._backend,
                    changed_keys=changed_keys,
                    workers=workers,
                    shard_backends=shard_backends,
                    **self._backend_kwargs,
                )
        full = self._build_store(keys, negatives, costs, workers, shard_backends)
        return full, list(range(full.num_shards)), []

    def load(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        workers: Optional[int] = None,
    ) -> int:
        """Build the first generation and start serving; returns its number.

        On a service that is already serving this behaves exactly like
        :meth:`rebuild`.
        """
        return self.rebuild(keys, negatives=negatives, costs=costs, workers=workers)

    def rebuild(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        changed_keys: Optional[Sequence[Key]] = None,
        incremental: bool = True,
        workers: Optional[int] = None,
    ) -> int:
        """Build a new generation from ``keys`` and atomically swap it in.

        The current snapshot keeps serving until the new store is fully
        built; the swap itself is a single reference assignment under a lock
        (the lock serialises concurrent rebuilds, not queries).

        By default the rebuild is *incremental*: the new key set is diffed
        against the serving snapshot's per-shard fingerprints and only dirty
        shards are reconstructed — with one shard's keys changed, the other
        shards swap over untouched (their per-shard generations do not move).
        ``changed_keys`` additionally forces the shards those keys route to
        (use it when only *negatives or costs* changed for some shard, which
        the positive-key diff cannot see).  ``incremental=False`` forces a
        full rebuild.  ``workers`` parallelises the dirty-shard builds
        (default: the service's ``build_workers``).

        With an :class:`~repro.service.adaptive.AdaptivePolicy` installed,
        the serving shards are scored *before* construction and losing
        shards are built on their winning backend — the migration is part of
        the same snapshot swap, so queries see the old generation in full
        until the instant they see the new one in full.

        Returns the new service generation.
        """
        keys = list(keys)
        negatives = list(negatives)
        if workers is None:
            workers = self._build_workers
        if (
            self._store_path is not None
            and self._disk is None
            and self._snapshot is None
            and DiskShardStore.exists(self._store_path)
        ):
            # A previous process committed generations here; serve them as
            # the pre-rebuild snapshot so the generation counter continues
            # (the rebuild itself is full — build params are not persisted).
            self.open_store()
        previous = self._snapshot
        plan: Optional[MigrationPlan] = None
        policy = self._adaptive
        if policy is not None and previous is not None:
            per_shard = previous.store.shard_stats()
            estimator = self._fpr
            estimates: Sequence[Optional[ShardFprEstimate]]
            if estimator is not None:
                estimates = estimator.estimates(per_shard)
            else:
                estimates = [None] * len(per_shard)
            plan = policy.plan(per_shard, estimates)
        watch = Stopwatch()
        with watch:
            store, rebuilt, skipped = self._construct_generation(
                previous,
                keys,
                negatives,
                costs,
                changed_keys,
                incremental,
                workers,
                shard_backends=plan.assignments if plan is not None else None,
            )
        with self._swap_lock:
            current = self._snapshot
            generation = current.generation + 1 if current else 1
            if self._store_path is not None:
                # Durability before visibility: the constructed store is
                # committed (incrementally — only the rebuilt shards'
                # frames are appended) and the swap serves the committed
                # epoch's lazy view, never the in-RAM construction.
                if self._disk is None:
                    self._disk = DiskShardStore.create(
                        self._store_path,
                        store,
                        generation,
                        cache_budget=self._cache_budget,
                        registry=self._registry,
                    )
                else:
                    self._disk.commit(store, generation, rebuilt_shards=rebuilt)
                store = self._disk.serving_store()
            self._snapshot = Snapshot(
                generation=generation,
                store=store,
                num_keys=len(keys),
                build_params=self._build_signature(),
            )
            if current is not None:
                self._rebuilds.inc()
            self._shards_rebuilt.inc(len(rebuilt))
            self._shards_skipped.inc(len(skipped))
            self._rebuild_latency.record(watch.seconds)
            self._rebuild_seconds.observe(watch.seconds)
            self._generation_gauge.set(generation)
            self._keys_gauge.set(len(keys))
            if plan is not None:
                self._last_plan = plan
                self._adaptive_evals.inc()
                if plan.migrations:
                    self._adaptive_migrated.inc(len(plan.migrations))
        estimator = self._fpr
        if estimator is not None:
            if estimator.auto_oracle:
                estimator.set_key_oracle(keys)
            if estimator.auto_known_negatives:
                estimator.set_known_negatives(negatives)
                if costs is not None:
                    estimator.set_costs(costs)
            if plan is not None and plan.migrations:
                # Accumulated evidence on migrated shards describes the
                # previous backend; fresh samples must re-qualify the shard
                # before it can move again (flap damping).
                estimator.reset_shards(plan.migrations)
        return generation

    def open_store(self) -> int:
        """Open the existing on-disk store and serve its committed generation.

        Requires ``store_path``; the snapshot generation becomes the disk
        store's committed generation (it must move the service forward).
        Returns that generation.  :meth:`rebuild` calls this automatically
        when it finds a committed store at a fresh service's path.
        """
        if self._store_path is None:
            raise ServiceError("open_store() requires store_path")
        disk = DiskShardStore.open(
            self._store_path,
            cache_budget=self._cache_budget,
            registry=self._registry,
        )
        store = disk.serving_store()
        with self._swap_lock:
            previous = self._snapshot
            generation = disk.generation
            if previous is not None and generation <= previous.generation:
                disk.close()
                raise ServiceError(
                    f"on-disk generation {generation} does not move the "
                    f"service forward (serving {previous.generation})"
                )
            old_disk, self._disk = self._disk, disk
            self._num_shards = store.num_shards
            self._router_seed = store.router_seed
            self._snapshot = Snapshot(
                generation=generation,
                store=store,
                num_keys=store.num_keys(),
            )
            if previous is not None:
                self._rebuilds.inc()
            self._generation_gauge.set(generation)
            self._keys_gauge.set(store.num_keys())
        if old_disk is not None and old_disk is not disk:
            old_disk.close()
        return generation

    @property
    def disk_store(self) -> Optional[DiskShardStore]:
        """The disk tier backing this service, or ``None`` (RAM mode)."""
        return self._disk

    def install_snapshot(
        self,
        store: ShardedFilterStore,
        num_keys: Optional[int] = None,
        generation: Optional[int] = None,
        rebuilt_shards: Optional[Sequence[int]] = None,
    ) -> int:
        """Swap in an externally built (e.g. codec-loaded) store.

        The service adopts the store's shard count and router seed so that a
        later :meth:`rebuild` produces comparable shard placement instead of
        silently reverting to the constructor's geometry.

        ``generation`` pins the installed snapshot to an externally assigned
        version instead of the local ``previous + 1`` counter.  Replica
        processes serving a :class:`~repro.service.multiproc.SharedFrameArena`
        use this so every replica answers with the *builder's* generation
        number — the property that lets a dispatcher assert no window ever
        mixes generations across replicas.  It must move forward.

        ``rebuilt_shards`` is dirty-shard provenance for the disk tier: when
        the caller knows exactly which shards differ from the committed
        store (a replication delta does), disk mode commits incrementally —
        only those shards' frames are appended — instead of rewriting every
        shard.  RAM mode ignores it.
        """
        with self._swap_lock:
            previous = self._snapshot
            if generation is None:
                generation = previous.generation + 1 if previous else 1
            elif previous is not None and generation <= previous.generation:
                raise ServiceError(
                    f"snapshot generation must move forward: {generation} <= "
                    f"current {previous.generation}"
                )
            if self._store_path is not None:
                # Same durability contract as rebuild(): persist first, then
                # serve the committed epoch's view.  Without provenance the
                # commit is full; a delta apply passes its dirty set through.
                if self._disk is None:
                    self._disk = DiskShardStore.create(
                        self._store_path,
                        store,
                        generation,
                        cache_budget=self._cache_budget,
                        registry=self._registry,
                    )
                else:
                    self._disk.commit(store, generation, rebuilt_shards=rebuilt_shards)
                if num_keys is None:
                    num_keys = store.num_keys()
                store = self._disk.serving_store()
            self._num_shards = store.num_shards
            self._router_seed = store.router_seed
            self._snapshot = Snapshot(
                generation=generation,
                store=store,
                num_keys=store.num_keys() if num_keys is None else num_keys,
            )
            if previous is not None:
                self._rebuilds.inc()
            self._generation_gauge.set(generation)
            self._keys_gauge.set(store.num_keys() if num_keys is None else num_keys)
        return generation

    def apply_snapshot_delta(self, delta) -> int:
        """Apply a replication delta (or its encoded bytes); returns the generation.

        Convenience front door to :func:`repro.service.replication.\
apply_to_service`: validates the delta against the serving snapshot,
        assembles the successor store (decoding only the dirty shards), and
        swaps it in through :meth:`install_snapshot` — incrementally
        committed in disk mode.
        """
        from repro.service import replication

        return replication.apply_to_service(self, delta)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _serving_snapshot(self) -> Snapshot:
        snapshot = self._snapshot
        if snapshot is None:
            raise ServiceError("the service has no snapshot yet; call load() first")
        return snapshot

    def query(self, key: Key) -> bool:
        """Membership test against the current generation."""
        snapshot = self._serving_snapshot()
        start = time.perf_counter()
        answer = snapshot.store.query(key)
        elapsed = time.perf_counter() - start
        self._queries.inc()
        if answer:
            self._positives.inc()
            estimator = self._fpr
            if estimator is not None and estimator.active:
                estimator.observe(key, True, snapshot.store.shard_of(key))
        self._latency.record(elapsed)
        self._query_seconds.observe(elapsed)
        return answer

    def query_many(self, keys: Sequence[Key]) -> List[bool]:
        """Batch membership test against the current generation, in input order.

        Raises:
            ServiceError: for empty or oversized batches (counted in
                ``rejected_batches``); the service state is unchanged.
        """
        return self.query_batch(keys).verdicts

    def query_batch(self, keys: "vec.BatchLike") -> BatchAnswer:
        """Like :meth:`query_many`, but reports which generation answered.

        This is the dispatch point of the asyncio front-end
        (:mod:`repro.service.aserve`): the snapshot reference is read exactly
        once, so the whole batch is answered by one generation even if a hot
        rebuild swaps the snapshot mid-flight.  ``keys`` may be an
        already-encoded :class:`~repro.hashing.vectorized.KeyBatch` (the
        micro-batcher encodes its flush window up front and the encoding is
        reused all the way down to the shard filters).

        Raises:
            ServiceError: for empty or oversized batches (counted in
                ``rejected_batches``); the service state is unchanged.
        """
        if not isinstance(keys, vec.KeyBatch):
            keys = list(keys)
        if not len(keys) or len(keys) > self._max_batch_size:
            self._rejected_batches.inc()
            raise ServiceError(
                f"batch of {len(keys)} keys rejected; accepted sizes are "
                f"1..{self._max_batch_size}"
            )
        snapshot = self._serving_snapshot()
        start = time.perf_counter()
        answers = snapshot.store.query_many(keys)
        elapsed = time.perf_counter() - start
        positives = sum(answers)
        self._queries.inc(len(keys))
        self._batches.inc()
        if positives:
            self._positives.inc(positives)
        per_key = elapsed / len(keys)
        self._latency.record(per_key)
        self._query_seconds.observe(per_key)
        estimator = self._fpr
        if positives and estimator is not None and estimator.active:
            if isinstance(keys, vec.KeyBatch):
                raw = keys.keys
                # Memoised on the batch: query_many's router pass is reused.
                shards = snapshot.store.shards_of_many(keys)
            else:
                raw, shards = keys, None
            estimator.observe_batch(
                raw, answers, snapshot.store.shard_of, shards=shards
            )
        return BatchAnswer(
            verdicts=answers, generation=snapshot.generation, elapsed_seconds=elapsed
        )

    def __contains__(self, key: Key) -> bool:
        return self.query(key)

    # ------------------------------------------------------------------ #
    # Introspection and persistence
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """Generation currently serving (0 before the first load)."""
        snapshot = self._snapshot
        return snapshot.generation if snapshot else 0

    @property
    def max_batch_size(self) -> int:
        """Largest batch :meth:`query_many`/:meth:`query_batch` accepts."""
        return self._max_batch_size

    @property
    def snapshot(self) -> Optional[Snapshot]:
        """The current serving snapshot, or ``None`` before the first load."""
        return self._snapshot

    @property
    def registry(self) -> Registry:
        """The metrics registry this service reports to."""
        return self._registry

    @property
    def fpr_estimator(self) -> Optional[FprEstimator]:
        """The attached live-FPR estimator, or ``None``."""
        return self._fpr

    @property
    def adaptive_policy(self) -> Optional[AdaptivePolicy]:
        """The installed adaptive backend-selection policy, or ``None``."""
        return self._adaptive

    @property
    def last_migration_plan(self) -> Optional[MigrationPlan]:
        """The most recent adaptive evaluation's plan, or ``None``."""
        return self._last_plan

    def fpr_estimates(self) -> List[ShardFprEstimate]:
        """Per-shard live FPR estimates (empty without estimator/snapshot)."""
        snapshot = self._snapshot
        if self._fpr is None or snapshot is None:
            return []
        return self._fpr.estimates(snapshot.store.shard_stats())

    def stats(self) -> ServiceStats:
        """A point-in-time snapshot read from the registry instruments.

        The dataclass shape predates the telemetry layer and is kept
        exactly; the numbers now come from this instance's label children
        in the shared metric families (so ``stats()`` and ``GET /metrics``
        can never disagree).  Scalar queries contribute true per-key
        samples; each accepted batch contributes its per-key *average* as
        one sample, so tail figures reflect scalar calls and batch-level
        behaviour, not per-key tails inside a batch (measuring those would
        require timing every key and defeat batching).
        """
        snapshot = self._snapshot
        samples = self._latency.samples()
        rebuild_samples = self._rebuild_latency.samples()
        adaptive: Optional[AdaptiveStats] = None
        if self._adaptive is not None:
            plan = self._last_plan
            adaptive = AdaptiveStats(
                evaluations=int(self._adaptive_evals.value),
                migrations=int(self._adaptive_migrated.value),
                last_migrated=list(plan.migrations) if plan is not None else [],
                shard_backends=(
                    snapshot.store.shard_backend_names if snapshot else []
                ),
            )
        return ServiceStats(
            generation=snapshot.generation if snapshot else 0,
            num_keys=snapshot.num_keys if snapshot else 0,
            queries=int(self._queries.value),
            batches=int(self._batches.value),
            rejected_batches=int(self._rejected_batches.value),
            positives=int(self._positives.value),
            rebuilds=int(self._rebuilds.value),
            shards_rebuilt=int(self._shards_rebuilt.value),
            shards_skipped=int(self._shards_skipped.value),
            shards=snapshot.store.shard_stats() if snapshot else [],
            latency=latency_percentiles(samples) if samples else None,
            rebuild_latency=(
                latency_percentiles(rebuild_samples) if rebuild_samples else None
            ),
            adaptive=adaptive,
            uptime_seconds=time.monotonic() - self._started,
            rss_bytes=process_rss_bytes(),
        )

    def _collect_shard_families(self) -> List[CollectedFamily]:
        """Scrape-time export of per-shard counters and live FPR estimates.

        Registered on the registry as a weak collector: the families are a
        *live view* of the serving snapshot's :class:`ShardStats` (they
        reset when a rebuild swaps the store — an ordinary counter reset to
        Prometheus), and a garbage-collected service drops out of scrapes.
        """
        snapshot = self._snapshot
        if snapshot is None:
            return []
        base = (("service", self._obs_label),)
        per_shard = snapshot.store.shard_stats()

        def family(name, kind, help, value_of):
            return CollectedFamily(
                name=name,
                kind=kind,
                help=help,
                samples=tuple(
                    Sample("", base + (("shard", str(stats.shard)),), float(value_of(stats)))
                    for stats in per_shard
                ),
            )

        families = [
            family(
                "repro_shard_keys",
                "gauge",
                "Positive keys routed to each shard at build time",
                lambda s: s.num_keys,
            ),
            family(
                "repro_shard_queries_total",
                "counter",
                "Membership tests answered per shard (resets on rebuild)",
                lambda s: s.queries,
            ),
            family(
                "repro_shard_positives_total",
                "counter",
                "Tests answered present per shard (resets on rebuild)",
                lambda s: s.positives,
            ),
            family(
                "repro_shard_size_bits",
                "gauge",
                "Serialized filter size per shard",
                lambda s: s.size_in_bits,
            ),
            family(
                "repro_shard_generation",
                "gauge",
                "Per-shard rebuild generation",
                lambda s: s.generation,
            ),
        ]
        estimator = self._fpr
        if estimator is not None and estimator.active:
            estimates = estimator.estimates(per_shard)
            sampled = []
            false_positives = []
            observed = []
            cost_weighted = []
            for estimate in estimates:
                labels = base + (("shard", str(estimate.shard)),)
                sampled.append(Sample("", labels, float(estimate.sampled)))
                false_positives.append(Sample("", labels, float(estimate.false_positives)))
                if estimate.observed_fpr is not None:
                    observed.append(Sample("", labels, estimate.observed_fpr))
                if estimate.cost_weighted_fpr is not None:
                    cost_weighted.append(Sample("", labels, estimate.cost_weighted_fpr))
            families.extend(
                [
                    CollectedFamily(
                        "repro_shard_fpr_sampled_total",
                        "counter",
                        "Positive verdicts shadow-checked against the oracle",
                        tuple(sampled),
                    ),
                    CollectedFamily(
                        "repro_shard_fpr_false_positives_total",
                        "counter",
                        "Shadow-checked verdicts the oracle rejected",
                        tuple(false_positives),
                    ),
                    CollectedFamily(
                        "repro_shard_observed_fpr",
                        "gauge",
                        "Extrapolated live false-positive rate per shard",
                        tuple(observed),
                    ),
                    CollectedFamily(
                        "repro_shard_cost_weighted_fpr",
                        "gauge",
                        "Cost-weighted live false-positive rate per shard (Eq. 1/20)",
                        tuple(cost_weighted),
                    ),
                ]
            )
        if self._adaptive is not None:
            families.append(
                CollectedFamily(
                    "repro_adaptive_shard_backend",
                    "gauge",
                    "Backend serving each shard (info-style: value is always 1)",
                    tuple(
                        Sample(
                            "",
                            base
                            + (
                                ("shard", str(stats.shard)),
                                ("backend", stats.backend),
                            ),
                            1.0,
                        )
                        for stats in per_shard
                    ),
                )
            )
            plan = self._last_plan
            if plan is not None:
                score_samples = []
                for score in plan.scores:
                    for name in sorted(score.scores):
                        score_samples.append(
                            Sample(
                                "",
                                base
                                + (
                                    ("shard", str(score.shard)),
                                    ("backend", name),
                                ),
                                score.scores[name],
                            )
                        )
                families.append(
                    CollectedFamily(
                        "repro_adaptive_score",
                        "gauge",
                        "Composite score per shard and candidate backend at "
                        "the last adaptive evaluation (higher is better)",
                        tuple(score_samples),
                    )
                )
        return families

    def save_snapshot(self, path) -> int:
        """Serialize the serving store to ``path``; returns bytes written.

        In disk mode the lazy epoch view cannot cross the codec; the disk
        store materializes every shard into plain filters first, so the
        written frame is identical to what a RAM-mode service would save.
        """
        store = self._serving_snapshot().store
        if self._disk is not None:
            store = self._disk.materialize()
        return codec.dump(store, path)

    @classmethod
    def from_snapshot(
        cls,
        path,
        backend: BackendSpec = "habf",
        max_batch_size: int = 65536,
        latency_window: int = 4096,
        registry: Optional[Registry] = None,
        fpr_estimator: Optional[FprEstimator] = None,
        adaptive_policy: Optional[AdaptivePolicy] = None,
        **backend_kwargs,
    ) -> "MembershipService":
        """Start a service from a codec snapshot written by :meth:`save_snapshot`.

        ``backend`` only matters for later :meth:`rebuild` calls; the loaded
        generation serves exactly the filters in the snapshot.
        """
        store = codec.load(path)
        if not isinstance(store, ShardedFilterStore):
            raise ServiceError(
                f"snapshot at {path!s} holds {type(store).__name__}, "
                "expected a ShardedFilterStore frame"
            )
        service = cls(
            backend=backend,
            num_shards=store.num_shards,
            max_batch_size=max_batch_size,
            router_seed=store.router_seed,
            latency_window=latency_window,
            registry=registry,
            fpr_estimator=fpr_estimator,
            adaptive_policy=adaptive_policy,
            **backend_kwargs,
        )
        service.install_snapshot(store)
        return service

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snapshot = self._snapshot
        return (
            f"MembershipService(generation={snapshot.generation if snapshot else 0}, "
            f"shards={self._num_shards}, backend={self._backend!r})"
        )
