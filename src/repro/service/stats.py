"""Statistics containers for the membership-serving subsystem.

The service reports two kinds of numbers: monotone counters (queries,
positives, rebuilds, rejected batches — per shard and aggregated) and latency
percentiles computed from a bounded window of recent per-key latencies via
:func:`repro.metrics.timing.latency_percentiles`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.metrics.timing import LatencyPercentiles, latency_percentiles


@dataclass
class ShardStats:
    """Counters for one shard of a :class:`~repro.service.shards.ShardedFilterStore`.

    Attributes:
        shard: Shard index.
        num_keys: Positive keys routed to this shard at build time.
        queries: Membership tests answered by this shard.
        positives: Tests answered "present".
        size_in_bits: Serialized size of the shard's filter.
    """

    shard: int
    num_keys: int = 0
    queries: int = 0
    positives: int = 0
    size_in_bits: int = 0


@dataclass
class ServiceStats:
    """A point-in-time snapshot of a :class:`~repro.service.server.MembershipService`.

    Attributes:
        generation: Generation number of the snapshot currently serving.
        num_keys: Positive keys in the serving snapshot.
        queries: Total keys tested (scalar and batch combined).
        batches: ``query_many`` calls accepted.
        rejected_batches: ``query_many`` calls refused (oversized or empty).
        positives: Tests answered "present".
        rebuilds: Completed hot rebuilds (generation swaps after the first load).
        shards: Per-shard counters, in shard order.
        latency: Percentile summary of recent latency samples (scalar calls
            are true per-key latencies; each batch contributes its per-key
            average as one sample), or ``None`` before the first query.
    """

    generation: int
    num_keys: int
    queries: int
    batches: int
    rejected_batches: int
    positives: int
    rebuilds: int
    shards: List[ShardStats] = field(default_factory=list)
    latency: Optional[LatencyPercentiles] = None


class LatencyWindow:
    """A fixed-size ring buffer of latency samples (seconds).

    Keeps the most recent ``capacity`` samples so percentiles reflect current
    behaviour rather than the whole process lifetime, with O(1) memory.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("latency window capacity must be positive")
        self._capacity = capacity
        self._samples: List[float] = []
        self._cursor = 0

    def record(self, seconds: float) -> None:
        """Add one sample, evicting the oldest once the window is full."""
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self._capacity

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[float]:
        """A copy of the current window (so callers can summarise unlocked)."""
        return list(self._samples)

    def percentiles(self) -> Optional[LatencyPercentiles]:
        """Summarise the window, or ``None`` when no samples were recorded."""
        if not self._samples:
            return None
        return latency_percentiles(self._samples)
