"""Statistics views for the membership-serving subsystem.

The dataclasses here are *views*: since the telemetry layer landed, the
monotone counters live in :mod:`repro.obs` registry instruments (one family
per counter, children labelled per service / batcher instance) and
``stats()`` materialises these snapshots by reading instrument values, so
the long-standing ``stats()`` / ``STATS`` / ``GET /stats`` shapes survive
unchanged while ``GET /metrics`` exposes the same numbers in Prometheus
form.  Latency percentiles still come from a bounded
:class:`LatencyWindow` of recent samples (exact p50/p95/p99 over a ring
buffer — bucketed histograms cannot provide that), with the same samples
mirrored into registry histograms for exposition.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.metrics.timing import LatencyPercentiles, latency_percentiles


@dataclass
class ShardStats:
    """Counters for one shard of a :class:`~repro.service.shards.ShardedFilterStore`.

    Attributes:
        shard: Shard index.
        num_keys: Positive keys routed to this shard at build time.
        queries: Membership tests answered by this shard.
        positives: Tests answered "present".
        size_in_bits: Serialized size of the shard's filter.
        generation: How many times this shard has been (re)built.  An
            incremental rebuild only advances the generations of the shards
            it reconstructed; the service generation advances on every swap.
        backend: Registered name of the backend this shard's filter was
            built with.  Homogeneous stores repeat the store-level name;
            adaptive migrations make shards diverge.
    """

    shard: int
    num_keys: int = 0
    queries: int = 0
    positives: int = 0
    size_in_bits: int = 0
    generation: int = 1
    backend: str = ""


@dataclass
class MicroBatchStats:
    """Counters and distributions for an adaptive serving micro-batcher.

    Produced by :meth:`repro.service.aserve.AdaptiveMicroBatcher.batching_stats`
    and attached to :class:`ServiceStats` by the front-end's ``stats()``.

    Attributes:
        flushes: Windows dispatched to the engine (excludes empty windows).
        full_flushes: Windows closed because they reached ``max_batch`` keys.
        timer_flushes: Windows closed by the adaptive deadline or quiet queue.
        empty_flushes: Windows whose every waiter was cancelled before
            dispatch (nothing reached the engine).
        coalesced_keys: Keys answered through dispatched windows.
        bypassed_batches: Multi-key requests at least ``max_batch`` keys
            large that skipped the queue and dispatched directly.
        cancelled_callers: Waiters dropped because their future was cancelled.
        current_wait_ms: The adaptive window deadline at snapshot time, in
            milliseconds (``max_batch`` divided by the EWMA arrival rate,
            clamped to ``[min_wait_ms, max_wait_ms]``).
        batch_size: Percentiles over keys-per-dispatched-window, or ``None``
            before the first dispatch.
        wait: Percentiles over how long windows stayed open (seconds), or
            ``None`` before the first dispatch.
        queue_depth: Percentiles over pending keys observed at enqueue time,
            or ``None`` before the first enqueue.
    """

    flushes: int
    full_flushes: int
    timer_flushes: int
    empty_flushes: int
    coalesced_keys: int
    bypassed_batches: int
    cancelled_callers: int
    current_wait_ms: float
    batch_size: Optional[LatencyPercentiles] = None
    wait: Optional[LatencyPercentiles] = None
    queue_depth: Optional[LatencyPercentiles] = None


@dataclass
class AdaptiveStats:
    """Counters for a service's workload-adaptive backend selection.

    Attached to :class:`ServiceStats` when a
    :class:`~repro.service.adaptive.AdaptivePolicy` is installed (``None``
    otherwise), so ``stats()`` / ``STATS`` / ``GET /stats`` carry the
    adaptive state without changing their shapes for non-adaptive services.

    Attributes:
        evaluations: Rebuilds on which the policy scored the shards.
        migrations: Shard backend migrations applied, cumulative.
        last_migrated: Shards whose backend changed on the most recent
            rebuild (empty when the last evaluation kept every shard).
        shard_backends: Backend name serving each shard, in shard order.
    """

    evaluations: int = 0
    migrations: int = 0
    last_migrated: List[int] = field(default_factory=list)
    shard_backends: List[str] = field(default_factory=list)


@dataclass
class ServiceStats:
    """A point-in-time snapshot of a :class:`~repro.service.server.MembershipService`.

    Attributes:
        generation: Generation number of the snapshot currently serving.
        num_keys: Positive keys in the serving snapshot.
        queries: Total keys tested (scalar and batch combined).
        batches: ``query_many``/``query_batch`` calls accepted.
        rejected_batches: ``query_many`` calls refused (oversized or empty).
        positives: Tests answered "present".
        rebuilds: Completed hot rebuilds (generation swaps after the first load).
        shards_rebuilt: Shards actually reconstructed across every build and
            rebuild (the first load counts all of its shards).
        shards_skipped: Shards an incremental rebuild left untouched because
            their key-set fingerprints matched the previous snapshot.
        shards: Per-shard counters, in shard order.
        latency: Percentile summary of recent latency samples (scalar calls
            are true per-key latencies; each batch contributes its per-key
            average as one sample), or ``None`` before the first query.
        rebuild_latency: Percentile summary of recent build/rebuild
            wall-clock durations (one sample per completed swap), or ``None``
            before the first load.
        batching: Micro-batcher counters when the snapshot was taken through
            an async front-end's ``stats()``; ``None`` for a bare service.
        adaptive: Workload-adaptive selection counters when an
            :class:`~repro.service.adaptive.AdaptivePolicy` is installed;
            ``None`` otherwise.
        uptime_seconds: Seconds since this service instance was constructed.
        rss_bytes: Resident set size of the process at snapshot time, or
            ``None`` when the platform hides it (see
            :func:`repro.metrics.memory.process_rss_bytes`).
    """

    generation: int
    num_keys: int
    queries: int
    batches: int
    rejected_batches: int
    positives: int
    rebuilds: int
    shards_rebuilt: int = 0
    shards_skipped: int = 0
    shards: List[ShardStats] = field(default_factory=list)
    latency: Optional[LatencyPercentiles] = None
    rebuild_latency: Optional[LatencyPercentiles] = None
    batching: Optional[MicroBatchStats] = None
    adaptive: Optional[AdaptiveStats] = None
    uptime_seconds: float = 0.0
    rss_bytes: Optional[int] = None


class LatencyWindow:
    """A fixed-size ring buffer of latency samples (seconds).

    Keeps the most recent ``capacity`` samples so percentiles reflect current
    behaviour rather than the whole process lifetime, with O(1) memory.

    Recording and snapshotting share one internal lock: ``samples()`` and
    ``percentiles()`` copy the window under the same lock ``record()``
    mutates it with, so a reader racing a writer sees a consistent window
    rather than a torn one (a ``list(...)`` copy concurrent with the ring
    buffer's in-place eviction could otherwise observe a half-overwritten
    window or resize mid-copy).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("latency window capacity must be positive")
        self._capacity = capacity
        self._samples: List[float] = []
        self._cursor = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one sample, evicting the oldest once the window is full."""
        with self._lock:
            if len(self._samples) < self._capacity:
                self._samples.append(seconds)
            else:
                self._samples[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def samples(self) -> List[float]:
        """A copy of the current window (so callers can summarise unlocked)."""
        with self._lock:
            return list(self._samples)

    def percentiles(self) -> Optional[LatencyPercentiles]:
        """Summarise the window, or ``None`` when no samples were recorded."""
        with self._lock:
            if not self._samples:
                return None
            window = list(self._samples)
        return latency_percentiles(window)
