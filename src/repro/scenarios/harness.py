"""Streaming scenario harness: replay phased workloads, account ground truth.

A *scenario* is a seeded, phased workload: each phase carries the positive
key set a rebuild should load, the known negatives (and costs) that rebuild
trains against, and the query stream to replay.  The harness drives any
service that duck-types the serving surface — a bare
:class:`~repro.service.server.MembershipService`, or a
:class:`~repro.service.multiproc.ReplicaPool` — through the asyncio
front-end's :class:`~repro.service.aserve.AdaptiveMicroBatcher` (concurrent
clients, coalesced windows: the paths production traffic takes), rebuilds at
every phase boundary, and scores the replay against ground truth it holds
itself: the harness knows the positive set, so every verdict is classified
exactly rather than estimated.

The headline number is **FPR-cost** — false-positive cost over total
negative-query cost, the live counterpart of the paper's cost-weighted
metric (Eq. 1) — paired with replay throughput, so a backend cannot buy
accuracy with unusable slowness without it showing.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hashing.base import Key
from repro.service.aserve import AdaptiveMicroBatcher

__all__ = [
    "PhaseReport",
    "Scenario",
    "ScenarioPhase",
    "ScenarioReport",
    "replay_scenario",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioPhase:
    """One phase of a streaming scenario.

    Attributes:
        name: Phase label (shown in reports).
        keys: Positive key set the phase-boundary rebuild loads.
        negatives: Known negatives fed to that rebuild (what cost-aware
            backends train against, and what the estimator can classify as
            "known" error mass).
        costs: Per-key miss costs; keys absent from the mapping cost 1.0.
        queries: The query stream replayed against the service.
    """

    name: str
    keys: Tuple[Key, ...]
    negatives: Tuple[Key, ...] = ()
    costs: Mapping[Key, float] = field(default_factory=dict)
    queries: Tuple[Key, ...] = ()


@dataclass(frozen=True)
class Scenario:
    """A named, seeded sequence of phases."""

    name: str
    seed: int
    phases: Tuple[ScenarioPhase, ...]
    description: str = ""


@dataclass
class PhaseReport:
    """Ground-truth accounting for one replayed phase."""

    name: str
    queries: int = 0
    negative_queries: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    fp_cost: float = 0.0
    negative_cost: float = 0.0
    fpr_cost: float = 0.0
    elapsed_seconds: float = 0.0
    throughput_qps: float = 0.0
    generations: List[int] = field(default_factory=list)
    migrated: List[int] = field(default_factory=list)


@dataclass
class ScenarioReport:
    """Scenario-level rollup of the per-phase accounting."""

    scenario: str
    seed: int
    fpr_cost: float = 0.0
    throughput_qps: float = 0.0
    false_positives: int = 0
    false_negatives: int = 0
    fp_cost: float = 0.0
    negative_cost: float = 0.0
    migrations: int = 0
    shard_backends: List[str] = field(default_factory=list)
    phases: List[PhaseReport] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON rendering for ``BENCH_adaptive.json``."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "fpr_cost": self.fpr_cost,
            "throughput_qps": round(self.throughput_qps, 1),
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "fp_cost": round(self.fp_cost, 3),
            "negative_cost": round(self.negative_cost, 3),
            "migrations": self.migrations,
            "shard_backends": list(self.shard_backends),
            "phases": [
                {
                    "name": phase.name,
                    "queries": phase.queries,
                    "false_positives": phase.false_positives,
                    "false_negatives": phase.false_negatives,
                    "fpr_cost": phase.fpr_cost,
                    "throughput_qps": round(phase.throughput_qps, 1),
                    "generations": phase.generations,
                    "migrated": phase.migrated,
                }
                for phase in self.phases
            ],
        }


async def _replay_stream(
    batcher: AdaptiveMicroBatcher,
    stream: Sequence[Key],
    clients: int,
    chunk: int,
) -> List[Tuple[Key, bool, int]]:
    """Replay ``stream`` through ``clients`` concurrent submitters.

    Each client owns an interleaved slice of the stream and submits it in
    ``chunk``-sized requests (smaller than the batcher's window, so
    concurrent clients genuinely coalesce).  Returns
    ``(key, verdict, generation)`` per query.
    """

    async def client(slice_keys: List[Key]) -> List[Tuple[Key, bool, int]]:
        answered: List[Tuple[Key, bool, int]] = []
        for offset in range(0, len(slice_keys), chunk):
            window = slice_keys[offset : offset + chunk]
            verdicts, generation = await batcher.query_many_with_generation(window)
            answered.extend(
                (key, bool(verdict), generation)
                for key, verdict in zip(window, verdicts)
            )
        return answered

    slices = [list(stream[start::clients]) for start in range(clients)]
    results = await asyncio.gather(*(client(s) for s in slices if s))
    return [entry for per_client in results for entry in per_client]


async def replay_scenario(
    service,
    scenario: Scenario,
    max_batch: int = 256,
    max_wait_ms: float = 2.0,
    clients: int = 6,
    chunk: int = 48,
) -> ScenarioReport:
    """Replay every phase of ``scenario`` against ``service``.

    At each phase boundary the service rebuilds from the phase's keys,
    negatives and costs (the first phase is the initial load) — with an
    adaptive policy installed this is exactly where migrations happen, fed
    by the evidence the *previous* phase's traffic accumulated.  The phase's
    negatives are passed as ``changed_keys`` so every backend (adaptive or
    not) gets its shards retrained on the new negative set — scenario
    comparisons stay apples-to-apples.

    Rebuilds run on an executor thread while the event loop stays free,
    mirroring production hot-rebuild deployments.
    """
    if not scenario.phases:
        raise ConfigurationError(f"scenario {scenario.name!r} has no phases")
    loop = asyncio.get_running_loop()
    report = ScenarioReport(scenario=scenario.name, seed=scenario.seed)
    for index, phase in enumerate(scenario.phases):
        costs = dict(phase.costs)
        await loop.run_in_executor(
            None,
            lambda p=phase, c=costs, first=(index == 0): service.rebuild(
                list(p.keys),
                negatives=list(p.negatives),
                costs=c,
                changed_keys=None if first else list(p.negatives),
            ),
        )
        stats = service.stats()
        migrated = (
            list(stats.adaptive.last_migrated) if stats.adaptive is not None else []
        )
        positive_set = frozenset(phase.keys)
        phase_report = PhaseReport(name=phase.name, migrated=migrated)
        start = time.perf_counter()
        async with AdaptiveMicroBatcher(
            service, max_batch=max_batch, max_wait_ms=max_wait_ms
        ) as batcher:
            answered = await _replay_stream(batcher, phase.queries, clients, chunk)
        phase_report.elapsed_seconds = time.perf_counter() - start
        generations = set()
        for key, verdict, generation in answered:
            generations.add(generation)
            phase_report.queries += 1
            if key in positive_set:
                if not verdict:
                    phase_report.false_negatives += 1
                continue
            cost = float(costs.get(key, 1.0))
            phase_report.negative_queries += 1
            phase_report.negative_cost += cost
            if verdict:
                phase_report.false_positives += 1
                phase_report.fp_cost += cost
        phase_report.generations = sorted(generations)
        if phase_report.negative_cost > 0:
            phase_report.fpr_cost = phase_report.fp_cost / phase_report.negative_cost
        if phase_report.elapsed_seconds > 0:
            phase_report.throughput_qps = (
                phase_report.queries / phase_report.elapsed_seconds
            )
        report.phases.append(phase_report)
        report.false_positives += phase_report.false_positives
        report.false_negatives += phase_report.false_negatives
        report.fp_cost += phase_report.fp_cost
        report.negative_cost += phase_report.negative_cost
        report.migrations += len(migrated)
    if report.negative_cost > 0:
        report.fpr_cost = report.fp_cost / report.negative_cost
    total_elapsed = sum(phase.elapsed_seconds for phase in report.phases)
    total_queries = sum(phase.queries for phase in report.phases)
    if total_elapsed > 0:
        report.throughput_qps = total_queries / total_elapsed
    final = service.stats()
    report.shard_backends = [stats.backend for stats in final.shards]
    return report


def run_scenario(
    service,
    scenario: Scenario,
    max_batch: int = 256,
    max_wait_ms: float = 2.0,
    clients: int = 6,
    chunk: int = 48,
) -> ScenarioReport:
    """Synchronous wrapper around :func:`replay_scenario`."""
    return asyncio.run(
        replay_scenario(
            service,
            scenario,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            clients=clients,
            chunk=chunk,
        )
    )
