"""Streaming scenario harness and the built-in workload library.

* :mod:`repro.scenarios.harness` — phased replay driver: rebuilds at phase
  boundaries, replays query streams through the asyncio micro-batcher with
  concurrent clients, and scores the run against ground truth (the harness
  knows the positive set), reporting FPR-cost and throughput.
* :mod:`repro.scenarios.library` — four seeded scenario builders covering
  adversarial floods, cost shifts, Zipf drift, and key churn.
"""

from repro.scenarios.harness import (
    PhaseReport,
    Scenario,
    ScenarioPhase,
    ScenarioReport,
    replay_scenario,
    run_scenario,
)
from repro.scenarios.library import (
    adversarial_negatives_scenario,
    builtin_scenarios,
    cost_shift_scenario,
    key_churn_scenario,
    zipf_drift_scenario,
)

__all__ = [
    "PhaseReport",
    "Scenario",
    "ScenarioPhase",
    "ScenarioReport",
    "replay_scenario",
    "run_scenario",
    "adversarial_negatives_scenario",
    "builtin_scenarios",
    "cost_shift_scenario",
    "key_churn_scenario",
    "zipf_drift_scenario",
]
