"""The built-in scenario library: four seeded streaming workloads.

Each builder returns a :class:`~repro.scenarios.harness.Scenario` whose
phases exercise a different way real traffic shifts under a membership
service — the situations workload-adaptive backend selection exists for:

* :func:`adversarial_negatives_scenario` — a high-cost always-miss flood
  concentrated on half the shard space, costly unseen misses elsewhere.
* :func:`cost_shift_scenario` — costly flood traffic *spreads* to a second
  shard group mid-run, so the right per-shard backend changes under foot.
* :func:`zipf_drift_scenario` — a Zipf-headed known-negative working set
  whose hot head rotates each phase.
* :func:`key_churn_scenario` — the positive set churns; retired keys keep
  getting queried and become expensive known negatives.

Shard-locality is deliberate: floods and known-negative working sets are
minted *router-targeted* (only keys routing into a chosen shard subset),
the streaming analogue of a tenant or keyspace region misbehaving.  That
is what makes per-shard backend choice matter — one global backend cannot
be right for both halves of the fleet at once.  Builders take the same
``num_shards``/``router_seed`` the service under test uses; everything is
derived from the scenario ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hashing.base import Key, mix64
from repro.scenarios.harness import Scenario, ScenarioPhase
from repro.service.shards import ShardRouter
from repro.workloads.drift import adversarial_flood, churn_keys, zipf_query_stream
from repro.workloads.ycsb import generate_ycsb_like

__all__ = [
    "adversarial_negatives_scenario",
    "builtin_scenarios",
    "cost_shift_scenario",
    "key_churn_scenario",
    "zipf_drift_scenario",
]


def _targeted_keys(
    count: int,
    shards: Sequence[int],
    router: ShardRouter,
    seed: int,
    prefix: str,
) -> List[str]:
    """Mint ``count`` keys that all route into the ``shards`` subset."""
    want = frozenset(shards)
    if not want:
        raise ConfigurationError("targeted key minting needs at least one shard")
    out: List[str] = []
    salt = 0
    # Oversample by the routing odds so one pass usually suffices.
    chunk = max(64, (count * router.num_shards) // len(want) + count)
    while len(out) < count:
        for key in adversarial_flood(chunk, seed=seed + 7919 * salt, prefix=prefix):
            if router.shard_of(key) in want:
                out.append(key)
                if len(out) == count:
                    break
        salt += 1
    return out


def _mixed_stream(rng: random.Random, *parts: Sequence[Key]) -> Tuple[Key, ...]:
    """Interleave query sub-streams into one shuffled replay order."""
    merged: List[Key] = [key for part in parts for key in part]
    rng.shuffle(merged)
    return tuple(merged)


def _positive_draws(
    positives: Sequence[Key], count: int, rng: random.Random
) -> List[Key]:
    """Mildly skewed positive traffic (hits exist in every real stream)."""
    return zipf_query_stream(positives, count, skewness=0.7, rng=rng)


def adversarial_negatives_scenario(
    seed: int = 1,
    num_shards: int = 8,
    router_seed: int = 0,
    scale: float = 1.0,
) -> Scenario:
    """Known high-cost flood on half the shards, costly unseen misses elsewhere.

    The flood keys are known (fed to every rebuild as negatives, cost 40x),
    so a negative-aware backend can suppress them outright — but only the
    flooded shards benefit from paying for that.  The clean half sees
    *fresh* never-repeating misses (scans — feeding them back to a rebuild
    is useless) at cost 25x, where only a low plain FPR helps.  No single
    backend is right for both halves at once.
    """
    router = ShardRouter(num_shards, seed=router_seed)
    rng = random.Random(mix64(seed * 0x9E37_79B9 + 0xADBE))
    positives = tuple(
        generate_ycsb_like(int(1600 * scale), 1, seed=seed).positives
    )
    flooded = range(num_shards // 2)
    clean = range(num_shards // 2, num_shards)
    # Large enough that an oblivious filter *will* leak a few flood keys
    # per shard (leaks ~ set size x FPR); the zipf draws then hammer them.
    flood = _targeted_keys(int(2400 * scale), flooded, router, seed, "atk")
    phases = []
    for phase_index in range(3):
        unseen = _targeted_keys(
            int(2400 * scale), clean, router, seed + 100 + phase_index, "miss"
        )
        costs: Dict[Key, float] = {key: 40.0 for key in flood}
        costs.update({key: 25.0 for key in unseen})
        queries = _mixed_stream(
            rng,
            zipf_query_stream(flood, int(9000 * scale), skewness=0.4, rng=rng),
            unseen,
            _positive_draws(positives, int(1500 * scale), rng),
        )
        phases.append(
            ScenarioPhase(
                name=f"flood-{phase_index}",
                keys=positives,
                negatives=tuple(flood),
                costs=costs,
                queries=queries,
            )
        )
    return Scenario(
        name="adversarial_negatives",
        seed=seed,
        phases=tuple(phases),
        description="known high-cost flood on half the shards, costly "
        "unseen misses on the other half",
    )


def cost_shift_scenario(
    seed: int = 1,
    num_shards: int = 8,
    router_seed: int = 0,
    scale: float = 1.0,
) -> Scenario:
    """Costly flood traffic spreads to a second shard group mid-run.

    Group A (first half of the shards) is hammered with known cost-32
    flood traffic from the start.  Group B's shards begin as a scan tenant
    — fresh unseen misses at cost 25 — and in phases 2-3 that tenant is
    replaced by a second known flood.  An adaptive service should follow
    the cost mass: the phase-1 boundary migrates group A's shards off the
    evidence phase 0 produced, and the phase-3 boundary chases the flood
    into group B.
    """
    router = ShardRouter(num_shards, seed=router_seed)
    rng = random.Random(mix64(seed * 0x9E37_79B9 + 0xC057))
    positives = tuple(
        generate_ycsb_like(int(1600 * scale), 1, seed=seed + 1).positives
    )
    half_a = range(num_shards // 2)
    half_b = range(num_shards // 2, num_shards)
    group_a = _targeted_keys(int(1600 * scale), half_a, router, seed + 11, "neg-a")
    group_b = _targeted_keys(int(1600 * scale), half_b, router, seed + 13, "neg-b")
    known = tuple(group_a + group_b)
    phases = []
    for phase_index in range(4):
        spread = phase_index >= 2
        costs: Dict[Key, float] = {key: 32.0 for key in group_a}
        costs.update({key: 32.0 if spread else 1.0 for key in group_b})
        parts = [
            zipf_query_stream(group_a, int(6600 * scale), skewness=0.4, rng=rng),
            _positive_draws(positives, int(1600 * scale), rng),
        ]
        if spread:
            parts.append(
                zipf_query_stream(group_b, int(6600 * scale), skewness=0.4, rng=rng)
            )
        else:
            unseen = _targeted_keys(
                int(2200 * scale), half_b, router, seed + 200 + phase_index, "miss"
            )
            costs.update({key: 25.0 for key in unseen})
            parts.append(unseen)
        phases.append(
            ScenarioPhase(
                name=f"{'spread' if spread else 'single'}-{phase_index}",
                keys=positives,
                negatives=known,
                costs=costs,
                queries=_mixed_stream(rng, *parts),
            )
        )
    return Scenario(
        name="cost_shift",
        seed=seed,
        phases=tuple(phases),
        description="known cost-32 flood on group A throughout; a second "
        "flood replaces group B's scan tenant in phases 2-3",
    )


def zipf_drift_scenario(
    seed: int = 1,
    num_shards: int = 8,
    router_seed: int = 0,
    scale: float = 1.0,
) -> Scenario:
    """Zipf-headed known-negative traffic whose hot set rotates each phase.

    The known working set lives on half the shard space (a hot keyspace
    region); each phase rotates which of its keys carry the head of the
    Zipf distribution.  The other half of the shards sees only fresh unseen
    misses at cost 25x — drift changes *which keys* are hot but not *where*
    the error cost concentrates, so per-shard choices should stay stable
    while the estimator keeps re-confirming them.
    """
    router = ShardRouter(num_shards, seed=router_seed)
    rng = random.Random(mix64(seed * 0x9E37_79B9 + 0xD21F))
    positives = tuple(
        generate_ycsb_like(int(1600 * scale), 1, seed=seed + 2).positives
    )
    hot_half = range(num_shards // 2)
    cold_half = range(num_shards // 2, num_shards)
    working = _targeted_keys(int(1200 * scale), hot_half, router, seed + 17, "neg")
    phases = []
    for phase_index in range(3):
        unseen = _targeted_keys(
            int(2200 * scale), cold_half, router, seed + 300 + phase_index, "miss"
        )
        costs: Dict[Key, float] = {key: 12.0 for key in working}
        costs.update({key: 25.0 for key in unseen})
        queries = _mixed_stream(
            rng,
            zipf_query_stream(
                working,
                int(6000 * scale),
                skewness=0.8,
                rng=rng,
                rotate=phase_index * (len(working) // 3),
            ),
            unseen,
            _positive_draws(positives, int(1600 * scale), rng),
        )
        phases.append(
            ScenarioPhase(
                name=f"drift-{phase_index}",
                keys=positives,
                negatives=tuple(working),
                costs=costs,
                queries=queries,
            )
        )
    return Scenario(
        name="zipf_drift",
        seed=seed,
        phases=tuple(phases),
        description="Zipf hot set over known negatives rotates each phase",
    )


def key_churn_scenario(
    seed: int = 1,
    num_shards: int = 8,
    router_seed: int = 0,
    scale: float = 1.0,
) -> Scenario:
    """The positive set churns; retired keys keep arriving as queries.

    Phase 0 has no known negatives at all.  Each later phase retires 30% of
    the keys and mints replacements; clients keep querying the retired keys
    (stale caches, dangling references), which makes them expensive known
    negatives for the next rebuild.  Churn is router-uniform — this is the
    honest scenario with no shard-locality for an adaptive policy to
    exploit.
    """
    rng = random.Random(mix64(seed * 0x9E37_79B9 + 0xC4A2))
    keys = list(generate_ycsb_like(int(1600 * scale), 1, seed=seed + 3).positives)
    retired_pool: List[Key] = []
    phases = []
    for phase_index in range(3):
        if phase_index > 0:
            survivors, removed, added = churn_keys(
                keys, 0.3, rng=rng, seed=seed + phase_index, tag=f"churn{phase_index}"
            )
            keys = survivors + added
            retired_pool.extend(removed)
        costs: Dict[Key, float] = {key: 20.0 for key in retired_pool}
        unseen = adversarial_flood(
            int(2000 * scale), seed=seed + 400 + phase_index, prefix="miss"
        )
        parts = [
            _positive_draws(keys, int(2200 * scale), rng),
            unseen,
        ]
        if retired_pool:
            parts.append(
                zipf_query_stream(
                    retired_pool, int(1800 * scale), skewness=0.9, rng=rng
                )
            )
        phases.append(
            ScenarioPhase(
                name=f"churn-{phase_index}",
                keys=tuple(keys),
                negatives=tuple(retired_pool),
                costs=costs,
                queries=_mixed_stream(rng, *parts),
            )
        )
    return Scenario(
        name="key_churn",
        seed=seed,
        phases=tuple(phases),
        description="30% of the positive set churns each phase; retired keys "
        "keep getting queried",
    )


def builtin_scenarios(
    seed: int = 1,
    num_shards: int = 8,
    router_seed: int = 0,
    scale: float = 1.0,
) -> List[Scenario]:
    """All four built-in scenarios with a shared seed and shard geometry."""
    return [
        adversarial_negatives_scenario(seed, num_shards, router_seed, scale),
        cost_shift_scenario(seed, num_shards, router_seed, scale),
        zipf_drift_scenario(seed, num_shards, router_seed, scale),
        key_churn_scenario(seed, num_shards, router_seed, scale),
    ]
