"""Xor filter (Graf & Lemire, 2020) — the static non-learned baseline.

An Xor filter stores an array ``B`` of ``c`` fingerprint slots split into
three equal segments.  Each key maps to one slot per segment plus an
``f``-bit fingerprint; construction solves ``B[h0] ^ B[h1] ^ B[h2] =
fingerprint(key)`` for every key by peeling (repeatedly removing keys that are
the only key mapping to some slot, then assigning in reverse order).  Queries
recompute the three slots and the fingerprint and compare.

The paper sizes the fingerprint as ``⌊b / 1.23 + 32/|S|⌋`` bits for a
bits-per-key budget ``b``; the same sizing rule is used here so the Xor filter
competes under the same space budget as every other method.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.batch import BatchMembership
from repro.errors import CapacityError, ConfigurationError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key, mix64, normalize_key
from repro.hashing.primitives import xxhash

_MASK64 = (1 << 64) - 1


def fingerprint_bits_for_budget(bits_per_key: float, num_keys: int) -> int:
    """Fingerprint size used by the paper for a given bits-per-key budget."""
    if bits_per_key <= 0 or num_keys <= 0:
        raise ConfigurationError("bits_per_key and num_keys must be positive")
    return max(1, int(bits_per_key / 1.23 + 32 / num_keys))


class XorFilter(BatchMembership):
    """A static Xor filter over a fixed key set.

    Args:
        keys: The (positive) key set to encode.  Duplicate keys are allowed and
            deduplicated.
        fingerprint_bits: Width of each fingerprint slot in bits.
        seed: Construction seed; bumped automatically if peeling fails.
    """

    algorithm_name = "Xor"

    def __init__(self, keys: Sequence[Key], fingerprint_bits: int = 8, seed: int = 1) -> None:
        if fingerprint_bits < 1 or fingerprint_bits > 32:
            raise ConfigurationError("fingerprint_bits must be between 1 and 32")
        unique = list(dict.fromkeys(keys))
        if not unique:
            raise ConfigurationError("XorFilter needs at least one key")
        self._fingerprint_bits = fingerprint_bits
        self._fingerprint_mask = (1 << fingerprint_bits) - 1
        self._num_keys = len(unique)
        capacity = int(math.floor(1.23 * len(unique))) + 32
        self._segment_length = max(1, (capacity + 2) // 3)
        self._capacity = self._segment_length * 3
        self._seed = seed
        self._slots: List[int] = []
        self._build(unique)

    # ------------------------------------------------------------------ #
    # Hashing
    # ------------------------------------------------------------------ #
    def _hash64(self, key: Key, seed: int) -> int:
        return mix64(xxhash(normalize_key(key)) ^ (seed * 0x9E3779B97F4A7C15))

    def _slots_for(self, key: Key, seed: int) -> Tuple[int, int, int]:
        value = self._hash64(key, seed)
        h0 = value % self._segment_length
        h1 = self._segment_length + (mix64(value ^ 0x1234567) % self._segment_length)
        h2 = 2 * self._segment_length + (mix64(value ^ 0x89ABCDE) % self._segment_length)
        return h0, h1, h2

    def _fingerprint(self, key: Key, seed: int) -> int:
        fp = self._hash64(key, seed ^ 0x5F5F5F5F) & self._fingerprint_mask
        # Avoid the all-zero fingerprint so that an empty filter rejects keys.
        return fp if fp != 0 else 1

    def _batch_state(self, batch, seed: int):
        """Slots and fingerprints of a whole batch under ``seed``.

        One vectorized pass shared by construction (every peeling attempt)
        and :meth:`_contains_batch`; bit-for-bit equal to the scalar
        :meth:`_slots_for` / :meth:`_fingerprint` pair.
        """
        np = vec.numpy_or_none()
        golden = 0x9E3779B97F4A7C15
        base = vec.hash_batch(xxhash, batch)
        value = vec.mix64(base ^ np.uint64((seed * golden) & _MASK64))
        segment = np.uint64(self._segment_length)
        h0 = value % segment
        h1 = segment + vec.mix64(value ^ np.uint64(0x1234567)) % segment
        h2 = np.uint64(2) * segment + vec.mix64(value ^ np.uint64(0x89ABCDE)) % segment
        fp_seed = ((seed ^ 0x5F5F5F5F) * golden) & _MASK64
        fingerprint = vec.mix64(base ^ np.uint64(fp_seed)) & np.uint64(self._fingerprint_mask)
        fingerprint = np.where(fingerprint == 0, np.uint64(1), fingerprint)
        return h0, h1, h2, fingerprint

    # ------------------------------------------------------------------ #
    # Construction (peeling)
    # ------------------------------------------------------------------ #
    def _build(self, keys: List[Key]) -> None:
        np = vec.numpy_or_none()
        batch = vec.KeyBatch(keys) if np is not None else None
        for attempt in range(64):
            seed = self._seed + attempt
            if batch is not None:
                # Bulk-build path: hash every key once per attempt as one
                # array program (the xxhash base pass is memoised on the
                # batch, so retries only pay the mixing arithmetic).
                h0, h1, h2, fp = self._batch_state(batch, seed)
                key_slots = list(zip(h0.tolist(), h1.tolist(), h2.tolist()))
                fingerprints = fp.tolist()
            else:
                key_slots = [self._slots_for(key, seed) for key in keys]
                fingerprints = [self._fingerprint(key, seed) for key in keys]
            order = self._peel(key_slots)
            if order is not None:
                self._assign(order, key_slots, fingerprints)
                self._seed = seed
                return
        raise CapacityError(
            f"Xor filter peeling failed for {len(keys)} keys after 64 seeds"
        )

    def _peel(
        self, key_slots: List[Tuple[int, int, int]]
    ) -> Optional[List[Tuple[int, int]]]:
        """Return a peel order of ``(key_index, slot)`` pairs, or None on failure."""
        slot_count = [0] * self._capacity
        slot_xor = [0] * self._capacity
        for key_index, slots in enumerate(key_slots):
            for slot in slots:
                slot_count[slot] += 1
                slot_xor[slot] ^= key_index

        stack: List[Tuple[int, int]] = []
        singles = [slot for slot in range(self._capacity) if slot_count[slot] == 1]
        while singles:
            slot = singles.pop()
            if slot_count[slot] != 1:
                continue
            key_index = slot_xor[slot]
            stack.append((key_index, slot))
            for other in key_slots[key_index]:
                slot_count[other] -= 1
                slot_xor[other] ^= key_index
                if slot_count[other] == 1:
                    singles.append(other)
        if len(stack) != len(key_slots):
            return None
        return stack

    def _assign(
        self,
        order: List[Tuple[int, int]],
        key_slots: List[Tuple[int, int, int]],
        fingerprints: List[int],
    ) -> None:
        self._slots = [0] * self._capacity
        for key_index, free_slot in reversed(order):
            slots = key_slots[key_index]
            value = fingerprints[key_index]
            for slot in slots:
                if slot != free_slot:
                    value ^= self._slots[slot]
            self._slots[free_slot] = value

    # ------------------------------------------------------------------ #
    # Queries and accounting
    # ------------------------------------------------------------------ #
    def contains(self, key: Key) -> bool:
        """Membership test: exact for encoded keys, small FPR otherwise."""
        h0, h1, h2 = self._slots_for(key, self._seed)
        expected = self._fingerprint(key, self._seed)
        return (self._slots[h0] ^ self._slots[h1] ^ self._slots[h2]) == expected

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    #: Lazily-built numpy copy of ``_slots`` (class default so codec-decoded
    #: instances, which bypass ``__init__``, start unbuilt too).
    _slots_array = None

    def _contains_batch(self, batch):
        """Batch form of :meth:`contains`: slots and fingerprints in one pass."""
        np = vec.numpy_or_none()
        h0, h1, h2, fingerprint = self._batch_state(batch, self._seed)
        if self._slots_array is None:
            self._slots_array = np.asarray(self._slots, dtype=np.uint64)
        slots = self._slots_array
        idx = np.stack([h0, h1, h2]).astype(np.int64)
        return (slots[idx[0]] ^ slots[idx[1]] ^ slots[idx[2]]) == fingerprint

    @property
    def fingerprint_bits(self) -> int:
        """Width of each stored fingerprint."""
        return self._fingerprint_bits

    @property
    def num_keys(self) -> int:
        """Number of distinct keys encoded."""
        return self._num_keys

    def size_in_bits(self) -> int:
        """Serialized size: ``capacity * fingerprint_bits``."""
        return self._capacity * self._fingerprint_bits

    def size_in_bytes(self) -> int:
        """Serialized size in bytes (rounded up)."""
        return (self.size_in_bits() + 7) // 8

    def expected_fpr(self) -> float:
        """Analytic FPR of an Xor filter: ``2^-fingerprint_bits``."""
        return 2.0 ** (-self._fingerprint_bits)

    @classmethod
    def from_bits_per_key(
        cls, keys: Sequence[Key], bits_per_key: float, seed: int = 1
    ) -> "XorFilter":
        """Build with the paper's fingerprint sizing rule for a space budget."""
        unique = list(dict.fromkeys(keys))
        bits = fingerprint_bits_for_budget(bits_per_key, len(unique))
        return cls(unique, fingerprint_bits=min(32, bits), seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"XorFilter(keys={self._num_keys}, fingerprint_bits={self._fingerprint_bits}, "
            f"slots={self._capacity})"
        )
