"""Weighted Bloom filter (Bruck, Gao & Jiang, 2006) — the cost-aware baseline.

WBF varies the number of hash functions per key: keys whose misidentification
is expensive get more hash probes (so their false-positive probability drops),
cheap keys get fewer.  Because the hash count must be recomputed at query
time, WBF keeps a *cost cache* mapping the most expensive known keys to their
hash counts — exactly the extra memory and query-time overhead the paper
criticises (Section II, "Cost-based").

This implementation follows the paper's experimental setup:

* positive keys are inserted with the budget-optimal hash count
  ``k = ln2 · bits_per_key``;
* positive keys are additionally inserted with every *elevated* hash count
  present in the cost cache, so a cached negative key that happens to equal a
  positive key can never produce a false negative (zero-FNR is preserved);
* known negative keys are ranked by cost and the most expensive fraction is
  cached with an elevated hash count (more probes → smaller FPR for them);
* at query time the cached hash count is used when available, otherwise the
  default.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.batch import BatchMembership
from repro.core.bitarray import BitArray
from repro.core.bloom import optimal_num_hashes
from repro.errors import ConfigurationError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key, mix64, normalize_key
from repro.hashing.primitives import xxhash

_MASK64 = (1 << 64) - 1


class WeightedBloomFilter(BatchMembership):
    """Cost-aware Bloom filter with a cached per-key hash count.

    Args:
        num_bits: Size of the bit array (the *filter* budget; the cost cache is
            accounted separately, as in the paper).
        default_hashes: Hash count used for keys not present in the cost cache.
        max_hashes: Upper bound for elevated hash counts.
        cache_fraction: Fraction of the known negative keys (by descending
            cost) whose hash counts are cached.
    """

    algorithm_name = "WBF"

    def __init__(
        self,
        num_bits: int,
        default_hashes: int,
        max_hashes: int = 16,
        cache_fraction: float = 0.1,
    ) -> None:
        if num_bits <= 0:
            raise ConfigurationError("num_bits must be positive")
        if default_hashes < 1:
            raise ConfigurationError("default_hashes must be at least 1")
        if max_hashes < default_hashes:
            raise ConfigurationError("max_hashes must be >= default_hashes")
        if not 0.0 <= cache_fraction <= 1.0:
            raise ConfigurationError("cache_fraction must be in [0, 1]")
        self._bits = BitArray(num_bits)
        self._default_hashes = default_hashes
        self._max_hashes = max_hashes
        self._cache_fraction = cache_fraction
        self._hash_cache: Dict[Key, int] = {}
        self._num_items = 0

    # ------------------------------------------------------------------ #
    # Hashing
    # ------------------------------------------------------------------ #
    def _positions(self, key: Key, num_hashes: int) -> List[int]:
        data = normalize_key(key)
        base = xxhash(data)
        step = mix64(base ^ 0xA076_1D64_78BD_642F) | 1
        modulus = len(self._bits)
        return [((base + i * step) & _MASK64) % modulus for i in range(num_hashes)]

    def _hashes_for(self, key: Key) -> int:
        return self._hash_cache.get(key, self._default_hashes)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        positives: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        total_bits: int = 0,
        bits_per_key: float = 10.0,
        cache_fraction: float = 0.1,
        max_extra_hashes: int = 6,
    ) -> "WeightedBloomFilter":
        """Build a WBF under a space budget with a cost cache over negatives.

        Args:
            positives: Keys to insert.
            negatives: Known negative keys used to populate the cost cache.
            costs: Per-key costs; missing keys default to 1.0.
            total_bits: Bit-array budget; derived from ``bits_per_key`` if 0.
            bits_per_key: Used when ``total_bits`` is 0.
            cache_fraction: Fraction of negatives (by descending cost) cached.
            max_extra_hashes: How many extra probes the most expensive cached
                keys receive on top of the default count.
        """
        positives = list(positives)
        if not positives:
            raise ConfigurationError("WeightedBloomFilter needs at least one positive key")
        if total_bits <= 0:
            total_bits = max(8, int(round(bits_per_key * len(positives))))
        per_key = total_bits / len(positives)
        default_hashes = optimal_num_hashes(per_key)
        wbf = cls(
            num_bits=total_bits,
            default_hashes=default_hashes,
            max_hashes=default_hashes + max_extra_hashes,
            cache_fraction=cache_fraction,
        )
        wbf._populate_cache(list(negatives), costs or {}, max_extra_hashes)
        wbf.add_many(positives)
        return wbf

    def _populate_cache(
        self,
        negatives: List[Key],
        costs: Mapping[Key, float],
        max_extra_hashes: int,
    ) -> None:
        if not negatives or self._cache_fraction == 0.0 or max_extra_hashes <= 0:
            return
        budget = max(1, int(len(negatives) * self._cache_fraction))
        ranked = sorted(negatives, key=lambda key: -float(costs.get(key, 1.0)))[:budget]
        if not ranked:
            return
        top_cost = float(costs.get(ranked[0], 1.0))
        low_cost = float(costs.get(ranked[-1], 1.0))
        span = max(top_cost - low_cost, 1e-12)
        for key in ranked:
            cost = float(costs.get(key, 1.0))
            extra = int(round(max_extra_hashes * (cost - low_cost) / span))
            self._hash_cache[key] = min(self._max_hashes, self._default_hashes + max(1, extra))

    def add(self, key: Key) -> None:
        """Insert a key with its (cached or default) hash count.

        A key also present in the cost cache is inserted with the *larger* of
        the two hash counts, so later queries with the elevated count still
        find all its bits set (zero FNR).
        """
        count = max(self._default_hashes, self._hashes_for(key))
        for position in self._positions(key, count):
            self._bits.set(position)
        self._num_items += 1

    def add_all(self, keys: Iterable[Key]) -> None:
        """Insert every key in ``keys`` (scalar loop; prefer :meth:`add_many`)."""
        for key in keys:
            self.add(key)

    def _add_batch(self, batch) -> bool:
        """Batch form of :meth:`add`.

        Mirrors :meth:`_contains_batch`: one shared base/step pass, then
        probe round ``i`` sets bits only for the keys whose *insert* hash
        count (``max(default, cached)``, the zero-FNR rule of :meth:`add`)
        exceeds ``i``.
        """
        np = vec.numpy_or_none()
        counts = np.fromiter(
            (
                max(self._default_hashes, self._hashes_for(key))
                for key in batch.keys
            ),
            dtype=np.int64,
            count=len(batch),
        )
        base = vec.hash_batch(xxhash, batch)
        step = vec.mix64(base ^ np.uint64(0xA076_1D64_78BD_642F)) | np.uint64(1)
        modulus = np.uint64(len(self._bits))
        for probe in range(int(counts.max()) if len(batch) else 0):
            active = counts > probe
            positions = (base + np.uint64(probe) * step) % modulus
            self._bits.set_many(positions[active])
        self._num_items += len(batch)
        return True

    # ------------------------------------------------------------------ #
    # Queries and accounting
    # ------------------------------------------------------------------ #
    def contains(self, key: Key) -> bool:
        """Membership test using the key's cached hash count (default otherwise)."""
        count = self._hashes_for(key)
        return all(self._bits.test(position) for position in self._positions(key, count))

    def _contains_batch(self, batch):
        """Batch form of :meth:`contains`.

        The double-hashed probe sequence is shared: one vectorized base/step
        pass covers every key, and probe round ``i`` only tests the keys
        whose (cached or default) hash count exceeds ``i``.
        """
        np = vec.numpy_or_none()
        counts = np.fromiter(
            (self._hashes_for(key) for key in batch.keys),
            dtype=np.int64,
            count=len(batch),
        )
        base = vec.hash_batch(xxhash, batch)
        step = vec.mix64(base ^ np.uint64(0xA076_1D64_78BD_642F)) | np.uint64(1)
        modulus = np.uint64(len(self._bits))
        answers = np.ones(len(batch), dtype=bool)
        for probe in range(int(counts.max()) if len(batch) else 0):
            active = counts > probe
            positions = (base + np.uint64(probe) * step) % modulus
            answers &= ~active | self._bits.test_many(positions)
        return answers

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    @property
    def default_hashes(self) -> int:
        """Hash count used for uncached keys."""
        return self._default_hashes

    @property
    def cache_size(self) -> int:
        """Number of keys in the cost cache."""
        return self._hash_cache and len(self._hash_cache) or 0

    def cached_hashes(self, key: Key) -> Optional[int]:
        """Return the cached hash count for ``key``, or None if not cached."""
        return self._hash_cache.get(key)

    def size_in_bits(self) -> int:
        """Bit-array budget only (the paper charges the cache to construction memory)."""
        return len(self._bits)

    def cache_size_in_bytes(self) -> int:
        """Approximate memory of the cached cost list (key bytes + 1-byte count)."""
        return sum(len(normalize_key(key)) + 1 for key in self._hash_cache)

    def size_in_bytes(self) -> int:
        """Bit-array bytes (rounded up)."""
        return (self.size_in_bits() + 7) // 8

    def to_frame(self) -> bytes:
        """Serialize the filter (bit array + cost cache) to one codec frame."""
        from repro.service import codec

        return codec.dumps(self)

    @classmethod
    def from_frame(cls, data: bytes) -> "WeightedBloomFilter":
        """Revive a filter from a frame written by :meth:`to_frame`."""
        from repro.service import codec

        return codec.loads_as(data, cls)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedBloomFilter(bits={len(self._bits)}, default_k={self._default_hashes}, "
            f"cached={len(self._hash_cache)})"
        )
