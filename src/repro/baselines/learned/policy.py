"""Filter policies exposing the learned baselines to the serving layer.

The learned filters (LBF, SLBF, Ada-BF) need negative training keys; a
sorted run or a shard that has none cannot train a classifier at all.  The
policies therefore *degrade gracefully*: with no usable negatives they build
a plain Bloom filter at the same space budget instead of failing the whole
store build.  Every filter a policy can return — learned or degraded —
round-trips through :mod:`repro.service.codec`, so sharded stores over these
backends snapshot/restore and parallel-build like the hash-based ones.

The policies follow the same ``create_filter(keys, negatives, costs)``
protocol as :mod:`repro.kvstore.filter_policy`; the model capacity defaults
to a small hashed-feature width (64 features) because a per-shard or per-run
filter charges the serialized model against its own budget.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
from repro.baselines.learned.lbf import LearnedBloomFilter
from repro.baselines.learned.model import KeyScoreModel
from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter
from repro.errors import ConfigurationError
from repro.hashing.base import Key
from repro.kvstore.filter_policy import (
    AlwaysContainsFilter,
    DoubleHashBloomFilterPolicy,
    MembershipFilter,
)


class _LearnedFilterPolicy:
    """Shared build recipe for the three learned-filter policies."""

    name = "learned"
    filter_cls: type = LearnedBloomFilter

    def __init__(
        self,
        bits_per_key: float = 12.0,
        num_features: int = 64,
        seed: int = 1,
    ) -> None:
        if bits_per_key <= 0:
            raise ConfigurationError("bits_per_key must be positive")
        self.bits_per_key = bits_per_key
        self.num_features = num_features
        self.seed = seed

    def _model(self) -> KeyScoreModel:
        return KeyScoreModel(num_features=self.num_features, seed=self.seed)

    def _build(
        self,
        keys: list,
        negatives: list,
        costs: Optional[Mapping[Key, float]],
    ) -> MembershipFilter:
        return self.filter_cls.build(
            keys,
            negatives,
            costs=costs,
            bits_per_key=self.bits_per_key,
            model=self._model(),
            seed=self.seed,
        )

    def _fallback(self, keys: list) -> MembershipFilter:
        """A plain Bloom filter at the same budget when training is impossible.

        Delegates to the ``bloom-dh`` policy so the degraded filter is the
        same shape that backend would build — one sizing recipe, not two.
        """
        return DoubleHashBloomFilterPolicy(
            bits_per_key=self.bits_per_key, seed=self.seed
        ).create_filter(keys)

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:
        keys = list(keys)
        if not keys:
            return AlwaysContainsFilter()
        key_set = set(keys)
        usable_negatives = [key for key in negatives if key not in key_set]
        if not usable_negatives:
            return self._fallback(keys)
        return self._build(keys, usable_negatives, costs)


class LearnedBloomFilterPolicy(_LearnedFilterPolicy):
    """LBF per run/shard: classifier + backup Bloom filter."""

    name = "lbf"
    filter_cls = LearnedBloomFilter


class SandwichedLearnedBloomFilterPolicy(_LearnedFilterPolicy):
    """SLBF per run/shard: initial filter + classifier + backup filter."""

    name = "slbf"
    filter_cls = SandwichedLearnedBloomFilter


class AdaptiveLearnedBloomFilterPolicy(_LearnedFilterPolicy):
    """Ada-BF per run/shard: score-bucketed probe counts over one bit array."""

    name = "adabf"
    filter_cls = AdaptiveLearnedBloomFilter

    def __init__(
        self,
        bits_per_key: float = 12.0,
        num_features: int = 64,
        seed: int = 1,
        num_groups: int = 4,
    ) -> None:
        super().__init__(bits_per_key=bits_per_key, num_features=num_features, seed=seed)
        self.num_groups = num_groups

    def _build(
        self,
        keys: list,
        negatives: list,
        costs: Optional[Mapping[Key, float]],
    ) -> MembershipFilter:
        return AdaptiveLearnedBloomFilter.build(
            keys,
            negatives,
            costs=costs,
            bits_per_key=self.bits_per_key,
            num_groups=self.num_groups,
            model=self._model(),
            seed=self.seed,
        )
