"""Learned-filter baselines (LBF, SLBF, Ada-BF) built on a numpy classifier.

The paper's learned baselines use Keras GRU / MLP models trained on GPUs.
Offline reproduction substitutes a from-scratch logistic-regression classifier
over hashed character n-gram features (:class:`~repro.baselines.learned.model.KeyScoreModel`);
see DESIGN.md §4 for why this preserves the comparisons that matter (score in
[0, 1] per key, threshold + backup filter architecture, strong on structured
keys, weak on random keys, far slower per key than hash-based filters).
"""

from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
from repro.baselines.learned.lbf import LearnedBloomFilter
from repro.baselines.learned.model import KeyScoreModel
from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter

__all__ = [
    "KeyScoreModel",
    "LearnedBloomFilter",
    "SandwichedLearnedBloomFilter",
    "AdaptiveLearnedBloomFilter",
]
