"""Sandwiched learned Bloom filter (Mitzenmacher, 2018).

SLBF adds an *initial* Bloom filter in front of the classifier: a query must
first pass the initial filter (which holds all positive keys), then the
classifier, and classifier misses fall through to a backup filter exactly as
in the plain LBF.  The initial filter bounds the damage a poorly-fitted model
can do — which is why the paper observes SLBF degrading much less than Ada-BF
on the unstructured YCSB keys.

The split of the non-model budget between the initial and backup filters is
chosen at build time by sweeping a small set of fractions and keeping the one
with the lowest estimated overall FPR.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    np = None

from repro.baselines.learned.lbf import _backup_fpr_estimate
from repro.baselines.learned.model import KeyScoreModel
from repro.core.batch import BatchMembership
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.errors import ConfigurationError, ConstructionError
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily

_THRESHOLD_QUANTILES = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99)
_INITIAL_FRACTIONS = (0.3, 0.5, 0.7)


class SandwichedLearnedBloomFilter(BatchMembership):
    """Initial Bloom filter + classifier + backup Bloom filter.

    Args:
        total_bits: Space budget shared by the model and both Bloom filters.
        model: Optional pre-configured (untrained) scoring model.
        seed: Seed for the model and hashing.
    """

    algorithm_name = "SLBF"

    def __init__(
        self,
        total_bits: int,
        model: Optional[KeyScoreModel] = None,
        seed: int = 1,
    ) -> None:
        if total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")
        self._total_bits = total_bits
        self._model = model if model is not None else KeyScoreModel(seed=seed)
        self._seed = seed
        self._threshold = 1.0
        self._initial: Optional[BloomFilter] = None
        self._backup: Optional[BloomFilter] = None
        self._built = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        positives: Sequence[Key],
        negatives: Sequence[Key],
        costs: Optional[Mapping[Key, float]] = None,
        total_bits: int = 0,
        bits_per_key: float = 10.0,
        model: Optional[KeyScoreModel] = None,
        seed: int = 1,
    ) -> "SandwichedLearnedBloomFilter":
        """Train the model and assemble the sandwich under the space budget."""
        positives = list(positives)
        negatives = list(negatives)
        if not positives:
            raise ConstructionError("SLBF needs at least one positive key")
        if not negatives:
            raise ConstructionError("SLBF needs negative keys to train its model")
        if total_bits <= 0:
            total_bits = max(64, int(round(bits_per_key * len(positives))))
        slbf = cls(total_bits=total_bits, model=model, seed=seed)
        slbf._fit(positives, negatives)
        return slbf

    def _fit(self, positives: List[Key], negatives: List[Key]) -> None:
        self._model.fit(positives, negatives)
        positive_scores = self._model.scores(positives)
        negative_scores = self._model.scores(negatives)
        filter_bits = max(16, self._total_bits - self._model.size_in_bits())

        best = None
        for fraction in _INITIAL_FRACTIONS:
            initial_bits = max(8, int(filter_bits * fraction))
            backup_bits = max(8, filter_bits - initial_bits)
            initial_fpr = _backup_fpr_estimate(len(positives), initial_bits)
            for quantile in _THRESHOLD_QUANTILES:
                threshold = float(np.quantile(negative_scores, quantile))
                model_fpr = float((negative_scores >= threshold).mean())
                missed = int((positive_scores < threshold).sum())
                backup_fpr = _backup_fpr_estimate(missed, backup_bits)
                estimate = initial_fpr * (model_fpr + (1.0 - model_fpr) * backup_fpr)
                if best is None or estimate < best[0]:
                    best = (estimate, initial_bits, backup_bits, threshold)
        assert best is not None
        _, initial_bits, backup_bits, threshold = best
        self._threshold = threshold

        self._initial = self._build_bloom(positives, initial_bits)
        missed = [
            key for key, score in zip(positives, positive_scores) if score < threshold
        ]
        self._backup = self._build_bloom(missed, backup_bits) if missed else None
        self._built = True

    def _build_bloom(self, keys: List[Key], num_bits: int) -> BloomFilter:
        num_bits = max(8, num_bits)
        bits_per_key = num_bits / max(1, len(keys))
        num_hashes = optimal_num_hashes(bits_per_key)
        family = DoubleHashFamily(size=max(1, num_hashes), primitive="xxhash", seed=self._seed)
        return BloomFilter.from_keys(
            keys, num_bits=num_bits, num_hashes=num_hashes, family=family
        )

    # ------------------------------------------------------------------ #
    # Queries and accounting
    # ------------------------------------------------------------------ #
    def contains(self, key: Key) -> bool:
        """Initial filter, then classifier, then backup filter."""
        if not self._built:
            raise ConstructionError("SandwichedLearnedBloomFilter.build must be called first")
        if self._initial is not None and not self._initial.contains(key):
            return False
        if self._model.score(key) >= self._threshold:
            return True
        if self._backup is None:
            return False
        return self._backup.contains(key)

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def _contains_batch(self, batch):
        """Batch form of :meth:`contains`: initial filter, model, backup.

        Each stage only processes the keys still undecided by the previous
        one, so a batch pays the (comparatively expensive) model scoring only
        for keys that survive the initial vectorized Bloom round.
        """
        if not self._built:
            raise ConstructionError("SandwichedLearnedBloomFilter.build must be called first")
        answers = np.zeros(len(batch), dtype=bool)
        if self._initial is not None:
            passed = np.flatnonzero(self._initial._contains_batch(batch))
            if not passed.size:
                return answers
            survivors = batch.take(passed)
        else:
            passed = np.arange(len(batch))
            survivors = batch
        accepted = self._model.scores(survivors.keys) >= self._threshold
        answers[passed] = accepted
        if self._backup is not None:
            below = np.flatnonzero(~accepted)
            if below.size:
                answers[passed[below]] = self._backup._contains_batch(survivors.take(below))
        return answers

    @property
    def threshold(self) -> float:
        """The score threshold τ selected at build time."""
        return self._threshold

    @property
    def model(self) -> KeyScoreModel:
        """The trained scoring model."""
        return self._model

    @property
    def initial(self) -> Optional[BloomFilter]:
        """The initial (pre-model) Bloom filter."""
        return self._initial

    @property
    def backup(self) -> Optional[BloomFilter]:
        """The backup (post-model) Bloom filter."""
        return self._backup

    def size_in_bits(self) -> int:
        """Serialized size: model + initial filter + backup filter."""
        initial = self._initial.size_in_bits() if self._initial else 0
        backup = self._backup.size_in_bits() if self._backup else 0
        return self._model.size_in_bits() + initial + backup

    def to_frame(self) -> bytes:
        """Serialize the whole sandwich (model + both filters) to one codec frame."""
        from repro.service import codec

        return codec.dumps(self)

    @classmethod
    def from_frame(cls, data: bytes) -> "SandwichedLearnedBloomFilter":
        """Revive a filter from a frame written by :meth:`to_frame`."""
        from repro.service import codec

        return codec.loads_as(data, cls)

    def size_in_bytes(self) -> int:
        """Serialized size in bytes (rounded up)."""
        return (self.size_in_bits() + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SandwichedLearnedBloomFilter(total_bits={self._total_bits}, "
            f"threshold={self._threshold:.3f})"
        )
