"""A from-scratch key-scoring classifier used by the learned-filter baselines.

The model is a logistic regression over hashed character n-gram features
(feature hashing into a fixed-width dense vector), trained with full-batch
gradient descent in numpy.  It fills the architectural role of the paper's
GRU / MLP classifiers: it maps any key to a score in ``[0, 1]`` where higher
means "more likely to be a positive key", it has a fixed serialized size that
is charged against the filter's space budget, and its accuracy depends on how
much learnable structure the key schema has (good on the Shalla-like URLs,
near-random on the YCSB-like keys).
"""

from __future__ import annotations

from typing import List, Sequence

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    np = None

from repro.errors import ConfigurationError
from repro.hashing.base import Key, normalize_key

_FNV_PRIME = 0x100000001B3
_FNV_OFFSET = 0xCBF29CE484222325
_MASK64 = (1 << 64) - 1


def _ngram_indices(data: bytes, num_features: int, ngram_sizes: Sequence[int]) -> List[int]:
    """Feature-hash the byte n-grams of ``data`` into ``[0, num_features)``."""
    indices: List[int] = []
    for size in ngram_sizes:
        if len(data) < size:
            continue
        for start in range(len(data) - size + 1):
            value = _FNV_OFFSET ^ size
            for byte in data[start : start + size]:
                value ^= byte
                value = (value * _FNV_PRIME) & _MASK64
            indices.append(value % num_features)
    if not indices:
        indices.append(len(data) % num_features)
    return indices


class KeyScoreModel:
    """Logistic regression over hashed character n-grams.

    Args:
        num_features: Width of the hashed feature vector (model capacity and
            serialized size are proportional to it).
        ngram_sizes: Byte n-gram lengths to extract.
        learning_rate: Gradient-descent step size.
        epochs: Number of full-batch passes.
        seed: Weight-initialisation seed.
        weight_bits: Bits charged per weight when accounting model size
            (32 matches a float32 export).
    """

    def __init__(
        self,
        num_features: int = 256,
        ngram_sizes: Sequence[int] = (2, 3),
        learning_rate: float = 0.5,
        epochs: int = 60,
        seed: int = 1,
        weight_bits: int = 32,
    ) -> None:
        if np is None:
            raise ConfigurationError(
                "KeyScoreModel requires numpy; the learned baselines have no "
                "scalar fallback"
            )
        if num_features < 8:
            raise ConfigurationError("num_features must be at least 8")
        if not ngram_sizes:
            raise ConfigurationError("ngram_sizes must not be empty")
        if epochs < 1:
            raise ConfigurationError("epochs must be at least 1")
        self._num_features = num_features
        self._ngram_sizes = tuple(ngram_sizes)
        self._learning_rate = learning_rate
        self._epochs = epochs
        self._seed = seed
        self._weight_bits = weight_bits
        self._weights = np.zeros(num_features, dtype=np.float64)
        self._bias = 0.0
        self._trained = False

    # ------------------------------------------------------------------ #
    # Feature extraction
    # ------------------------------------------------------------------ #
    def _featurize(self, keys: Sequence[Key]) -> np.ndarray:
        matrix = np.zeros((len(keys), self._num_features), dtype=np.float64)
        for row, key in enumerate(keys):
            data = normalize_key(key)
            for index in _ngram_indices(data, self._num_features, self._ngram_sizes):
                matrix[row, index] += 1.0
        # L2-normalise rows so long keys do not dominate the gradients.
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return matrix / norms

    # ------------------------------------------------------------------ #
    # Training and scoring
    # ------------------------------------------------------------------ #
    def fit(self, positives: Sequence[Key], negatives: Sequence[Key]) -> "KeyScoreModel":
        """Train on ``positives`` (label 1) vs ``negatives`` (label 0)."""
        positives = list(positives)
        negatives = list(negatives)
        if not positives or not negatives:
            raise ConfigurationError("training needs both positive and negative keys")
        keys = positives + negatives
        labels = np.concatenate(
            [np.ones(len(positives)), np.zeros(len(negatives))]
        )
        features = self._featurize(keys)
        rng = np.random.default_rng(self._seed)
        self._weights = rng.normal(0.0, 0.01, self._num_features)
        self._bias = 0.0
        count = len(keys)
        for _ in range(self._epochs):
            logits = features @ self._weights + self._bias
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            error = probabilities - labels
            gradient = features.T @ error / count
            self._weights -= self._learning_rate * gradient
            self._bias -= self._learning_rate * float(error.mean())
        self._trained = True
        return self

    def scores(self, keys: Sequence[Key]) -> np.ndarray:
        """Return the score in ``[0, 1]`` for every key, in order."""
        if not len(keys):
            return np.zeros(0)
        features = self._featurize(list(keys))
        logits = features @ self._weights + self._bias
        return 1.0 / (1.0 + np.exp(-logits))

    def score(self, key: Key) -> float:
        """Return the score of a single key."""
        return float(self.scores([key])[0])

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self._trained

    @property
    def num_features(self) -> int:
        """Width of the hashed feature vector."""
        return self._num_features

    def size_in_bits(self) -> int:
        """Serialized model size: one weight per feature plus the bias."""
        return (self._num_features + 1) * self._weight_bits

    def to_frame(self) -> bytes:
        """Serialize the model (weights, bias, hyperparameters) to one codec frame."""
        from repro.service import codec

        return codec.dumps(self)

    @classmethod
    def from_frame(cls, data: bytes) -> "KeyScoreModel":
        """Revive a model from a frame written by :meth:`to_frame`."""
        from repro.service import codec

        return codec.loads_as(data, cls)

    def accuracy(self, positives: Sequence[Key], negatives: Sequence[Key], threshold: float = 0.5) -> float:
        """Classification accuracy at ``threshold`` (diagnostic helper)."""
        pos_scores = self.scores(list(positives))
        neg_scores = self.scores(list(negatives))
        correct = int((pos_scores >= threshold).sum()) + int((neg_scores < threshold).sum())
        total = len(pos_scores) + len(neg_scores)
        return correct / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KeyScoreModel(features={self._num_features}, ngrams={self._ngram_sizes}, "
            f"trained={self._trained})"
        )
