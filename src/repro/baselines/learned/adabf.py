"""Adaptive learned Bloom filter (Ada-BF; Dai & Shrivastava, 2020).

Ada-BF keeps a single Bloom-filter bit array but varies the number of hash
probes per key according to the classifier score: keys the model is confident
about (high score) use few probes, keys it is unsure about use many.  Score
thresholds partition the score range into ``g`` groups with hash counts
``k_max .. k_min`` (the top group uses zero probes, i.e. the model's word is
taken directly).

Because the decision leans heavily on the score distribution, Ada-BF degrades
sharply when the key schema has no learnable structure — the behaviour the
paper highlights on the YCSB dataset.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    np = None

from repro.baselines.learned.model import KeyScoreModel
from repro.core.batch import BatchMembership
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.errors import ConfigurationError, ConstructionError
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily


class AdaptiveLearnedBloomFilter(BatchMembership):
    """Score-bucketed Bloom filter with per-group hash counts.

    Args:
        total_bits: Space budget covering the model and the bit array.
        num_groups: Number of score groups ``g``.
        model: Optional pre-configured (untrained) scoring model.
        seed: Seed for the model and hashing.
    """

    algorithm_name = "Ada-BF"

    def __init__(
        self,
        total_bits: int,
        num_groups: int = 4,
        model: Optional[KeyScoreModel] = None,
        seed: int = 1,
    ) -> None:
        if total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")
        if num_groups < 2:
            raise ConfigurationError("num_groups must be at least 2")
        self._total_bits = total_bits
        self._num_groups = num_groups
        self._model = model if model is not None else KeyScoreModel(seed=seed)
        self._seed = seed
        self._thresholds: List[float] = []
        self._group_hashes: List[int] = []
        self._bloom: Optional[BloomFilter] = None
        self._built = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        positives: Sequence[Key],
        negatives: Sequence[Key],
        costs: Optional[Mapping[Key, float]] = None,
        total_bits: int = 0,
        bits_per_key: float = 10.0,
        num_groups: int = 4,
        model: Optional[KeyScoreModel] = None,
        seed: int = 1,
    ) -> "AdaptiveLearnedBloomFilter":
        """Train the model and build the score-bucketed filter."""
        positives = list(positives)
        negatives = list(negatives)
        if not positives:
            raise ConstructionError("Ada-BF needs at least one positive key")
        if not negatives:
            raise ConstructionError("Ada-BF needs negative keys to train its model")
        if total_bits <= 0:
            total_bits = max(64, int(round(bits_per_key * len(positives))))
        adabf = cls(total_bits=total_bits, num_groups=num_groups, model=model, seed=seed)
        adabf._fit(positives, negatives)
        return adabf

    def _fit(self, positives: List[Key], negatives: List[Key]) -> None:
        self._model.fit(positives, negatives)
        positive_scores = self._model.scores(positives)

        # Group boundaries: quantiles of the positive score distribution so
        # every group holds a comparable share of the positive keys.
        quantiles = np.linspace(0.0, 1.0, self._num_groups + 1)[1:-1]
        self._thresholds = [float(np.quantile(positive_scores, q)) for q in quantiles]

        array_bits = max(16, self._total_bits - self._model.size_in_bits())
        bits_per_key = array_bits / max(1, len(positives))
        base_hashes = optimal_num_hashes(bits_per_key)
        # Hash counts decrease with the score group: least-confident group gets
        # the most probes, most-confident group gets a single probe.
        self._group_hashes = [
            max(1, base_hashes + (self._num_groups // 2) - group)
            for group in range(self._num_groups)
        ]
        max_hashes = max(self._group_hashes)
        family = DoubleHashFamily(size=max_hashes, primitive="xxhash", seed=self._seed)
        self._bloom = BloomFilter(
            num_bits=array_bits, num_hashes=max_hashes, family=family
        )
        # Bulk insert: bucket every positive by score group, then one batch
        # insert per group under that group's prefix selection — the build
        # twin of the grouped probes in `_contains_batch`.
        groups = self._groups_for_scores(positive_scores)
        for group in np.unique(groups):
            members = np.flatnonzero(groups == group)
            selection = list(range(self._group_hashes[int(group)]))
            self._bloom.add_many_with_selection(
                [positives[int(i)] for i in members], selection
            )
        self._built = True

    def _groups_for_scores(self, scores: np.ndarray) -> np.ndarray:
        """Score group of every entry; vector twin of :meth:`_group_of`.

        The thresholds are ascending quantiles, so "count of thresholds ≤
        score" (``searchsorted`` with ``side='right'``) equals the scalar
        walk.
        """
        groups = np.searchsorted(np.asarray(self._thresholds), scores, side="right")
        return np.minimum(groups, self._num_groups - 1)

    def _group_of(self, score: float) -> int:
        group = 0
        for threshold in self._thresholds:
            if score >= threshold:
                group += 1
            else:
                break
        return min(group, self._num_groups - 1)

    # ------------------------------------------------------------------ #
    # Queries and accounting
    # ------------------------------------------------------------------ #
    def contains(self, key: Key) -> bool:
        """Score the key, pick its group's hash count, probe the bit array."""
        if not self._built or self._bloom is None:
            raise ConstructionError("AdaptiveLearnedBloomFilter.build must be called first")
        score = self._model.score(key)
        group = self._group_of(score)
        selection = list(range(self._group_hashes[group]))
        return self._bloom.contains_with_selection(key, selection)

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def _contains_batch(self, batch):
        """Batch form of :meth:`contains`: score, bucket, grouped probes.

        Scores land in groups via one ``searchsorted`` (the thresholds are
        ascending quantiles, so "count of thresholds ≤ score" equals the
        scalar walk), then each group's keys share one vectorized Bloom probe
        under that group's prefix selection.
        """
        if not self._built or self._bloom is None:
            raise ConstructionError("AdaptiveLearnedBloomFilter.build must be called first")
        scores = self._model.scores(batch.keys)
        groups = self._groups_for_scores(scores)
        answers = np.zeros(len(batch), dtype=bool)
        for group in np.unique(groups):
            members = np.flatnonzero(groups == group)
            selection = list(range(self._group_hashes[int(group)]))
            answers[members] = self._bloom._probe_batch(batch.take(members), selection)
        return answers

    @property
    def model(self) -> KeyScoreModel:
        """The trained scoring model."""
        return self._model

    @property
    def thresholds(self) -> List[float]:
        """Score thresholds separating the groups."""
        return list(self._thresholds)

    @property
    def group_hashes(self) -> List[int]:
        """Hash count used by each score group."""
        return list(self._group_hashes)

    def size_in_bits(self) -> int:
        """Serialized size: model plus the shared bit array."""
        bloom = self._bloom.size_in_bits() if self._bloom else 0
        return self._model.size_in_bits() + bloom

    def to_frame(self) -> bytes:
        """Serialize the whole filter (model + grouped bit array) to one codec frame."""
        from repro.service import codec

        return codec.dumps(self)

    @classmethod
    def from_frame(cls, data: bytes) -> "AdaptiveLearnedBloomFilter":
        """Revive a filter from a frame written by :meth:`to_frame`."""
        from repro.service import codec

        return codec.loads_as(data, cls)

    def size_in_bytes(self) -> int:
        """Serialized size in bytes (rounded up)."""
        return (self.size_in_bits() + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveLearnedBloomFilter(total_bits={self._total_bits}, "
            f"groups={self._num_groups})"
        )
