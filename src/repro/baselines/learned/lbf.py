"""Learned Bloom filter (Kraska et al., 2018).

Architecture: a classifier scores the queried key; scores at or above a
threshold ``τ`` are reported positive immediately, scores below ``τ`` fall
through to a *backup* Bloom filter that holds exactly the positive keys the
classifier misses (so the combination never produces a false negative).

The threshold is chosen at build time by sweeping quantiles of the negative
training scores and picking the value that minimises the estimated overall
FPR given the space left for the backup filter — the practical recipe used by
the learned-filter literature when a space budget (rather than a target FPR)
is fixed.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    np = None

from repro.baselines.learned.model import KeyScoreModel
from repro.core.batch import BatchMembership
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.errors import ConfigurationError, ConstructionError
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily

#: Candidate quantiles of the negative score distribution used to pick τ.
_THRESHOLD_QUANTILES = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99)


def _backup_fpr_estimate(num_keys: int, num_bits: int) -> float:
    """Analytic FPR of an optimally-tuned Bloom filter holding ``num_keys``."""
    if num_keys == 0:
        return 0.0
    if num_bits <= 0:
        return 1.0
    bits_per_key = num_bits / num_keys
    k = optimal_num_hashes(bits_per_key)
    return (1.0 - np.exp(-k * num_keys / num_bits)) ** k


class LearnedBloomFilter(BatchMembership):
    """Classifier + backup Bloom filter under a shared space budget.

    Args:
        total_bits: Space budget covering both the serialized model and the
            backup Bloom filter.
        model: Optional pre-configured (untrained) scoring model.
        seed: Seed forwarded to the model and hashing.
    """

    algorithm_name = "LBF"

    def __init__(
        self,
        total_bits: int,
        model: Optional[KeyScoreModel] = None,
        seed: int = 1,
    ) -> None:
        if total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")
        self._total_bits = total_bits
        self._model = model if model is not None else KeyScoreModel(seed=seed)
        self._seed = seed
        self._threshold = 1.0
        self._backup: Optional[BloomFilter] = None
        self._built = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        positives: Sequence[Key],
        negatives: Sequence[Key],
        costs: Optional[Mapping[Key, float]] = None,
        total_bits: int = 0,
        bits_per_key: float = 10.0,
        model: Optional[KeyScoreModel] = None,
        seed: int = 1,
    ) -> "LearnedBloomFilter":
        """Train the model and assemble the filter under the space budget.

        ``costs`` is accepted for interface uniformity with the other filters
        but ignored — LBF is not cost-aware, which is one of the paper's
        points of comparison.
        """
        positives = list(positives)
        negatives = list(negatives)
        if not positives:
            raise ConstructionError("LBF needs at least one positive key")
        if not negatives:
            raise ConstructionError("LBF needs negative keys to train its model")
        if total_bits <= 0:
            total_bits = max(64, int(round(bits_per_key * len(positives))))
        lbf = cls(total_bits=total_bits, model=model, seed=seed)
        lbf._fit(positives, negatives)
        return lbf

    def _fit(self, positives: List[Key], negatives: List[Key]) -> None:
        self._model.fit(positives, negatives)
        positive_scores = self._model.scores(positives)
        negative_scores = self._model.scores(negatives)
        backup_bits = self.backup_bits
        self._threshold = self._choose_threshold(
            positive_scores, negative_scores, backup_bits
        )
        missed = [
            key for key, score in zip(positives, positive_scores) if score < self._threshold
        ]
        self._backup = self._build_backup(missed, backup_bits)
        self._built = True

    def _choose_threshold(
        self,
        positive_scores: np.ndarray,
        negative_scores: np.ndarray,
        backup_bits: int,
    ) -> float:
        best_threshold = float("inf")
        best_estimate = float("inf")
        for quantile in _THRESHOLD_QUANTILES:
            threshold = float(np.quantile(negative_scores, quantile))
            model_fpr = float((negative_scores >= threshold).mean())
            missed = int((positive_scores < threshold).sum())
            backup_fpr = _backup_fpr_estimate(missed, backup_bits)
            estimate = model_fpr + (1.0 - model_fpr) * backup_fpr
            if estimate < best_estimate:
                best_estimate = estimate
                best_threshold = threshold
        return best_threshold

    def _build_backup(self, missed: List[Key], backup_bits: int) -> Optional[BloomFilter]:
        if not missed:
            return None
        backup_bits = max(8, backup_bits)
        bits_per_key = backup_bits / len(missed)
        num_hashes = optimal_num_hashes(bits_per_key)
        family = DoubleHashFamily(size=max(1, num_hashes), primitive="xxhash", seed=self._seed)
        return BloomFilter.from_keys(
            missed, num_bits=backup_bits, num_hashes=num_hashes, family=family
        )

    # ------------------------------------------------------------------ #
    # Queries and accounting
    # ------------------------------------------------------------------ #
    def contains(self, key: Key) -> bool:
        """Score-then-backup membership test (no false negatives)."""
        if not self._built:
            raise ConstructionError("LearnedBloomFilter.build must be called first")
        if self._model.score(key) >= self._threshold:
            return True
        if self._backup is None:
            return False
        return self._backup.contains(key)

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def _contains_batch(self, batch):
        """Batch form of :meth:`contains`: one model pass, one backup probe.

        The classifier already scores whole batches in numpy; the engine adds
        the vectorized backup-Bloom round over just the below-threshold keys.
        """
        if not self._built:
            raise ConstructionError("LearnedBloomFilter.build must be called first")
        answers = self._model.scores(batch.keys) >= self._threshold
        if self._backup is None:
            return answers
        below = np.flatnonzero(~answers)
        if below.size:
            answers[below] = self._backup._contains_batch(batch.take(below))
        return answers

    @property
    def threshold(self) -> float:
        """The score threshold τ selected at build time."""
        return self._threshold

    @property
    def model(self) -> KeyScoreModel:
        """The trained scoring model."""
        return self._model

    @property
    def backup(self) -> Optional[BloomFilter]:
        """The backup Bloom filter (None when the model catches every positive)."""
        return self._backup

    @property
    def backup_bits(self) -> int:
        """Bits left for the backup filter after charging the model."""
        return max(8, self._total_bits - self._model.size_in_bits())

    def size_in_bits(self) -> int:
        """Serialized size: model plus backup filter."""
        backup = self._backup.size_in_bits() if self._backup else 0
        return self._model.size_in_bits() + backup

    def to_frame(self) -> bytes:
        """Serialize the whole filter (model + backup) to one codec frame."""
        from repro.service import codec

        return codec.dumps(self)

    @classmethod
    def from_frame(cls, data: bytes) -> "LearnedBloomFilter":
        """Revive a filter from a frame written by :meth:`to_frame`."""
        from repro.service import codec

        return codec.loads_as(data, cls)

    def size_in_bytes(self) -> int:
        """Serialized size in bytes (rounded up)."""
        return (self.size_in_bits() + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LearnedBloomFilter(total_bits={self._total_bits}, "
            f"threshold={self._threshold:.3f})"
        )
