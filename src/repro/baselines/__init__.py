"""Baseline filters the paper compares HABF against (Section V-A).

Non-learned baselines:

* :class:`~repro.baselines.xor_filter.XorFilter` — Graf & Lemire's Xor filter.
* :class:`~repro.baselines.weighted_bloom.WeightedBloomFilter` — Bruck et al.'s
  cost-aware Bloom filter with a cached cost list.

Learned baselines (Kraska et al. LBF, Mitzenmacher SLBF, Dai & Shrivastava
Ada-BF), built on a from-scratch numpy classifier:

* :class:`~repro.baselines.learned.lbf.LearnedBloomFilter`
* :class:`~repro.baselines.learned.slbf.SandwichedLearnedBloomFilter`
* :class:`~repro.baselines.learned.adabf.AdaptiveLearnedBloomFilter`
"""

from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.baselines.xor_filter import XorFilter
from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
from repro.baselines.learned.lbf import LearnedBloomFilter
from repro.baselines.learned.model import KeyScoreModel
from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter

__all__ = [
    "XorFilter",
    "WeightedBloomFilter",
    "KeyScoreModel",
    "LearnedBloomFilter",
    "SandwichedLearnedBloomFilter",
    "AdaptiveLearnedBloomFilter",
]
