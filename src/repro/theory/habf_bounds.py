"""The paper's theoretical bounds for HABF (Section IV).

Implemented formulas:

* **Theorem 4.1** — the expected probability that a unit touched by a collision
  key is singly mapped: ``E(P_ξ) > (k/b) / (e^{k/b} - 1)``.
* **Equation 11** — the probability that an adjusted selection can still be
  inserted into a HashExpressor that already holds ``t`` keys:
  ``P_s(t) > (1 - (kt + k)/ω)^k``.
* **Theorem 4.2 / Equation 12** — a lower bound on the expected number of
  collision keys TPJO optimises:
  ``E(t) > T·P'_c·(ω - k²) / (ω + T·P'_c·k²)``.
* **Equation 19** — the upper bound on the optimised Bloom filter's expected
  FPR, which Fig. 8 of the paper verifies experimentally:
  ``E(F*_bf) < E(F_bf) - T·P'_c·(ω - k²) / (|O|·(ω + T·P'_c·k²))``.

The paper defers the exact expression for ``P'_c`` (the probability that a
positive key's selection can be adjusted without creating a new conflict) to
an appendix that is not part of the published text.  We use a conservative
*lower bound*: the probability that at least one of the ``|H| - k`` candidate
replacement hashes lands on a bit that is already set (such a replacement is
always conflict-free).  A lower bound on ``P'_c`` lowers the bound on ``E(t)``
and therefore *raises* the Eq. 19 FPR bound, keeping it a valid upper bound —
exactly the property the Fig. 8 verification needs.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.theory.bloom_math import bloom_fpr


def expected_single_mapping_probability(bits_per_key: float, num_hashes: int) -> float:
    """Theorem 4.1: lower bound on ``E(P_ξ)``, the single-mapping probability."""
    if bits_per_key <= 0:
        raise ConfigurationError("bits_per_key must be positive")
    if num_hashes < 1:
        raise ConfigurationError("num_hashes must be at least 1")
    ratio = num_hashes / bits_per_key
    return ratio / (math.exp(ratio) - 1.0)


def expressor_insertion_probability(num_hashes: int, num_cells: int, inserted: int) -> float:
    """Equation 11: lower bound on ``P_s(t)`` after ``inserted`` keys are stored."""
    if num_cells <= 0:
        raise ConfigurationError("num_cells must be positive")
    if num_hashes < 1:
        raise ConfigurationError("num_hashes must be at least 1")
    if inserted < 0:
        raise ConfigurationError("inserted must be non-negative")
    load = (num_hashes * inserted + num_hashes) / num_cells
    return max(0.0, 1.0 - load) ** num_hashes


def adjustment_probability_lower_bound(
    bits_per_key: float, num_hashes: int, family_size: int
) -> float:
    """Conservative lower bound on ``P'_c`` (see module docstring).

    The probability that a single candidate replacement hash maps the adjusted
    key onto an already-set bit is approximately the Bloom filter's fill ratio
    ``1 - e^{-k/b}``; with ``|H| - k`` independent candidates the probability
    that at least one is usable is ``1 - (e^{-k/b})^{|H|-k}``.
    """
    if family_size <= num_hashes:
        return 0.0
    fill = 1.0 - math.exp(-num_hashes / bits_per_key)
    candidates = family_size - num_hashes
    return 1.0 - (1.0 - fill) ** candidates


def expected_optimized_collisions_lower_bound(
    num_collisions: int,
    adjustment_probability: float,
    num_hashes: int,
    num_cells: int,
) -> float:
    """Theorem 4.2 / Eq. 12: lower bound on the expected number optimised."""
    if num_collisions < 0:
        raise ConfigurationError("num_collisions must be non-negative")
    if not 0.0 <= adjustment_probability <= 1.0:
        raise ConfigurationError("adjustment_probability must be in [0, 1]")
    if num_cells <= 0:
        raise ConfigurationError("num_cells must be positive")
    k_sq = num_hashes * num_hashes
    if num_cells <= k_sq:
        return 0.0
    numerator = num_collisions * adjustment_probability * (num_cells - k_sq)
    denominator = num_cells + num_collisions * adjustment_probability * k_sq
    return numerator / denominator


def habf_fpr_bound(
    bits_per_key: float,
    num_hashes: int,
    num_negatives: int,
    num_cells: int,
    family_size: int = 22,
) -> float:
    """Equation 19: upper bound on the optimised Bloom filter's expected FPR.

    Args:
        bits_per_key: Bits-per-key of the *Bloom-filter part* of the HABF.
        num_hashes: Hash functions per key ``k``.
        num_negatives: Size of the known negative set ``|O|``.
        num_cells: HashExpressor size ``ω``.
        family_size: Size of the global hash family ``|H|``.
    """
    if num_negatives <= 0:
        raise ConfigurationError("num_negatives must be positive")
    base_fpr = bloom_fpr(bits_per_key, num_hashes)
    expected_collisions = base_fpr * num_negatives
    p_c = adjustment_probability_lower_bound(bits_per_key, num_hashes, family_size)
    optimized = expected_optimized_collisions_lower_bound(
        num_collisions=int(expected_collisions),
        adjustment_probability=p_c,
        num_hashes=num_hashes,
        num_cells=num_cells,
    )
    bound = base_fpr - optimized / num_negatives
    return max(0.0, min(1.0, bound))


def habf_fpr_from_components(
    optimized_bloom_fpr: float, expressor_cells: int, inserted_keys: int
) -> float:
    """Equation 2 composed with the ``F_h ≤ t/ω`` bound.

    ``F_habf ≤ (ω + t)/ω · F*_bf`` — the overall HABF FPR given the optimised
    Bloom filter's FPR and the HashExpressor occupancy.
    """
    if expressor_cells <= 0:
        raise ConfigurationError("expressor_cells must be positive")
    if inserted_keys < 0:
        raise ConfigurationError("inserted_keys must be non-negative")
    if not 0.0 <= optimized_bloom_fpr <= 1.0:
        raise ConfigurationError("optimized_bloom_fpr must be in [0, 1]")
    factor = (expressor_cells + inserted_keys) / expressor_cells
    return min(1.0, factor * optimized_bloom_fpr)
