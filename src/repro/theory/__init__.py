"""Analytic formulas and the paper's theoretical bounds (Section IV).

* :mod:`repro.theory.bloom_math` — textbook Bloom-filter FPR math.
* :mod:`repro.theory.habf_bounds` — Theorem 4.1, Theorem 4.2 and the expected
  false-positive-rate bound of Equation 19, which the Fig. 8 experiment checks
  against measured values.
"""

from repro.theory.bloom_math import bloom_fpr, min_fpr_for_bits_per_key, optimal_k
from repro.theory.habf_bounds import (
    expected_optimized_collisions_lower_bound,
    expected_single_mapping_probability,
    expressor_insertion_probability,
    habf_fpr_bound,
    habf_fpr_from_components,
)

__all__ = [
    "bloom_fpr",
    "optimal_k",
    "min_fpr_for_bits_per_key",
    "expected_single_mapping_probability",
    "expressor_insertion_probability",
    "expected_optimized_collisions_lower_bound",
    "habf_fpr_bound",
    "habf_fpr_from_components",
]
