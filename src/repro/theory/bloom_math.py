"""Textbook Bloom-filter math used throughout the experiments and bounds."""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def bloom_fpr(bits_per_key: float, num_hashes: int) -> float:
    """Analytic FPR ``(1 - e^{-k/b})^k`` for bits-per-key ``b`` and ``k`` hashes."""
    if bits_per_key <= 0:
        raise ConfigurationError("bits_per_key must be positive")
    if num_hashes < 1:
        raise ConfigurationError("num_hashes must be at least 1")
    return (1.0 - math.exp(-num_hashes / bits_per_key)) ** num_hashes


def optimal_k(bits_per_key: float) -> int:
    """FPR-minimising hash count ``k = ln2 · b`` (rounded, at least 1)."""
    if bits_per_key <= 0:
        raise ConfigurationError("bits_per_key must be positive")
    return max(1, int(round(math.log(2) * bits_per_key)))


def min_fpr_for_bits_per_key(bits_per_key: float) -> float:
    """Minimum achievable FPR ``0.6185^b`` at the optimal hash count."""
    if bits_per_key <= 0:
        raise ConfigurationError("bits_per_key must be positive")
    return 0.6185 ** bits_per_key
