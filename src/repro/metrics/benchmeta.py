"""Environment metadata stamped into every ``BENCH_*.json`` report.

Benchmark numbers are only comparable between runs that saw similar iron:
a 1-core container and an 8-core CI runner produce legitimately different
throughput, and the multiproc serving benchmark scales with ``cpu_count``
outright.  Every bench writer merges :func:`bench_environment` into its
report so a reader (or a later PR diffing the trend) can tell whether a
regression is code or hardware.
"""

from __future__ import annotations

import os
import platform
from typing import Dict, Optional


def bench_environment(**extra: object) -> Dict[str, object]:
    """The environment fields every benchmark report carries.

    Returns plain JSON-serializable values: ``python`` (interpreter
    version), ``platform`` (e.g. ``Linux-6.18``-style), ``machine``
    (architecture), ``cpu_count`` (``os.cpu_count()``, ``None`` when the
    platform cannot say), and ``numpy`` (version string or ``None`` when
    the optional dependency is absent).  Keyword arguments are merged in —
    the scenario benchmark stamps its replay ``seed`` this way so the
    report records everything needed to reproduce it.
    """
    numpy_version: Optional[str] = None
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is present in CI
        pass
    environment: Dict[str, object] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }
    environment.update(extra)
    return environment
