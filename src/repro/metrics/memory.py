"""Construction memory measurement (paper Section V-J, Fig. 15).

The paper reports the CPU memory footprint during filter construction.  Here
we use :mod:`tracemalloc` to capture the *peak Python-heap allocation* while a
build callable runs, which captures the same qualitative effect the paper
describes: HABF needs extra construction memory for the negative keys and the
two runtime indexes ``V`` and ``Γ``, learned filters need much more for their
feature matrices, and the plain Bloom filter needs almost nothing beyond its
bit array.
"""

from __future__ import annotations

import gc
import os
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

FilterT = TypeVar("FilterT")


def process_rss_bytes() -> Optional[int]:
    """Resident set size of this process in bytes, or ``None`` when unknowable.

    Reads ``/proc/self/statm`` (current RSS, Linux); falls back to
    ``resource.getrusage`` — whose ``ru_maxrss`` is the *peak* RSS, in KiB on
    Linux and bytes on macOS — when procfs is unavailable.  Used by the
    serving stats (``ServiceStats.rss_bytes``) and the
    ``repro_process_resident_bytes`` gauge; telemetry wants a cheap honest
    number, not a portable exact one, so the fallback's peak-vs-current
    difference is acceptable and documented.
    """
    try:
        with open("/proc/self/statm", "rb") as statm:
            fields = statm.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak) if sys.platform == "darwin" else int(peak) * 1024
    except Exception:
        return None


@dataclass(frozen=True)
class MemoryResult:
    """Peak heap allocation observed while a build callable ran.

    Attributes:
        peak_bytes: Peak allocated bytes above the pre-build baseline.
        current_bytes: Bytes still allocated when the build returned (the
            retained footprint of the built structure and anything it keeps).
    """

    peak_bytes: int
    current_bytes: int

    @property
    def peak_megabytes(self) -> float:
        """Peak allocation in MiB."""
        return self.peak_bytes / (1024 * 1024)


def measure_construction_memory(build: Callable[[], FilterT]) -> Tuple[FilterT, MemoryResult]:
    """Run ``build()`` under tracemalloc and report its peak heap usage."""
    gc.collect()
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    baseline, _ = tracemalloc.get_traced_memory()
    try:
        result = build()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, MemoryResult(
        peak_bytes=max(0, peak - baseline),
        current_bytes=max(0, current - baseline),
    )
