"""Measurement utilities: weighted FPR, timing and memory accounting.

These implement the four metrics of the paper's Section V-B:

1. weighted FPR (Equation 1/20) — :mod:`repro.metrics.fpr`;
2. construction time per key — :mod:`repro.metrics.timing`;
3. query latency per key — :mod:`repro.metrics.timing`;
4. construction memory consumption — :mod:`repro.metrics.memory`.
"""

from repro.metrics.benchmeta import bench_environment
from repro.metrics.fpr import (
    EvaluationResult,
    evaluate_filter,
    false_positive_rate,
    membership_flags,
    weighted_fpr,
)
from repro.metrics.memory import measure_construction_memory, process_rss_bytes
from repro.metrics.timing import (
    LatencyPercentiles,
    TimingResult,
    histogram_quantile,
    latency_percentiles,
    percentile,
    time_construction,
    time_construction_best_of,
    time_queries,
    time_queries_batch,
)

__all__ = [
    "bench_environment",
    "EvaluationResult",
    "evaluate_filter",
    "false_positive_rate",
    "membership_flags",
    "weighted_fpr",
    "TimingResult",
    "LatencyPercentiles",
    "histogram_quantile",
    "latency_percentiles",
    "percentile",
    "time_construction",
    "time_construction_best_of",
    "time_queries",
    "time_queries_batch",
    "measure_construction_memory",
    "process_rss_bytes",
]
