"""False-positive-rate metrics, including the paper's weighted FPR (Eq. 1/20).

``WeightedFPR = Σ_{e ∈ O'} Θ(e) / Σ_{e ∈ O} Θ(e)`` where ``O'`` is the subset
of negative keys the filter misidentifies as positive.  With uniform costs the
weighted FPR equals the ordinary FPR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.hashing.base import Key
from repro.workloads.dataset import MembershipDataset


class MembershipFilter(Protocol):
    """Anything with a ``contains(key) -> bool`` method (all filters here)."""

    def contains(self, key: Key) -> bool:  # pragma: no cover - protocol
        ...


def membership_flags(filter_obj: MembershipFilter, keys: Sequence[Key]) -> Sequence[bool]:
    """Membership verdict per key, preferring the filter's batch engine.

    One ``contains_many`` call when the filter exposes it (every filter in
    this library does, via :class:`~repro.core.batch.BatchMembership`), a
    scalar ``contains`` loop otherwise — so evaluation over large negative
    sets runs at engine speed instead of a Python comprehension per key.
    """
    contains_many = getattr(filter_obj, "contains_many", None)
    if contains_many is not None:
        return contains_many(keys)
    return [filter_obj.contains(key) for key in keys]


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy evaluation of one filter on one dataset.

    Attributes:
        weighted_fpr: Cost-weighted false positive rate (Eq. 20).
        fpr: Unweighted false positive rate.
        fnr: False negative rate (must be 0 for every filter in this repo).
        num_false_positives: Count of misidentified negative keys.
        num_false_negatives: Count of missed positive keys.
        num_negatives: Number of negative keys evaluated.
        num_positives: Number of positive keys evaluated.
    """

    weighted_fpr: float
    fpr: float
    fnr: float
    num_false_positives: int
    num_false_negatives: int
    num_negatives: int
    num_positives: int


def false_positive_rate(filter_obj: MembershipFilter, negatives: Sequence[Key]) -> float:
    """Fraction of ``negatives`` the filter reports as members.

    Routed through ``contains_many`` when the filter exposes it (one engine
    call) rather than a scalar ``contains`` comprehension.
    """
    if not negatives:
        return 0.0
    return sum(membership_flags(filter_obj, negatives)) / len(negatives)


def weighted_fpr(
    filter_obj: MembershipFilter,
    negatives: Sequence[Key],
    costs: Optional[Mapping[Key, float]] = None,
) -> float:
    """Cost-weighted FPR over ``negatives`` (Eq. 1 / Eq. 20 of the paper)."""
    if not negatives:
        return 0.0
    costs = costs or {}
    total_cost = 0.0
    fp_cost = 0.0
    for key, flagged in zip(negatives, membership_flags(filter_obj, negatives)):
        cost = float(costs.get(key, 1.0))
        if cost < 0:
            raise ConfigurationError("costs must be non-negative")
        total_cost += cost
        if flagged:
            fp_cost += cost
    if total_cost == 0.0:
        return 0.0
    return fp_cost / total_cost


def evaluate_filter(
    filter_obj: MembershipFilter,
    dataset: MembershipDataset,
    negatives: Optional[Sequence[Key]] = None,
) -> EvaluationResult:
    """Full accuracy evaluation of a filter on a dataset.

    Args:
        filter_obj: The filter to evaluate.
        dataset: Dataset providing positives, negatives and costs.
        negatives: Optional override of the negative keys to test (e.g. a
            held-out split); defaults to the dataset's negative set.
    """
    negative_keys = list(negatives) if negatives is not None else dataset.negatives
    total_cost = 0.0
    fp_cost = 0.0
    false_positives = 0
    # One batch verdict per key set (instead of re-driving scalar `contains`
    # across two separate comprehensions); costs are folded in afterwards.
    for key, flagged in zip(negative_keys, membership_flags(filter_obj, negative_keys)):
        cost = dataset.cost_of(key)
        total_cost += cost
        if flagged:
            false_positives += 1
            fp_cost += cost
    false_negatives = sum(
        1 for flagged in membership_flags(filter_obj, dataset.positives) if not flagged
    )
    num_negatives = len(negative_keys)
    num_positives = dataset.num_positives
    return EvaluationResult(
        weighted_fpr=(fp_cost / total_cost) if total_cost else 0.0,
        fpr=(false_positives / num_negatives) if num_negatives else 0.0,
        fnr=(false_negatives / num_positives) if num_positives else 0.0,
        num_false_positives=false_positives,
        num_false_negatives=false_negatives,
        num_negatives=num_negatives,
        num_positives=num_positives,
    )
