"""Construction-time and query-latency measurement (paper Section V-I).

The paper reports nanoseconds per key for construction and for queries.  The
helpers here time an arbitrary build callable and an arbitrary filter's
``contains`` over a workload, and normalise to per-key figures so the
experiment harness can print the same rows the paper's Fig. 12 plots.
Absolute values are not comparable to the paper's C++ numbers (see DESIGN.md
§4); the ratios between methods are the reproduction target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.hashing.base import Key

FilterT = TypeVar("FilterT")


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile of ``samples`` (linear interpolation).

    ``q`` is given in percent (0–100).  Matches ``numpy.percentile`` with the
    default (linear) interpolation so reported p50/p95/p99 figures line up with
    what standard tooling would compute, without requiring numpy.
    """
    if not samples:
        raise ConfigurationError("cannot take a percentile of an empty sample set")
    return _percentile_of_sorted(sorted(samples), q)


def histogram_quantile(
    q: float, bounds: Sequence[float], counts: Sequence[int]
) -> float:
    """Estimate the ``q``-quantile (0–1) from per-bucket histogram counts.

    ``bounds`` are the buckets' upper edges in increasing order, ending with
    ``+inf``; ``counts`` holds the observations per bucket (same length).
    The estimate interpolates linearly inside the target bucket — the same
    model ``histogram_quantile()`` uses in PromQL — so the obs layer's
    :meth:`~repro.obs.core.Histogram.approx_quantile` and a Prometheus
    server looking at the exported buckets agree.  A quantile landing in the
    ``+inf`` bucket reports the last finite edge (the histogram cannot see
    further).
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    if len(bounds) != len(counts) or not bounds:
        raise ConfigurationError("bounds and counts must be equally sized and non-empty")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, (bound, count) in enumerate(zip(bounds, counts)):
        cumulative += count
        if cumulative >= rank:
            if bound == float("inf"):
                # Everything above the last finite edge is indistinguishable.
                return bounds[index - 1] if index else 0.0
            lower = bounds[index - 1] if index else 0.0
            if count == 0:
                return bound
            fraction = (rank - (cumulative - count)) / count
            return lower + (bound - lower) * fraction
    return bounds[-2] if len(bounds) > 1 else bounds[-1]  # pragma: no cover


@dataclass(frozen=True)
class LatencyPercentiles:
    """p50/p95/p99 summary of a latency sample set, in seconds.

    Attributes:
        count: Number of samples summarised.
        p50: Median latency.
        p95: 95th-percentile latency.
        p99: 99th-percentile latency.
        mean: Arithmetic mean latency.
    """

    count: int
    p50: float
    p95: float
    p99: float
    mean: float

    def scaled(self, factor: float) -> "LatencyPercentiles":
        """Return a copy with every latency multiplied by ``factor``
        (e.g. ``1e6`` to report microseconds)."""
        return LatencyPercentiles(
            count=self.count,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            mean=self.mean * factor,
        )


def latency_percentiles(samples: Sequence[float]) -> LatencyPercentiles:
    """Summarise raw latency samples (seconds) into p50/p95/p99 figures."""
    if not samples:
        raise ConfigurationError("cannot summarise an empty latency sample set")
    ordered = sorted(samples)
    return LatencyPercentiles(
        count=len(ordered),
        p50=_percentile_of_sorted(ordered, 50.0),
        p95=_percentile_of_sorted(ordered, 95.0),
        p99=_percentile_of_sorted(ordered, 99.0),
        mean=sum(ordered) / len(ordered),
    )


class Stopwatch:
    """Context manager measuring the wall-clock duration of its block.

    The seconds accumulate into :attr:`seconds` when the block exits (also
    on exceptions, so a failed rebuild still reports how long it ran)::

        with Stopwatch() as watch:
            do_work()
        record(watch.seconds)

    Used by the serving layer to feed rebuild-latency percentiles and by the
    rebuild benchmark; re-entering the same instance restarts the
    measurement.
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.seconds = time.perf_counter() - self._start
            self._start = None


@dataclass(frozen=True)
class TimingResult:
    """A wall-clock measurement normalised per key.

    Attributes:
        total_seconds: Total elapsed wall-clock time.
        num_keys: Number of keys processed.
        ns_per_key: Elapsed time divided by key count, in nanoseconds.
    """

    total_seconds: float
    num_keys: int

    @property
    def ns_per_key(self) -> float:
        """Nanoseconds per processed key."""
        if self.num_keys == 0:
            return 0.0
        return self.total_seconds * 1e9 / self.num_keys


def time_construction(
    build: Callable[[], FilterT], num_keys: int
) -> Tuple[FilterT, TimingResult]:
    """Time ``build()`` and normalise by ``num_keys`` (per-key construction time)."""
    if num_keys <= 0:
        raise ConfigurationError("num_keys must be positive")
    start = time.perf_counter()
    result = build()
    elapsed = time.perf_counter() - start
    return result, TimingResult(total_seconds=elapsed, num_keys=num_keys)


def time_construction_best_of(
    build: Callable[[], FilterT], num_keys: int, rounds: int = 3
) -> Tuple[FilterT, TimingResult]:
    """Best-of-``rounds`` construction timing (min elapsed across builds).

    Engine-backed builds finish in milliseconds at test scale, where one
    scheduler stall can dominate a single measurement; taking the minimum of
    several builds is how the timing gates (f-HABF vs HABF, the build
    benchmark) stay robust on noisy runners.  Returns the last built filter
    and the fastest round's :class:`TimingResult`.
    """
    if rounds < 1:
        raise ConfigurationError("rounds must be at least 1")
    best: TimingResult = None  # type: ignore[assignment]
    built: FilterT = None  # type: ignore[assignment]
    for _ in range(rounds):
        built, timing = time_construction(build, num_keys)
        if best is None or timing.total_seconds < best.total_seconds:
            best = timing
    return built, best


def time_queries(filter_obj, keys: Sequence[Key], repeats: int = 1) -> TimingResult:
    """Time ``filter_obj.contains`` over ``keys`` (optionally repeated)."""
    if not keys:
        raise ConfigurationError("keys must not be empty")
    if repeats < 1:
        raise ConfigurationError("repeats must be at least 1")
    contains = filter_obj.contains
    start = time.perf_counter()
    for _ in range(repeats):
        for key in keys:
            contains(key)
    elapsed = time.perf_counter() - start
    return TimingResult(total_seconds=elapsed, num_keys=len(keys) * repeats)


def time_queries_batch(
    filter_obj,
    keys: Sequence[Key],
    batch_size: int = 0,
    repeats: int = 1,
) -> TimingResult:
    """Time ``filter_obj.contains_many`` over ``keys`` (optionally chunked).

    The batch-engine counterpart of :func:`time_queries`: the same keys, the
    same per-key normalisation, but answered through the filter's batch
    interface.  ``batch_size`` of 0 sends all keys as one batch; a positive
    value splits the workload into fixed-size chunks, which is how a serving
    front-end would drive the engine.
    """
    if not keys:
        raise ConfigurationError("keys must not be empty")
    if repeats < 1:
        raise ConfigurationError("repeats must be at least 1")
    if batch_size < 0:
        raise ConfigurationError("batch_size must be non-negative")
    keys = list(keys)
    chunks = (
        [keys]
        if batch_size == 0
        else [keys[start : start + batch_size] for start in range(0, len(keys), batch_size)]
    )
    contains_many = filter_obj.contains_many
    start = time.perf_counter()
    for _ in range(repeats):
        for chunk in chunks:
            contains_many(chunk)
    elapsed = time.perf_counter() - start
    return TimingResult(total_seconds=elapsed, num_keys=len(keys) * repeats)
