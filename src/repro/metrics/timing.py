"""Construction-time and query-latency measurement (paper Section V-I).

The paper reports nanoseconds per key for construction and for queries.  The
helpers here time an arbitrary build callable and an arbitrary filter's
``contains`` over a workload, and normalise to per-key figures so the
experiment harness can print the same rows the paper's Fig. 12 plots.
Absolute values are not comparable to the paper's C++ numbers (see DESIGN.md
§4); the ratios between methods are the reproduction target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.hashing.base import Key

FilterT = TypeVar("FilterT")


@dataclass(frozen=True)
class TimingResult:
    """A wall-clock measurement normalised per key.

    Attributes:
        total_seconds: Total elapsed wall-clock time.
        num_keys: Number of keys processed.
        ns_per_key: Elapsed time divided by key count, in nanoseconds.
    """

    total_seconds: float
    num_keys: int

    @property
    def ns_per_key(self) -> float:
        """Nanoseconds per processed key."""
        if self.num_keys == 0:
            return 0.0
        return self.total_seconds * 1e9 / self.num_keys


def time_construction(
    build: Callable[[], FilterT], num_keys: int
) -> Tuple[FilterT, TimingResult]:
    """Time ``build()`` and normalise by ``num_keys`` (per-key construction time)."""
    if num_keys <= 0:
        raise ConfigurationError("num_keys must be positive")
    start = time.perf_counter()
    result = build()
    elapsed = time.perf_counter() - start
    return result, TimingResult(total_seconds=elapsed, num_keys=num_keys)


def time_queries(filter_obj, keys: Sequence[Key], repeats: int = 1) -> TimingResult:
    """Time ``filter_obj.contains`` over ``keys`` (optionally repeated)."""
    if not keys:
        raise ConfigurationError("keys must not be empty")
    if repeats < 1:
        raise ConfigurationError("repeats must be at least 1")
    contains = filter_obj.contains
    start = time.perf_counter()
    for _ in range(repeats):
        for key in keys:
            contains(key)
    elapsed = time.perf_counter() - start
    return TimingResult(total_seconds=elapsed, num_keys=len(keys) * repeats)
