"""Registry of filter builders used by every experiment.

Each builder has the uniform signature::

    build(dataset, total_bits, costs, seed) -> filter object

where the returned object supports ``contains(key)`` and ``size_in_bits()``.
Space accounting is head-to-head as in the paper: every method receives the
same total bit budget (model bits included for the learned filters, Bloom +
HashExpressor for HABF, fingerprint slots for Xor).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
from repro.baselines.learned.lbf import LearnedBloomFilter
from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter
from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.baselines.xor_filter import XorFilter, fingerprint_bits_for_budget
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.habf import HABF, FastHABF
from repro.core.params import HABFParams
from repro.errors import ConfigurationError
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily
from repro.workloads.dataset import MembershipDataset

FilterBuilder = Callable[[MembershipDataset, int, Optional[Mapping[Key, float]], int], object]


def _habf_params(total_bits: int, seed: int) -> HABFParams:
    return HABFParams(total_bits=total_bits, k=3, delta=0.25, cell_hash_bits=4, seed=seed)


def _build_habf(dataset, total_bits, costs, seed):
    return HABF.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        params=_habf_params(total_bits, seed),
    )


def _build_fast_habf(dataset, total_bits, costs, seed):
    return FastHABF.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        params=_habf_params(total_bits, seed),
    )


def _build_bloom(dataset, total_bits, costs, seed):
    bits_per_key = total_bits / dataset.num_positives
    k = optimal_num_hashes(bits_per_key)
    return BloomFilter.from_keys(
        dataset.positives, num_bits=total_bits, num_hashes=k
    )


def _build_bloom_double(primitive: str):
    def _build(dataset, total_bits, costs, seed):
        bits_per_key = total_bits / dataset.num_positives
        k = optimal_num_hashes(bits_per_key)
        family = DoubleHashFamily(size=k, primitive=primitive, seed=seed)
        return BloomFilter.from_keys(
            dataset.positives, num_bits=total_bits, num_hashes=k, family=family
        )

    return _build


def _build_xor(dataset, total_bits, costs, seed):
    bits_per_key = total_bits / dataset.num_positives
    fingerprint_bits = min(
        32, fingerprint_bits_for_budget(bits_per_key, dataset.num_positives)
    )
    return XorFilter(dataset.positives, fingerprint_bits=fingerprint_bits, seed=seed)


def _build_wbf(dataset, total_bits, costs, seed):
    return WeightedBloomFilter.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        total_bits=total_bits,
    )


def _build_lbf(dataset, total_bits, costs, seed):
    return LearnedBloomFilter.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        total_bits=total_bits,
        seed=seed,
    )


def _build_slbf(dataset, total_bits, costs, seed):
    return SandwichedLearnedBloomFilter.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        total_bits=total_bits,
        seed=seed,
    )


def _build_adabf(dataset, total_bits, costs, seed):
    return AdaptiveLearnedBloomFilter.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        total_bits=total_bits,
        seed=seed,
    )


#: Algorithm name -> builder, covering every method in the paper's Section V.
FILTER_BUILDERS: Dict[str, FilterBuilder] = {
    "HABF": _build_habf,
    "f-HABF": _build_fast_habf,
    "BF": _build_bloom,
    "BF(City64)": _build_bloom_double("cityhash"),
    "BF(XXH128)": _build_bloom_double("xxhash"),
    "Xor": _build_xor,
    "WBF": _build_wbf,
    "LBF": _build_lbf,
    "SLBF": _build_slbf,
    "Ada-BF": _build_adabf,
}

#: The non-learned comparison set of Figs. 10(a)/(c) and 11(a)/(c).
NON_LEARNED_ALGORITHMS: List[str] = ["HABF", "f-HABF", "BF", "Xor"]

#: The learned comparison set of Figs. 10(b)/(d) and 11(b)/(d).
LEARNED_ALGORITHMS: List[str] = ["HABF", "f-HABF", "LBF", "Ada-BF", "SLBF"]


def list_algorithms() -> List[str]:
    """Return all registered algorithm names."""
    return list(FILTER_BUILDERS)


def build_filter(
    name: str,
    dataset: MembershipDataset,
    total_bits: int,
    costs: Optional[Mapping[Key, float]] = None,
    seed: int = 1,
):
    """Build the named filter on ``dataset`` under a ``total_bits`` budget."""
    try:
        builder = FILTER_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(FILTER_BUILDERS)}"
        ) from None
    if total_bits <= 0:
        raise ConfigurationError("total_bits must be positive")
    return builder(dataset, total_bits, costs, seed)
