"""Run every figure experiment and write the regenerated series to CSV files.

Usage::

    python -m repro.experiments.run_all [output_dir] [--quick]

Each figure's rows are written to ``<output_dir>/figXX.csv`` and a short
summary (the headline comparisons) is printed to stdout and written to
``<output_dir>/summary.txt``.  EXPERIMENTS.md is based on one such run.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    fig08_bounds,
    fig09_parameters,
    fig10_uniform,
    fig11_skewed,
    fig12_time,
    fig13_skewness,
    fig14_hash_impls,
    fig15_memory,
)
from repro.experiments.config import QUICK_CONFIG, ExperimentConfig
from repro.experiments.report import ExperimentResult

#: All figure runners, in paper order.
ALL_FIGURES: Dict[str, Callable[[Optional[ExperimentConfig]], ExperimentResult]] = {
    "fig08": fig08_bounds.run,
    "fig09": fig09_parameters.run,
    "fig10": fig10_uniform.run,
    "fig11": fig11_skewed.run,
    "fig12": fig12_time.run,
    "fig13": fig13_skewness.run,
    "fig14": fig14_hash_impls.run,
    "fig15": fig15_memory.run,
}


def run_all(
    config: Optional[ExperimentConfig] = None,
    output_dir: Optional[Path] = None,
) -> Dict[str, ExperimentResult]:
    """Run every figure experiment, optionally writing CSVs to ``output_dir``."""
    config = config or ExperimentConfig()
    results: Dict[str, ExperimentResult] = {}
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    for name, runner in ALL_FIGURES.items():
        start = time.perf_counter()
        result = runner(config)
        elapsed = time.perf_counter() - start
        results[name] = result
        print(f"{name}: {len(result.rows)} rows in {elapsed:.1f}s — {result.title}")
        if output_dir is not None:
            (output_dir / f"{name}.csv").write_text(result.to_csv())
    if output_dir is not None:
        (output_dir / "summary.txt").write_text(summarize(results))
    return results


def summarize(results: Dict[str, ExperimentResult]) -> str:
    """Produce the headline comparison lines used by EXPERIMENTS.md."""
    lines: List[str] = []
    fig10 = results.get("fig10")
    if fig10 is not None:
        for panel in ("a (shalla, non-learned)", "c (ycsb, non-learned)"):
            for algorithm in ("HABF", "f-HABF", "BF", "Xor"):
                series = fig10.series("weighted_fpr", panel=panel, algorithm=algorithm)
                if series:
                    rendered = ", ".join(f"{value:.3%}" for value in series)
                    lines.append(f"fig10 {panel} {algorithm}: {rendered}")
    fig12 = results.get("fig12")
    if fig12 is not None:
        for dataset in ("shalla", "ycsb"):
            rows = {row["algorithm"]: row for row in fig12.filter_rows(dataset=dataset)}
            if "BF" in rows and "HABF" in rows:
                build_ratio = rows["HABF"]["construction_ns_per_key"] / rows["BF"]["construction_ns_per_key"]
                query_ratio = rows["HABF"]["query_ns_per_key"] / rows["BF"]["query_ns_per_key"]
                lines.append(
                    f"fig12 {dataset}: HABF/BF construction ratio {build_ratio:.1f}x, "
                    f"query ratio {query_ratio:.1f}x"
                )
    fig15 = results.get("fig15")
    if fig15 is not None:
        for dataset in ("shalla", "ycsb"):
            rows = {row["algorithm"]: row for row in fig15.filter_rows(dataset=dataset)}
            if "BF" in rows and "HABF" in rows:
                ratio = rows["HABF"]["peak_construction_mb"] / max(rows["BF"]["peak_construction_mb"], 1e-9)
                lines.append(f"fig15 {dataset}: HABF/BF construction memory ratio {ratio:.1f}x")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    output_dir = Path(argv[0]) if argv else Path("results")
    config = QUICK_CONFIG if quick else ExperimentConfig()
    run_all(config, output_dir)
    print(f"wrote CSVs and summary to {output_dir}/")


if __name__ == "__main__":  # pragma: no cover
    main()
