"""Generic sweep helpers shared by the per-figure experiment modules."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.registry import build_filter
from repro.experiments.report import Row
from repro.hashing.base import Key
from repro.metrics.fpr import evaluate_filter
from repro.workloads.dataset import MembershipDataset
from repro.workloads.zipf import assign_zipf_costs


def sweep_space(
    dataset: MembershipDataset,
    algorithms: Sequence[str],
    space_sweep: Sequence[Tuple[float, float]],
    costs: Optional[Mapping[Key, float]] = None,
    seed: int = 1,
    extra_columns: Optional[Dict[str, object]] = None,
) -> List[Row]:
    """Evaluate ``algorithms`` over a space sweep on one dataset.

    Args:
        dataset: Dataset providing positives, negatives and evaluation costs.
        algorithms: Names registered in :mod:`repro.experiments.registry`.
        space_sweep: ``(space_label_mb, bits_per_key)`` pairs; the MB label is
            carried through to the output rows so they read like the paper's
            x-axis, while the bit budget uses the scaled dataset size.
        costs: Costs handed to cost-aware builders (HABF, WBF); evaluation uses
            the dataset's own costs.
        seed: Construction seed.
        extra_columns: Constant columns appended to every row.
    """
    rows: List[Row] = []
    for space_mb, bits_per_key in space_sweep:
        total_bits = max(64, int(round(bits_per_key * dataset.num_positives)))
        for algorithm in algorithms:
            filter_obj = build_filter(
                algorithm, dataset, total_bits, costs=costs, seed=seed
            )
            evaluation = evaluate_filter(filter_obj, dataset)
            row: Row = {
                "dataset": dataset.name,
                "space_mb": space_mb,
                "bits_per_key": round(bits_per_key, 3),
                "algorithm": algorithm,
                "weighted_fpr": evaluation.weighted_fpr,
                "fpr": evaluation.fpr,
                "fnr": evaluation.fnr,
            }
            if extra_columns:
                row.update(extra_columns)
            rows.append(row)
    return rows


def averaged_skewed_sweep(
    dataset: MembershipDataset,
    algorithms: Sequence[str],
    space_sweep: Sequence[Tuple[float, float]],
    skewness: float,
    num_shuffles: int,
    seed: int = 1,
) -> List[Row]:
    """Space sweep under Zipf costs, averaged over shuffled cost assignments.

    Mirrors the paper's protocol (Section V-C): for each skewness factor the
    Zipf assignment is shuffled several times and the weighted FPR averaged.
    """
    accumulator: Dict[Tuple[float, str], List[float]] = {}
    plain_columns: Dict[Tuple[float, str], Row] = {}
    for shuffle_index in range(num_shuffles):
        costs = assign_zipf_costs(
            dataset.negatives, skewness=skewness, seed=seed + shuffle_index
        )
        weighted_dataset = dataset.with_costs(costs)
        rows = sweep_space(
            weighted_dataset,
            algorithms,
            space_sweep,
            costs=costs,
            seed=seed + shuffle_index,
        )
        for row in rows:
            key = (float(row["space_mb"]), str(row["algorithm"]))
            accumulator.setdefault(key, []).append(float(row["weighted_fpr"]))
            plain_columns[key] = row
    averaged: List[Row] = []
    for key, values in accumulator.items():
        row = dict(plain_columns[key])
        row["weighted_fpr"] = sum(values) / len(values)
        row["skewness"] = skewness
        row["num_shuffles"] = num_shuffles
        averaged.append(row)
    averaged.sort(key=lambda row: (row["space_mb"], str(row["algorithm"])))
    return averaged
