"""Fig. 9 — HABF parameter study (∆, k and HashExpressor cell size).

Panel (a): with a fixed 2 MB-equivalent budget on the Shalla-like dataset and
uniform costs, sweep the space-allocation ratio ∆ from 0.1 to 0.9 and the hash
count ``k`` from 2 to 8; the paper finds ∆ = 0.25 and k = 3–5 optimal.

Panel (b): sweep the total space (the paper's 1.25–3.25 MB labels) for
HashExpressor cell sizes 3, 4 and 5 bits of ``hashindex``; the paper finds 4
optimal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.habf import HABF
from repro.core.params import HABFParams
from repro.experiments.config import ExperimentConfig, PAPER_SHALLA_POSITIVES, mb_to_bits_per_key
from repro.experiments.report import ExperimentResult, Row
from repro.metrics.fpr import evaluate_filter
from repro.workloads.dataset import MembershipDataset

DELTA_SWEEP: Sequence[float] = (0.1, 0.25, 0.3, 0.5, 0.7, 0.9)
K_SWEEP: Sequence[int] = (2, 3, 4, 5, 6, 7, 8)
CELL_SIZE_SWEEP: Sequence[int] = (3, 4, 5)
PANEL_A_SPACE_MB = 2.0


def _evaluate(dataset: MembershipDataset, params: HABFParams) -> float:
    habf = HABF.build(
        positives=dataset.positives, negatives=dataset.negatives, params=params
    )
    return evaluate_filter(habf, dataset).weighted_fpr


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 9."""
    config = config or ExperimentConfig()
    dataset = config.shalla_dataset()
    rows: List[Row] = []

    bits_per_key = mb_to_bits_per_key(PANEL_A_SPACE_MB, PAPER_SHALLA_POSITIVES)
    total_bits = int(round(bits_per_key * dataset.num_positives))

    for delta in DELTA_SWEEP:
        params = HABFParams(total_bits=total_bits, k=3, delta=delta, seed=config.seed)
        rows.append(
            {
                "panel": "a (vary delta)",
                "delta": delta,
                "k": 3,
                "cell_size": 4,
                "space_mb": PANEL_A_SPACE_MB,
                "weighted_fpr": _evaluate(dataset, params),
            }
        )
    for k in K_SWEEP:
        params = HABFParams(total_bits=total_bits, k=k, delta=0.25, seed=config.seed)
        rows.append(
            {
                "panel": "a (vary k)",
                "delta": 0.25,
                "k": k,
                "cell_size": 4,
                "space_mb": PANEL_A_SPACE_MB,
                "weighted_fpr": _evaluate(dataset, params),
            }
        )
    for cell_size in CELL_SIZE_SWEEP:
        for space_mb, bits in config.shalla_space_sweep():
            params = HABFParams(
                total_bits=int(round(bits * dataset.num_positives)),
                k=3,
                delta=0.25,
                cell_hash_bits=cell_size,
                seed=config.seed,
            )
            rows.append(
                {
                    "panel": "b (vary cell size)",
                    "delta": 0.25,
                    "k": 3,
                    "cell_size": cell_size,
                    "space_mb": space_mb,
                    "weighted_fpr": _evaluate(dataset, params),
                }
            )
    return ExperimentResult(
        experiment_id="fig09",
        title="Fig. 9: HABF parameter study (delta, k, cell size)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
