"""Fig. 14 — Bloom filters built with different hash implementations vs HABF.

The paper compares the default BF (k distinct Table II hashes) against BF
built from a single strong primitive with seeded copies — BF(City64) and
BF(XXH128) — on the YCSB dataset under uniform and Zipf(1.0) costs.  The point
is that *better hash functions alone do not help*: all BF variants track each
other and none reacts to the cost distribution, while HABF does.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import build_filter
from repro.experiments.report import ExperimentResult, Row
from repro.experiments.runner import averaged_skewed_sweep, sweep_space
from repro.metrics.timing import time_queries, time_queries_batch

ALGORITHMS: Sequence[str] = ("HABF", "BF", "BF(City64)", "BF(XXH128)")
SKEWNESS = 1.0


def _batch_timing_rows(
    dataset, sweep, algorithms: Sequence[str], config: ExperimentConfig
) -> List[Row]:
    """Scalar-vs-engine query timing for every hash implementation.

    Uses the largest space point of the sweep (most realistic fill ratio)
    and the same mixed positive/negative probe recipe as Fig. 12, so the
    batch engine is compared on the workload the figure already measures.
    """
    space_mb, bits_per_key = sweep[-1]
    total_bits = int(round(bits_per_key * dataset.num_positives))
    rng = random.Random(config.seed)
    sample_size = min(config.query_sample, dataset.num_negatives, dataset.num_positives)
    query_keys = rng.sample(dataset.negatives, sample_size // 2) + rng.sample(
        dataset.positives, sample_size - sample_size // 2
    )
    rows: List[Row] = []
    for algorithm in algorithms:
        built = build_filter(algorithm, dataset, total_bits, seed=config.seed)
        scalar = time_queries(built, query_keys)
        batch = time_queries_batch(built, query_keys)
        rows.append(
            {
                "panel": "c (batch query timing)",
                "cost_distribution": "uniform",
                "dataset": dataset.name,
                "space_mb": space_mb,
                "algorithm": algorithm,
                "query_ns_per_key": scalar.ns_per_key,
                "query_batch_ns_per_key": batch.ns_per_key,
                "batch_speedup": (
                    scalar.ns_per_key / batch.ns_per_key if batch.ns_per_key > 0 else 0.0
                ),
            }
        )
    return rows


def run(
    config: Optional[ExperimentConfig] = None, batch_mode: bool = False
) -> ExperimentResult:
    """Regenerate both panels of Fig. 14 (uniform and skewed costs, YCSB).

    With ``batch_mode`` a third panel of rows compares scalar ``contains``
    against the batch engine's ``contains_many`` for every BF hash
    implementation and HABF — the "better hash functions alone do not help"
    point restated for throughput: all variants gain roughly the same factor
    from batching, so the ordering of the panels is preserved.
    """
    config = config or ExperimentConfig()
    dataset = config.ycsb_dataset()
    sweep = config.ycsb_space_sweep()
    rows: List[Row] = []
    uniform_rows = sweep_space(
        dataset,
        list(ALGORITHMS),
        sweep,
        costs=None,
        seed=config.seed,
        extra_columns={"panel": "a (uniform)", "cost_distribution": "uniform"},
    )
    rows.extend(uniform_rows)
    skewed_rows = averaged_skewed_sweep(
        dataset,
        list(ALGORITHMS),
        sweep,
        skewness=SKEWNESS,
        num_shuffles=config.cost_shuffles,
        seed=config.seed,
    )
    for row in skewed_rows:
        row["panel"] = "b (skewed)"
        row["cost_distribution"] = f"zipf({SKEWNESS})"
    rows.extend(skewed_rows)
    if batch_mode:
        rows.extend(_batch_timing_rows(dataset, sweep, list(ALGORITHMS), config))
    return ExperimentResult(
        experiment_id="fig14",
        title="Fig. 14: Bloom filter hash implementations vs HABF (YCSB)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(batch_mode=True)
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
