"""Fig. 14 — Bloom filters built with different hash implementations vs HABF.

The paper compares the default BF (k distinct Table II hashes) against BF
built from a single strong primitive with seeded copies — BF(City64) and
BF(XXH128) — on the YCSB dataset under uniform and Zipf(1.0) costs.  The point
is that *better hash functions alone do not help*: all BF variants track each
other and none reacts to the cost distribution, while HABF does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentResult, Row
from repro.experiments.runner import averaged_skewed_sweep, sweep_space

ALGORITHMS: Sequence[str] = ("HABF", "BF", "BF(City64)", "BF(XXH128)")
SKEWNESS = 1.0


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 14 (uniform and skewed costs, YCSB)."""
    config = config or ExperimentConfig()
    dataset = config.ycsb_dataset()
    sweep = config.ycsb_space_sweep()
    rows: List[Row] = []
    uniform_rows = sweep_space(
        dataset,
        list(ALGORITHMS),
        sweep,
        costs=None,
        seed=config.seed,
        extra_columns={"panel": "a (uniform)", "cost_distribution": "uniform"},
    )
    rows.extend(uniform_rows)
    skewed_rows = averaged_skewed_sweep(
        dataset,
        list(ALGORITHMS),
        sweep,
        skewness=SKEWNESS,
        num_shuffles=config.cost_shuffles,
        seed=config.seed,
    )
    for row in skewed_rows:
        row["panel"] = "b (skewed)"
        row["cost_distribution"] = f"zipf({SKEWNESS})"
    rows.extend(skewed_rows)
    return ExperimentResult(
        experiment_id="fig14",
        title="Fig. 14: Bloom filter hash implementations vs HABF (YCSB)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
