"""Shared configuration for the experiment harness.

The paper's experiments run on millions of keys and megabytes of filter space.
A pure-Python reproduction keeps the *bits-per-key* (the quantity all the FPR
theory depends on) identical while scaling the key counts down, so every run
finishes on a laptop.  :class:`ExperimentConfig` centralises that scaling:

* ``shalla_positives`` / ``ycsb_positives`` etc. pick the scaled dataset sizes;
* space sweeps are expressed as the paper's megabyte labels and converted to
  bits through the *paper's* dataset sizes, so "1.5 MB on Shalla" means the
  same bits-per-key here as it does in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.errors import ConfigurationError
from repro.workloads.dataset import MembershipDataset
from repro.workloads.shalla import generate_shalla_like
from repro.workloads.ycsb import generate_ycsb_like

#: Key counts of the paper's real datasets, used to convert MB labels into
#: bits-per-key budgets.
PAPER_SHALLA_POSITIVES = 1_491_178
PAPER_YCSB_POSITIVES = 12_500_611

#: Space sweeps used throughout Section V (in MB, as labelled in the figures).
SHALLA_SPACE_SWEEP_MB: Tuple[float, ...] = (1.25, 1.75, 2.25, 2.75, 3.25)
YCSB_SPACE_SWEEP_MB: Tuple[float, ...] = (12.5, 17.5, 22.5, 27.5, 32.5)


def mb_to_bits_per_key(space_mb: float, paper_positives: int) -> float:
    """Convert a paper figure's MB label into its bits-per-key budget."""
    if space_mb <= 0 or paper_positives <= 0:
        raise ConfigurationError("space and key count must be positive")
    return space_mb * 8 * 1024 * 1024 / paper_positives


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment runner.

    Attributes:
        shalla_positives / shalla_negatives: Scaled Shalla-like dataset size.
        ycsb_positives / ycsb_negatives: Scaled YCSB-like dataset size.
        seed: Master seed for datasets, costs and filter construction.
        space_points: How many points of each space sweep to evaluate (taken
            from the start of the paper's sweep); lower values keep the quick
            benchmark runs fast while ``5`` reproduces the full figures.
        cost_shuffles: How many shuffled Zipf cost assignments to average over
            (the paper uses 10).
        query_sample: Number of keys used when measuring query latency.
    """

    shalla_positives: int = 8_000
    shalla_negatives: int = 7_800
    ycsb_positives: int = 8_000
    ycsb_negatives: int = 7_400
    seed: int = 1
    space_points: int = 5
    cost_shuffles: int = 3
    query_sample: int = 2_000

    def __post_init__(self) -> None:
        if min(
            self.shalla_positives,
            self.shalla_negatives,
            self.ycsb_positives,
            self.ycsb_negatives,
        ) <= 0:
            raise ConfigurationError("dataset sizes must be positive")
        if not 1 <= self.space_points <= 5:
            raise ConfigurationError("space_points must be between 1 and 5")
        if self.cost_shuffles < 1:
            raise ConfigurationError("cost_shuffles must be at least 1")
        if self.query_sample < 1:
            raise ConfigurationError("query_sample must be at least 1")

    # ------------------------------------------------------------------ #
    # Datasets
    # ------------------------------------------------------------------ #
    def shalla_dataset(self) -> MembershipDataset:
        """The scaled Shalla-like dataset for this configuration."""
        return generate_shalla_like(
            num_positives=self.shalla_positives,
            num_negatives=self.shalla_negatives,
            seed=self.seed,
        )

    def ycsb_dataset(self) -> MembershipDataset:
        """The scaled YCSB-like dataset for this configuration."""
        return generate_ycsb_like(
            num_positives=self.ycsb_positives,
            num_negatives=self.ycsb_negatives,
            seed=self.seed,
        )

    # ------------------------------------------------------------------ #
    # Space sweeps
    # ------------------------------------------------------------------ #
    def shalla_space_sweep(self) -> Sequence[Tuple[float, float]]:
        """(MB label, bits-per-key) pairs for the Shalla space sweep."""
        points = SHALLA_SPACE_SWEEP_MB[: self.space_points]
        return [(mb, mb_to_bits_per_key(mb, PAPER_SHALLA_POSITIVES)) for mb in points]

    def ycsb_space_sweep(self) -> Sequence[Tuple[float, float]]:
        """(MB label, bits-per-key) pairs for the YCSB space sweep."""
        points = YCSB_SPACE_SWEEP_MB[: self.space_points]
        return [(mb, mb_to_bits_per_key(mb, PAPER_YCSB_POSITIVES)) for mb in points]


#: A deliberately small configuration used by the pytest-benchmark targets so
#: the full benchmark suite completes quickly; the module-level ``main()``
#: entry points default to :class:`ExperimentConfig` instead.
QUICK_CONFIG = ExperimentConfig(
    shalla_positives=2_500,
    shalla_negatives=2_400,
    ycsb_positives=2_500,
    ycsb_negatives=2_300,
    space_points=3,
    cost_shuffles=2,
    query_sample=800,
)
