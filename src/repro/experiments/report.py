"""Experiment results as plain rows, with text-table and CSV rendering.

Every experiment returns an :class:`ExperimentResult` whose ``rows`` are flat
dictionaries (one per data point of the corresponding figure).  Keeping them
as plain data makes the benches, tests and EXPERIMENTS.md generation trivial.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

Row = Dict[str, object]


@dataclass
class ExperimentResult:
    """The regenerated data series of one paper figure.

    Attributes:
        experiment_id: Identifier such as ``"fig10"``.
        title: Human-readable description.
        rows: One flat dictionary per data point.
    """

    experiment_id: str
    title: str
    rows: List[Row] = field(default_factory=list)

    def filter_rows(self, **criteria: object) -> List[Row]:
        """Return the rows matching all ``column=value`` criteria."""
        matched = []
        for row in self.rows:
            if all(row.get(column) == value for column, value in criteria.items()):
                matched.append(row)
        return matched

    def series(self, value_column: str, **criteria: object) -> List[object]:
        """Return ``value_column`` from the rows matching ``criteria``, in order."""
        return [row[value_column] for row in self.filter_rows(**criteria)]

    def columns(self) -> List[str]:
        """Union of all row keys, in first-appearance order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def to_csv(self) -> str:
        """Render all rows as CSV text."""
        return rows_to_csv(self.rows)

    def to_table(self, float_format: str = "{:.6g}") -> str:
        """Render all rows as an aligned text table."""
        return format_table(self.rows, float_format=float_format)


def rows_to_csv(rows: Sequence[Row]) -> str:
    """Render ``rows`` as CSV with the union of their columns as the header."""
    if not rows:
        return ""
    columns: Dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key, None)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def format_table(rows: Sequence[Row], float_format: str = "{:.6g}") -> str:
    """Render ``rows`` as a fixed-width text table (the harness's print format)."""
    if not rows:
        return "(no rows)"
    columns: Dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key, None)
    names = list(columns)

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(name, "")) for name in names] for row in rows]
    widths = [
        max(len(names[i]), *(len(line[i]) for line in rendered)) for i in range(len(names))
    ]
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(names))
    separator = "  ".join("-" * widths[i] for i in range(len(names)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(names))) for line in rendered
    )
    return "\n".join([header, separator, body])
