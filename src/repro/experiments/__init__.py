"""Experiment harness: one module per figure of the paper's evaluation.

Every module exposes a ``run(config=None) -> ExperimentResult`` function that
regenerates the corresponding figure's data series, plus a ``main()`` entry
point that prints the series as a text table.  ``ExperimentResult`` rows carry
plain dictionaries so they can be dumped to CSV or compared in tests.

Module ↔ figure map (see DESIGN.md §3 for the full index):

========================  =====================================================
Module                    Paper content
========================  =====================================================
``fig08_bounds``          Fig. 8 — measured FPR vs the Eq. 19 theoretical bound
``fig09_parameters``      Fig. 9 — ∆ / k sweep and HashExpressor cell size
``fig10_uniform``         Fig. 10 — weighted FPR vs space, uniform costs
``fig11_skewed``          Fig. 11 — weighted FPR vs space, Zipf(1.0) costs
``fig12_time``            Fig. 12 — construction time and query latency
``fig13_skewness``        Fig. 13 — weighted FPR vs cost skewness
``fig14_hash_impls``      Fig. 14 — Bloom filters with different hash functions
``fig15_memory``          Fig. 15 — construction memory footprint
========================  =====================================================
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import FILTER_BUILDERS, build_filter, list_algorithms
from repro.experiments.report import ExperimentResult, format_table, rows_to_csv
from repro.experiments.runner import sweep_space

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FILTER_BUILDERS",
    "build_filter",
    "list_algorithms",
    "format_table",
    "rows_to_csv",
    "sweep_space",
]
