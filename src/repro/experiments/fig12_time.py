"""Fig. 12 — construction time and query latency per key.

The paper fixes the filter space (1.5 MB for Shalla, 15 MB for YCSB) and
reports nanoseconds per key for construction and for queries, for every
algorithm.  Pure-Python absolute numbers are far larger than the paper's C++
measurements; the reproduction target is the *ordering and ratios* — learned
filters orders of magnitude slower than hash-based ones, HABF construction a
constant factor above BF, f-HABF close to BF (see EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_SHALLA_POSITIVES,
    PAPER_YCSB_POSITIVES,
    mb_to_bits_per_key,
)
from repro.experiments.registry import build_filter
from repro.experiments.report import ExperimentResult, Row
from repro.hashing import vectorized
from repro.metrics.timing import time_construction, time_queries, time_queries_batch
from repro.workloads.dataset import MembershipDataset

#: Algorithms timed by the paper's Fig. 12 (GPU variants excluded: no GPU here).
TIMED_ALGORITHMS: Sequence[str] = (
    "HABF",
    "f-HABF",
    "BF",
    "Xor",
    "WBF",
    "LBF",
    "Ada-BF",
    "SLBF",
)
SHALLA_SPACE_MB = 1.5
YCSB_SPACE_MB = 15.0


def _time_dataset(
    dataset: MembershipDataset,
    space_mb: float,
    paper_positives: int,
    algorithms: Sequence[str],
    config: ExperimentConfig,
    batch_mode: bool = False,
) -> List[Row]:
    bits_per_key = mb_to_bits_per_key(space_mb, paper_positives)
    total_bits = int(round(bits_per_key * dataset.num_positives))
    rng = random.Random(config.seed)
    sample_size = min(config.query_sample, dataset.num_negatives, dataset.num_positives)
    query_keys = rng.sample(dataset.negatives, sample_size // 2) + rng.sample(
        dataset.positives, sample_size - sample_size // 2
    )
    rows: List[Row] = []
    for algorithm in algorithms:
        # Since the bulk-build engine, construction itself runs through
        # add_many / the vectorized TPJO and peeling passes whenever numpy
        # is available, so this measurement is the engine build time.
        built, construction = time_construction(
            lambda name=algorithm: build_filter(
                name, dataset, total_bits, costs=dataset.costs, seed=config.seed
            ),
            num_keys=dataset.num_positives,
        )
        query = time_queries(built, query_keys)
        row: Row = {
            "dataset": dataset.name,
            "space_mb": space_mb,
            "algorithm": algorithm,
            "construction_ns_per_key": construction.ns_per_key,
            "query_ns_per_key": query.ns_per_key,
        }
        if batch_mode:
            batch_query = time_queries_batch(built, query_keys)
            row["query_batch_ns_per_key"] = batch_query.ns_per_key
            row["batch_speedup"] = (
                query.ns_per_key / batch_query.ns_per_key
                if batch_query.ns_per_key > 0
                else 0.0
            )
            # Build the same filter once more with the engine forced off:
            # the scalar-vs-batch *construction* ratio, the build-side twin
            # of `batch_speedup` (cf. BENCH_batch_build.json).
            with vectorized.force_scalar():
                _, scalar_construction = time_construction(
                    lambda name=algorithm: build_filter(
                        name, dataset, total_bits, costs=dataset.costs, seed=config.seed
                    ),
                    num_keys=dataset.num_positives,
                )
            row["construction_scalar_ns_per_key"] = scalar_construction.ns_per_key
            row["build_speedup"] = (
                scalar_construction.ns_per_key / construction.ns_per_key
                if construction.ns_per_key > 0
                else 0.0
            )
        rows.append(row)
    return rows


def run(
    config: Optional[ExperimentConfig] = None, batch_mode: bool = False
) -> ExperimentResult:
    """Regenerate all four panels of Fig. 12.

    With ``batch_mode`` every algorithm is additionally timed through the
    batch engine (``contains_many`` over the same query keys), adding
    ``query_batch_ns_per_key`` and ``batch_speedup`` columns — the measured
    form of the engine speedups recorded in ``BENCH_batch_engine.json`` —
    plus a scalar-forced rebuild that yields
    ``construction_scalar_ns_per_key`` and ``build_speedup`` (the
    construction-side ratios recorded in ``BENCH_batch_build.json``).
    """
    config = config or ExperimentConfig()
    rows: List[Row] = []
    rows.extend(
        _time_dataset(
            config.shalla_dataset(),
            SHALLA_SPACE_MB,
            PAPER_SHALLA_POSITIVES,
            TIMED_ALGORITHMS,
            config,
            batch_mode=batch_mode,
        )
    )
    rows.extend(
        _time_dataset(
            config.ycsb_dataset(),
            YCSB_SPACE_MB,
            PAPER_YCSB_POSITIVES,
            TIMED_ALGORITHMS,
            config,
            batch_mode=batch_mode,
        )
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Fig. 12: construction time and query latency per key",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(batch_mode=True)
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
