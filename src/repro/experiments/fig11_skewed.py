"""Fig. 11 — weighted FPR vs space under a Zipf(1.0) cost distribution.

Same four-panel layout as Fig. 10, with the misidentification costs of the
negative keys drawn from a Zipf distribution with skewness 1.0 (shuffled and
averaged as in the paper's protocol).  The non-learned panels additionally
include the Weighted Bloom filter, the only cost-aware baseline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import LEARNED_ALGORITHMS, NON_LEARNED_ALGORITHMS
from repro.experiments.report import ExperimentResult, Row
from repro.experiments.runner import averaged_skewed_sweep

SKEWNESS = 1.0


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate all four panels of Fig. 11."""
    config = config or ExperimentConfig()
    non_learned = NON_LEARNED_ALGORITHMS + ["WBF"]
    rows: List[Row] = []
    panels = [
        ("a (shalla, non-learned)", config.shalla_dataset(), config.shalla_space_sweep(), non_learned),
        ("b (shalla, learned)", config.shalla_dataset(), config.shalla_space_sweep(), LEARNED_ALGORITHMS),
        ("c (ycsb, non-learned)", config.ycsb_dataset(), config.ycsb_space_sweep(), non_learned),
        ("d (ycsb, learned)", config.ycsb_dataset(), config.ycsb_space_sweep(), LEARNED_ALGORITHMS),
    ]
    for panel, dataset, sweep, algorithms in panels:
        panel_rows = averaged_skewed_sweep(
            dataset,
            algorithms,
            sweep,
            skewness=SKEWNESS,
            num_shuffles=config.cost_shuffles,
            seed=config.seed,
        )
        for row in panel_rows:
            row["panel"] = panel
            row["cost_distribution"] = f"zipf({SKEWNESS})"
        rows.extend(panel_rows)
    return ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11: weighted FPR vs space (Zipf(1.0) cost distribution)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
