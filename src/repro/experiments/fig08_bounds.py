"""Fig. 8 — measured FPR of HABF versus the Eq. 19 theoretical upper bound.

The paper's verification experiment builds HABF at ``b = 10`` bits per key
while varying the number of hash functions ``k`` from 2 to 10 (Fig. 8(a)), and
at ``k = 4`` while varying the bits-per-key ``b`` from 4 to 13 (Fig. 8(b)).
In both sweeps the theoretical bound must stay above the measured FPR.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.habf import HABF
from repro.core.params import HABFParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentResult, Row
from repro.metrics.fpr import evaluate_filter
from repro.theory.habf_bounds import habf_fpr_bound
from repro.workloads.dataset import MembershipDataset

#: Sweeps used by the paper.
K_SWEEP: Sequence[int] = (2, 3, 4, 5, 6, 7, 8, 9, 10)
B_SWEEP: Sequence[int] = (4, 5, 6, 7, 8, 9, 10, 11, 12, 13)
FIXED_B = 10.0
FIXED_K = 4


def _measure_point(
    dataset: MembershipDataset, bits_per_key: float, k: int, seed: int
) -> Row:
    params = HABFParams.from_bits_per_key(
        bits_per_key, dataset.num_positives, k=k, seed=seed
    )
    habf = HABF.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        params=params,
    )
    evaluation = evaluate_filter(habf, dataset)
    bloom_bits_per_key = params.bloom_bits / dataset.num_positives
    bound = habf_fpr_bound(
        bits_per_key=bloom_bits_per_key,
        num_hashes=k,
        num_negatives=dataset.num_negatives,
        num_cells=max(1, params.num_cells),
        family_size=len(habf.bloom.family),
    )
    return {
        "bits_per_key": bits_per_key,
        "k": k,
        "measured_fpr": evaluation.fpr,
        "theoretical_bound": bound,
        "bound_holds": evaluation.fpr <= bound + 1e-12,
    }


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 8."""
    config = config or ExperimentConfig()
    dataset = config.shalla_dataset()
    rows: List[Row] = []
    for k in K_SWEEP:
        row = _measure_point(dataset, FIXED_B, k, config.seed)
        row["panel"] = "a (vary k)"
        rows.append(row)
    for bits_per_key in B_SWEEP:
        row = _measure_point(dataset, float(bits_per_key), FIXED_K, config.seed)
        row["panel"] = "b (vary b)"
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig08",
        title="Fig. 8: measured FPR vs Eq. 19 theoretical bound",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
