"""Fig. 15 — CPU memory footprint during filter construction.

The paper fixes the filter space (1.5 MB Shalla, 15 MB YCSB) and reports the
construction-time memory of every algorithm.  The qualitative findings to
reproduce: HABF needs a constant factor more construction memory than BF
(negative keys plus the V and Γ indexes), f-HABF needs less than HABF (no Γ),
and the learned filters need the most (feature matrices / model training).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_SHALLA_POSITIVES,
    PAPER_YCSB_POSITIVES,
    mb_to_bits_per_key,
)
from repro.experiments.registry import build_filter
from repro.experiments.report import ExperimentResult, Row
from repro.metrics.memory import measure_construction_memory
from repro.workloads.dataset import MembershipDataset

MEASURED_ALGORITHMS: Sequence[str] = (
    "HABF",
    "f-HABF",
    "BF",
    "Xor",
    "WBF",
    "LBF",
    "Ada-BF",
    "SLBF",
)
SHALLA_SPACE_MB = 1.5
YCSB_SPACE_MB = 15.0


def _measure_dataset(
    dataset: MembershipDataset,
    space_mb: float,
    paper_positives: int,
    config: ExperimentConfig,
) -> List[Row]:
    bits_per_key = mb_to_bits_per_key(space_mb, paper_positives)
    total_bits = int(round(bits_per_key * dataset.num_positives))
    rows: List[Row] = []
    for algorithm in MEASURED_ALGORITHMS:
        _, memory = measure_construction_memory(
            lambda name=algorithm: build_filter(
                name, dataset, total_bits, costs=dataset.costs, seed=config.seed
            )
        )
        rows.append(
            {
                "dataset": dataset.name,
                "space_mb": space_mb,
                "algorithm": algorithm,
                "peak_construction_mb": memory.peak_megabytes,
            }
        )
    return rows


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 15."""
    config = config or ExperimentConfig()
    rows: List[Row] = []
    rows.extend(
        _measure_dataset(config.shalla_dataset(), SHALLA_SPACE_MB, PAPER_SHALLA_POSITIVES, config)
    )
    rows.extend(
        _measure_dataset(config.ycsb_dataset(), YCSB_SPACE_MB, PAPER_YCSB_POSITIVES, config)
    )
    return ExperimentResult(
        experiment_id="fig15",
        title="Fig. 15: construction memory footprint",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
