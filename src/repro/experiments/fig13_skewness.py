"""Fig. 13 — weighted FPR as the cost skewness grows from 0 to 3.0.

The paper fixes the Shalla dataset at a 1.5 MB budget and increases the Zipf
skewness of the cost distribution; HABF and f-HABF keep improving (they steer
optimisation toward the expensive keys) while BF and Xor fluctuate because a
single expensive false positive dominates the weighted FPR.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_SHALLA_POSITIVES,
    mb_to_bits_per_key,
)
from repro.experiments.report import ExperimentResult, Row
from repro.experiments.runner import averaged_skewed_sweep

SKEWNESS_SWEEP: Sequence[float] = (0.0, 0.6, 1.2, 1.8, 2.4, 3.0)
ALGORITHMS: Sequence[str] = ("HABF", "f-HABF", "BF", "Xor")
SPACE_MB = 1.5


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate Fig. 13."""
    config = config or ExperimentConfig()
    dataset = config.shalla_dataset()
    bits_per_key = mb_to_bits_per_key(SPACE_MB, PAPER_SHALLA_POSITIVES)
    sweep = [(SPACE_MB, bits_per_key)]
    rows: List[Row] = []
    for skewness in SKEWNESS_SWEEP:
        skew_rows = averaged_skewed_sweep(
            dataset,
            list(ALGORITHMS),
            sweep,
            skewness=skewness,
            num_shuffles=config.cost_shuffles,
            seed=config.seed,
        )
        rows.extend(skew_rows)
    return ExperimentResult(
        experiment_id="fig13",
        title="Fig. 13: weighted FPR vs cost skewness (Shalla, 1.5 MB)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
