"""Fig. 10 — weighted FPR vs space under a uniform cost distribution.

Four panels: Shalla vs non-learned filters (a), Shalla vs learned filters (b),
YCSB vs non-learned (c), YCSB vs learned (d).  With uniform costs the weighted
FPR equals the plain FPR; the paper's headline observations are that HABF
always beats the non-learned baselines and that learned filters only win on
the structured Shalla keys at very tight space budgets.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import LEARNED_ALGORITHMS, NON_LEARNED_ALGORITHMS
from repro.experiments.report import ExperimentResult, Row
from repro.experiments.runner import sweep_space


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Regenerate all four panels of Fig. 10."""
    config = config or ExperimentConfig()
    rows: List[Row] = []
    panels = [
        ("a (shalla, non-learned)", config.shalla_dataset(), config.shalla_space_sweep(), NON_LEARNED_ALGORITHMS),
        ("b (shalla, learned)", config.shalla_dataset(), config.shalla_space_sweep(), LEARNED_ALGORITHMS),
        ("c (ycsb, non-learned)", config.ycsb_dataset(), config.ycsb_space_sweep(), NON_LEARNED_ALGORITHMS),
        ("d (ycsb, learned)", config.ycsb_dataset(), config.ycsb_space_sweep(), LEARNED_ALGORITHMS),
    ]
    for panel, dataset, sweep, algorithms in panels:
        rows.extend(
            sweep_space(
                dataset,
                algorithms,
                sweep,
                costs=None,
                seed=config.seed,
                extra_columns={"panel": panel, "cost_distribution": "uniform"},
            )
        )
    return ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10: weighted FPR vs space (uniform cost distribution)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.title)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
