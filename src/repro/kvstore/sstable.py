"""Immutable sorted runs (SSTables) with per-read cost accounting.

An :class:`SSTable` models a sorted file on disk: looking a key up requires a
"disk read" whose cost depends on the level the table lives at (deeper levels
are colder and more expensive, as in LevelDB).  A membership filter built by a
:class:`~repro.kvstore.filter_policy.FilterPolicy` guards the read: when the
filter says "absent" the read is skipped entirely.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.kvstore.filter_policy import FilterPolicy, NoFilterPolicy
from repro.kvstore.memtable import TOMBSTONE


@dataclass
class SSTableStats:
    """Per-table read accounting.

    Attributes:
        lookups: Total lookups routed to this table.
        filter_rejections: Lookups the filter answered "absent" (no read).
        reads: Simulated disk reads actually performed.
        useless_reads: Reads that found nothing (filter false positives).
    """

    lookups: int = 0
    filter_rejections: int = 0
    reads: int = 0
    useless_reads: int = 0


class SSTable:
    """An immutable sorted run of key/value pairs with a guarding filter.

    Args:
        entries: ``(key, value)`` pairs; keys must be unique.  Values may be
            the tombstone sentinel.
        level: LSM level this table belongs to (controls the read cost).
        read_cost: Simulated cost of one read from this table.
        filter_policy: Policy used to build the guarding filter.
        negatives: Known negative keys (workload hint for cost-aware filters).
        costs: Per-key access costs for the negative keys.
    """

    def __init__(
        self,
        entries: Sequence[Tuple[str, object]],
        level: int = 0,
        read_cost: float = 1.0,
        filter_policy: Optional[FilterPolicy] = None,
        negatives: Sequence[str] = (),
        costs: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not entries:
            raise ConfigurationError("an SSTable needs at least one entry")
        if read_cost < 0:
            raise ConfigurationError("read_cost must be non-negative")
        sorted_entries = sorted(entries, key=lambda item: item[0])
        keys = [key for key, _ in sorted_entries]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("SSTable keys must be unique")
        self._keys: List[str] = keys
        self._values: List[object] = [value for _, value in sorted_entries]
        self.level = level
        self.read_cost = read_cost
        policy = filter_policy if filter_policy is not None else NoFilterPolicy()
        self._filter = policy.create_filter(keys, negatives=negatives, costs=costs)
        self.stats = SSTableStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self) -> str:
        """Smallest key stored in this table."""
        return self._keys[0]

    @property
    def max_key(self) -> str:
        """Largest key stored in this table."""
        return self._keys[-1]

    def key_range_contains(self, key: str) -> bool:
        """Cheap range check used before consulting the filter."""
        return self.min_key <= key <= self.max_key

    def items(self) -> List[Tuple[str, object]]:
        """All entries in key order (tombstones included); used by compaction."""
        return list(zip(self._keys, self._values))

    @property
    def filter(self):
        """The guarding membership filter."""
        return self._filter

    # ------------------------------------------------------------------ #
    # Filter persistence
    # ------------------------------------------------------------------ #
    def dump_filter(self) -> bytes:
        """Serialize the guarding filter into one codec frame.

        A real LSM store persists the filter block inside the table file so
        reopening the database does not rebuild every filter; this is that
        path, built on :mod:`repro.service.codec`.
        """
        from repro.service import codec

        return codec.dumps(self._filter)

    def restore_filter(self, frame: bytes) -> None:
        """Replace the guarding filter with one decoded from ``frame``.

        The restored filter must still answer "present" for every key this
        table holds — restoring a filter built for a different table would
        silently reintroduce false negatives, so that is checked here.

        Raises:
            CodecError: if the frame is corrupt or the decoded filter misses
                any of this table's keys.
        """
        from repro.errors import CodecError
        from repro.service import codec

        candidate = codec.loads(frame)
        contains = getattr(candidate, "contains", None)
        if contains is None:
            raise CodecError(
                f"decoded frame holds {type(candidate).__name__}, which is not "
                "a membership filter"
            )
        missing = sum(1 for key in self._keys if not contains(key))
        if missing:
            raise CodecError(
                f"restored filter misses {missing} of {len(self._keys)} table keys; "
                "it was not built for this table"
            )
        self._filter = candidate

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Tuple[bool, Optional[object], float]:
        """Look up ``key``.

        Returns ``(found, value, io_cost)`` where ``io_cost`` is the simulated
        cost paid by this lookup (0.0 when the filter rejected the key).
        Tombstoned keys return ``(True, None, cost)``.
        """
        self.stats.lookups += 1
        if not self.key_range_contains(key):
            return False, None, 0.0
        if not self._filter.contains(key):
            self.stats.filter_rejections += 1
            return False, None, 0.0
        self.stats.reads += 1
        return self._read(key)

    def _read(self, key: str) -> Tuple[bool, Optional[object], float]:
        """The simulated disk read itself (cost already committed)."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            value = self._values[index]
            if value is TOMBSTONE:
                return True, None, self.read_cost
            return True, value, self.read_cost
        self.stats.useless_reads += 1
        return False, None, self.read_cost

    def get_many(self, keys: Sequence[str]) -> List[Tuple[bool, Optional[object], float]]:
        """Batch form of :meth:`get`, in input order.

        The guarding filter answers all in-range keys with **one**
        ``contains_many`` call (the batch engine's array program when numpy
        is available), so a multi-key read pays the filter's per-batch cost
        once instead of per key.  Per-key results and statistics are
        identical to looping :meth:`get`.
        """
        keys = list(keys)
        results: List[Tuple[bool, Optional[object], float]] = [
            (False, None, 0.0)
        ] * len(keys)
        self.stats.lookups += len(keys)
        in_range = [
            position for position, key in enumerate(keys) if self.key_range_contains(key)
        ]
        if not in_range:
            return results
        contains_many = getattr(self._filter, "contains_many", None)
        if contains_many is not None:
            flags = contains_many([keys[position] for position in in_range])
        else:
            flags = [self._filter.contains(keys[position]) for position in in_range]
        for position, flag in zip(in_range, flags):
            if not flag:
                self.stats.filter_rejections += 1
                continue
            self.stats.reads += 1
            results[position] = self._read(keys[position])
        return results
