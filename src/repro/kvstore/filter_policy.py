"""Pluggable per-run membership filters for the LSM tree.

A :class:`FilterPolicy` builds one filter per sorted run from the run's keys;
the cost-aware policies additionally receive the workload hints (known
negative keys and their access costs) that the paper assumes are available —
for example frequently-missed keys harvested from a query log.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Protocol, Sequence

from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.baselines.xor_filter import XorFilter
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.habf import HABF, FastHABF
from repro.core.params import HABFParams
from repro.errors import ConfigurationError
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily


class MembershipFilter(Protocol):
    """Minimal filter interface the SSTable read path needs."""

    def contains(self, key: Key) -> bool:  # pragma: no cover - protocol
        ...


class AlwaysContainsFilter:
    """Degenerate filter used by :class:`NoFilterPolicy` (every read hits disk).

    Public because the service codec serializes it (a default-configured
    SSTable dumps this filter).
    """

    def contains(self, key: Key) -> bool:
        return True

    def contains_many(self, keys: Iterable[Key]) -> List[bool]:
        return [True for _ in keys]

    def size_in_bits(self) -> int:
        return 0


class FilterPolicy(Protocol):
    """Builds a membership filter for one sorted run."""

    name: str

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:  # pragma: no cover - protocol
        ...


class NoFilterPolicy:
    """No filtering: every lookup on a run pays the run's read cost."""

    name = "none"

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:
        return AlwaysContainsFilter()


class BloomFilterPolicy:
    """Standard Bloom filter per run, sized by bits-per-key (LevelDB style)."""

    name = "bloom"

    def __init__(self, bits_per_key: float = 10.0) -> None:
        if bits_per_key <= 0:
            raise ConfigurationError("bits_per_key must be positive")
        self.bits_per_key = bits_per_key

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:
        keys = list(keys)
        if not keys:
            return AlwaysContainsFilter()
        num_bits = max(8, int(round(self.bits_per_key * len(keys))))
        return BloomFilter.from_keys(
            keys, num_bits=num_bits, num_hashes=optimal_num_hashes(self.bits_per_key)
        )


class DoubleHashBloomFilterPolicy:
    """Bloom filter over a Kirsch–Mitzenmacher :class:`DoubleHashFamily`.

    Same bits and false-positive math as :class:`BloomFilterPolicy`, but all
    ``k`` probes derive from one base-primitive evaluation per key instead of
    ``k`` distinct Table II primitives.  That makes it the serving-path
    default shape: a query batch costs one vectorized column pass for the
    whole window (shared across shards via the batch cache) rather than one
    pass per probe function.  Codec frames round-trip (the double-hash family
    descriptor is part of the bloom frame).
    """

    name = "bloom-dh"

    def __init__(
        self, bits_per_key: float = 10.0, primitive: str = "xxhash", seed: int = 0
    ) -> None:
        if bits_per_key <= 0:
            raise ConfigurationError("bits_per_key must be positive")
        self.bits_per_key = bits_per_key
        self.primitive = primitive
        self.seed = seed

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:
        keys = list(keys)
        if not keys:
            return AlwaysContainsFilter()
        num_bits = max(8, int(round(self.bits_per_key * len(keys))))
        num_hashes = optimal_num_hashes(self.bits_per_key)
        family = DoubleHashFamily(
            size=num_hashes, primitive=self.primitive, seed=self.seed
        )
        return BloomFilter.from_keys(
            keys, num_bits=num_bits, num_hashes=num_hashes, family=family
        )


class HABFFilterPolicy:
    """HABF per run, steered by the known negative keys and their access costs."""

    name = "habf"
    filter_cls = HABF

    def __init__(self, bits_per_key: float = 10.0, k: int = 3, seed: int = 1) -> None:
        if bits_per_key <= 0:
            raise ConfigurationError("bits_per_key must be positive")
        self.bits_per_key = bits_per_key
        self.k = k
        self.seed = seed

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:
        keys = list(keys)
        if not keys:
            return AlwaysContainsFilter()
        key_set = set(keys)
        relevant_negatives = [key for key in negatives if key not in key_set]
        params = HABFParams.from_bits_per_key(
            self.bits_per_key, len(keys), k=self.k, seed=self.seed
        )
        return self.filter_cls.build(
            positives=keys,
            negatives=relevant_negatives,
            costs=costs,
            params=params,
        )


class FastHABFFilterPolicy(HABFFilterPolicy):
    """f-HABF per run: double hashing and the Γ-free fast construction."""

    name = "f-habf"
    filter_cls = FastHABF


class WeightedBloomFilterPolicy:
    """WBF per run: cost-ranked negatives get elevated per-key hash counts.

    The cost-aware baseline as a policy — the known negatives and their
    access costs populate the filter's cost cache, so the most expensive
    misses receive extra probes.  Like every policy, the built filter
    round-trips through :mod:`repro.service.codec` (bit array *and* cost
    cache), which is what lets a sharded WBF store snapshot/restore and hand
    shards across process-pool workers.
    """

    name = "wbf"

    def __init__(
        self,
        bits_per_key: float = 10.0,
        cache_fraction: float = 0.1,
        max_extra_hashes: int = 6,
    ) -> None:
        if bits_per_key <= 0:
            raise ConfigurationError("bits_per_key must be positive")
        self.bits_per_key = bits_per_key
        self.cache_fraction = cache_fraction
        self.max_extra_hashes = max_extra_hashes

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:
        keys = list(keys)
        if not keys:
            return AlwaysContainsFilter()
        key_set = set(keys)
        return WeightedBloomFilter.build(
            keys,
            negatives=[key for key in negatives if key not in key_set],
            costs=costs,
            bits_per_key=self.bits_per_key,
            cache_fraction=self.cache_fraction,
            max_extra_hashes=self.max_extra_hashes,
        )


class XorFilterPolicy:
    """Xor filter per run (static; ignores the negative-key workload hints)."""

    name = "xor"

    def __init__(self, bits_per_key: float = 10.0, seed: int = 1) -> None:
        if bits_per_key <= 0:
            raise ConfigurationError("bits_per_key must be positive")
        self.bits_per_key = bits_per_key
        self.seed = seed

    def create_filter(
        self,
        keys: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> MembershipFilter:
        keys = list(keys)
        if not keys:
            return AlwaysContainsFilter()
        return XorFilter.from_bits_per_key(keys, self.bits_per_key, seed=self.seed)
