"""The in-memory write buffer of the LSM tree."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Sentinel stored for deleted keys so deletes shadow older versions on disk.
TOMBSTONE = object()


class MemTable:
    """A bounded in-memory map of the most recent writes.

    Args:
        capacity: Number of distinct keys after which the memtable reports
            itself full and the LSM tree flushes it to a sorted run.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ConfigurationError("memtable capacity must be positive")
        self._capacity = capacity
        self._entries: Dict[str, object] = {}

    def put(self, key: str, value: object) -> None:
        """Insert or overwrite a key."""
        self._entries[key] = value

    def delete(self, key: str) -> None:
        """Record a deletion (a tombstone that shadows older on-disk versions)."""
        self._entries[key] = TOMBSTONE

    def get(self, key: str) -> Tuple[bool, Optional[object]]:
        """Return ``(found, value)``; a tombstone reports ``(True, None)``."""
        if key not in self._entries:
            return False, None
        value = self._entries[key]
        if value is TOMBSTONE:
            return True, None
        return True, value

    def is_full(self) -> bool:
        """True once the number of buffered keys reaches the capacity."""
        return len(self._entries) >= self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def sorted_items(self) -> List[Tuple[str, object]]:
        """Return the buffered entries sorted by key (tombstones included)."""
        return sorted(self._entries.items())

    def clear(self) -> None:
        """Drop every buffered entry (called after a flush)."""
        self._entries.clear()

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))
