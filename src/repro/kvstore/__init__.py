"""A small LSM-tree key-value store: the paper's motivating application.

The paper motivates HABF with LSM-tree key-value databases (LevelDB/RocksDB),
where a Bloom filter per sorted run avoids disk reads for keys the run does
not hold, and where reads at deeper levels cost more I/O.  This subpackage
implements that substrate from scratch so the examples and integration tests
can show the end-to-end effect of swapping a plain Bloom filter for a HABF:

* :class:`~repro.kvstore.memtable.MemTable` — the in-memory write buffer.
* :class:`~repro.kvstore.sstable.SSTable` — an immutable sorted run with a
  pluggable membership filter and a simulated per-read I/O cost.
* :class:`~repro.kvstore.filter_policy.FilterPolicy` implementations for no
  filter, standard Bloom filters, and HABF.
* :class:`~repro.kvstore.lsm.LSMTree` — levelled LSM tree with flush,
  compaction and read-path I/O accounting.
"""

from repro.kvstore.filter_policy import (
    BloomFilterPolicy,
    FastHABFFilterPolicy,
    FilterPolicy,
    HABFFilterPolicy,
    NoFilterPolicy,
    XorFilterPolicy,
)
from repro.kvstore.lsm import LSMTree, ReadStats
from repro.kvstore.memtable import MemTable
from repro.kvstore.sstable import SSTable

__all__ = [
    "MemTable",
    "SSTable",
    "LSMTree",
    "ReadStats",
    "FilterPolicy",
    "NoFilterPolicy",
    "BloomFilterPolicy",
    "HABFFilterPolicy",
    "FastHABFFilterPolicy",
    "XorFilterPolicy",
]
