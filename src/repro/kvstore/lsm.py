"""A levelled LSM tree with filter-guarded reads and I/O-cost accounting.

The tree keeps a memtable plus ``max_levels`` levels of SSTables.  Flushes go
to level 0; when a level holds more tables than its fan-out allows, all of its
tables (plus the next level's) are merge-compacted into a single table one
level down.  Reads consult the memtable, then every level from 0 downward;
each table lookup pays that table's simulated read cost unless the table's
filter rejects the key.  Per-level read costs grow geometrically, mirroring
the paper's observation that misses at deeper LevelDB levels are more
expensive — which is exactly the cost signal a HABF filter policy exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.kvstore.filter_policy import FilterPolicy, NoFilterPolicy
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.sstable import SSTable


@dataclass
class ReadStats:
    """Aggregate read-path accounting for an :class:`LSMTree`.

    Attributes:
        gets: Number of ``get`` calls.
        hits: Gets that found a live value.
        misses: Gets that found nothing (or a tombstone).
        table_lookups: SSTable lookups performed.
        filter_rejections: Lookups answered by a filter without a read.
        io_cost: Total simulated read cost paid.
        wasted_io_cost: Read cost paid by lookups that found nothing
            (filter false positives or range-only matches).
    """

    gets: int = 0
    hits: int = 0
    misses: int = 0
    table_lookups: int = 0
    filter_rejections: int = 0
    io_cost: float = 0.0
    wasted_io_cost: float = 0.0


class LSMTree:
    """A small levelled log-structured merge tree with pluggable filters.

    Args:
        memtable_capacity: Keys buffered before a flush.
        max_levels: Number of on-disk levels.
        level_fanout: Maximum number of tables per level before compaction.
        base_read_cost: Simulated cost of reading a level-0 table.
        level_cost_factor: Multiplier applied per level (deeper = pricier).
        filter_policy: Filter built for each flushed/compacted table.
        negative_hints: Known negative keys (e.g. harvested from a query log)
            handed to cost-aware filter policies.
        negative_costs: Per-key costs for the negative hints.
    """

    def __init__(
        self,
        memtable_capacity: int = 512,
        max_levels: int = 4,
        level_fanout: int = 4,
        base_read_cost: float = 1.0,
        level_cost_factor: float = 4.0,
        filter_policy: Optional[FilterPolicy] = None,
        negative_hints: Sequence[str] = (),
        negative_costs: Optional[Mapping[str, float]] = None,
    ) -> None:
        if max_levels < 1:
            raise ConfigurationError("max_levels must be at least 1")
        if level_fanout < 1:
            raise ConfigurationError("level_fanout must be at least 1")
        if base_read_cost < 0 or level_cost_factor <= 0:
            raise ConfigurationError("read costs must be positive")
        self._memtable = MemTable(capacity=memtable_capacity)
        self._levels: List[List[SSTable]] = [[] for _ in range(max_levels)]
        self._fanout = level_fanout
        self._base_read_cost = base_read_cost
        self._level_cost_factor = level_cost_factor
        self._filter_policy = filter_policy if filter_policy is not None else NoFilterPolicy()
        self._negative_hints = list(negative_hints)
        self._negative_costs = dict(negative_costs) if negative_costs else {}
        self.stats = ReadStats()

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def put(self, key: str, value: object) -> None:
        """Insert or overwrite ``key``."""
        self._memtable.put(key, value)
        if self._memtable.is_full():
            self.flush()

    def delete(self, key: str) -> None:
        """Delete ``key`` (a tombstone shadows older versions)."""
        self._memtable.delete(key)
        if self._memtable.is_full():
            self.flush()

    def flush(self) -> None:
        """Flush the memtable into a new level-0 SSTable."""
        entries = self._memtable.sorted_items()
        if not entries:
            return
        table = self._make_table(entries, level=0)
        self._levels[0].insert(0, table)
        self._memtable.clear()
        self._maybe_compact()

    def _make_table(self, entries: List[Tuple[str, object]], level: int) -> SSTable:
        return SSTable(
            entries,
            level=level,
            read_cost=self._read_cost_for(level),
            filter_policy=self._filter_policy,
            negatives=self._negative_hints,
            costs=self._negative_costs,
        )

    def _read_cost_for(self, level: int) -> float:
        return self._base_read_cost * (self._level_cost_factor ** level)

    def _maybe_compact(self) -> None:
        for level in range(len(self._levels) - 1):
            if len(self._levels[level]) > self._fanout:
                self._compact(level)

    def _compact(self, level: int) -> None:
        """Merge every table at ``level`` and ``level + 1`` into one table below."""
        merged: Dict[str, object] = {}
        # Apply older tables first so newer values overwrite them.  Within a
        # level, index 0 holds the newest table, and the next level is older
        # than this one — so walk the deeper level back-to-front, then this
        # level back-to-front.
        older_to_newer = list(reversed(self._levels[level + 1])) + list(
            reversed(self._levels[level])
        )
        for table in older_to_newer:
            for key, value in table.items():
                merged[key] = value
        target_level = level + 1
        is_bottom = target_level == len(self._levels) - 1
        entries = [
            (key, value)
            for key, value in merged.items()
            # Tombstones can be dropped once they reach the bottom level.
            if not (is_bottom and value is TOMBSTONE)
        ]
        self._levels[level] = []
        if entries:
            self._levels[target_level] = [self._make_table(sorted(entries), target_level)]
        else:
            self._levels[target_level] = []

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[object]:
        """Return the live value of ``key`` or ``None`` if absent/deleted."""
        self.stats.gets += 1
        found, value = self._memtable.get(key)
        if found:
            if value is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return value
        for level_tables in self._levels:
            for table in level_tables:
                self.stats.table_lookups += 1
                rejections_before = table.stats.filter_rejections
                found, value, cost = table.get(key)
                self.stats.io_cost += cost
                if table.stats.filter_rejections > rejections_before:
                    self.stats.filter_rejections += 1
                if not found and cost > 0.0:
                    self.stats.wasted_io_cost += cost
                if found:
                    if value is None:
                        self.stats.misses += 1
                        return None
                    self.stats.hits += 1
                    return value
        self.stats.misses += 1
        return None

    def get_many(self, keys: Sequence[str]) -> List[Optional[object]]:
        """Batch form of :meth:`get`, in input order.

        The memtable answers first; the keys it cannot resolve then walk the
        levels together, and every SSTable answers its whole pending group
        with one batch filter check (:meth:`~repro.kvstore.sstable.SSTable.get_many`).
        Results and statistics match looping :meth:`get` key by key.
        """
        keys = list(keys)
        results: List[Optional[object]] = [None] * len(keys)
        self.stats.gets += len(keys)
        pending: List[int] = []
        for position, key in enumerate(keys):
            found, value = self._memtable.get(key)
            if found:
                if value is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
                    results[position] = value
            else:
                pending.append(position)
        for level_tables in self._levels:
            for table in level_tables:
                if not pending:
                    return results
                self.stats.table_lookups += len(pending)
                rejections_before = table.stats.filter_rejections
                answers = table.get_many([keys[position] for position in pending])
                self.stats.filter_rejections += (
                    table.stats.filter_rejections - rejections_before
                )
                still_pending: List[int] = []
                for position, (found, value, cost) in zip(pending, answers):
                    self.stats.io_cost += cost
                    if not found and cost > 0.0:
                        self.stats.wasted_io_cost += cost
                    if found:
                        if value is None:
                            self.stats.misses += 1
                        else:
                            self.stats.hits += 1
                            results[position] = value
                    else:
                        still_pending.append(position)
                pending = still_pending
        self.stats.misses += len(pending)
        return results

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def num_tables(self) -> int:
        """Total number of SSTables across all levels."""
        return sum(len(tables) for tables in self._levels)

    def level_sizes(self) -> List[int]:
        """Number of tables per level, shallow to deep."""
        return [len(tables) for tables in self._levels]

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LSMTree(levels={self.level_sizes()}, memtable={len(self._memtable)}, "
            f"policy={self._filter_policy.name})"
        )
