"""Configuration objects for HABF and the experiment harness.

The paper tunes three structural parameters (Section V-D):

* the space-allocation ratio ``∆`` between the HashExpressor and the Bloom
  filter (optimum 0.25, i.e. a 1:4 split),
* the number of hash functions ``k`` per key (optimum 3),
* the HashExpressor cell size in bits of ``hashindex`` (optimum 4).

:class:`HABFParams` bundles those choices together with the total space budget
so every experiment and example constructs filters the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HABFParams:
    """Structural parameters of a :class:`~repro.core.habf.HABF` filter.

    Attributes:
        total_bits: Total space budget in bits, shared between the Bloom filter
            and the HashExpressor.
        k: Number of hash functions applied per key.
        delta: Space-allocation ratio ``∆ = ∆1/∆2`` between HashExpressor (∆1)
            and Bloom filter (∆2).  ``0`` degenerates to a plain Bloom filter.
        cell_hash_bits: Bits of a HashExpressor cell devoted to ``hashindex``
            (the "cell size" of Fig. 9(b)); the cell additionally stores a
            1-bit ``endbit``.
        seed: Seed for the deterministic pseudo-randomness used during
            construction (initial-selection shuffling and tie-breaking).
        max_queue_passes: Safety bound on how many times a re-enqueued
            collision key may be revisited, preventing pathological loops on
            adversarial inputs.
    """

    total_bits: int
    k: int = 3
    delta: float = 0.25
    cell_hash_bits: int = 4
    seed: int = 1
    max_queue_passes: int = 3

    def __post_init__(self) -> None:
        if self.total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")
        if self.k < 1:
            raise ConfigurationError("k must be at least 1")
        if not 0.0 <= self.delta < 1.0:
            raise ConfigurationError("delta must satisfy 0 <= delta < 1")
        if not 1 <= self.cell_hash_bits <= 16:
            raise ConfigurationError("cell_hash_bits must be between 1 and 16")
        if self.max_queue_passes < 1:
            raise ConfigurationError("max_queue_passes must be at least 1")

    @property
    def cell_bits(self) -> int:
        """Total bits per HashExpressor cell (endbit + hashindex)."""
        return 1 + self.cell_hash_bits

    @property
    def max_hash_functions(self) -> int:
        """Largest family size representable by a cell (index 0 is 'empty')."""
        return (1 << self.cell_hash_bits) - 1

    @property
    def expressor_bits(self) -> int:
        """Bits allocated to the HashExpressor (∆1)."""
        return int(self.total_bits * self.delta)

    @property
    def bloom_bits(self) -> int:
        """Bits allocated to the Bloom filter (∆2)."""
        return self.total_bits - self.expressor_bits

    @property
    def num_cells(self) -> int:
        """Number of HashExpressor cells ω that fit in the allocated space."""
        if self.expressor_bits == 0:
            return 0
        return max(1, self.expressor_bits // self.cell_bits)

    def bits_per_key(self, num_positive_keys: int) -> float:
        """Return the bits-per-key ``b`` this budget gives for ``num_positive_keys``."""
        if num_positive_keys <= 0:
            raise ConfigurationError("num_positive_keys must be positive")
        return self.total_bits / num_positive_keys

    def with_total_bits(self, total_bits: int) -> "HABFParams":
        """Return a copy of these parameters with a different space budget."""
        return replace(self, total_bits=total_bits)

    @classmethod
    def from_bits_per_key(
        cls,
        bits_per_key: float,
        num_positive_keys: int,
        k: int = 3,
        delta: float = 0.25,
        cell_hash_bits: int = 4,
        seed: int = 1,
    ) -> "HABFParams":
        """Build parameters from a bits-per-key budget, the paper's usual knob."""
        if bits_per_key <= 0:
            raise ConfigurationError("bits_per_key must be positive")
        if num_positive_keys <= 0:
            raise ConfigurationError("num_positive_keys must be positive")
        total_bits = max(8, int(round(bits_per_key * num_positive_keys)))
        return cls(
            total_bits=total_bits,
            k=k,
            delta=delta,
            cell_hash_bits=cell_hash_bits,
            seed=seed,
        )


@dataclass(frozen=True)
class SpaceBudget:
    """A space budget expressed the way the paper's figures express it (MB).

    The experiments in Section V sweep "space size" in megabytes for a fixed
    dataset.  This helper converts megabytes to bits and keeps the scaling
    factor used when shrinking the datasets for laptop-scale runs.
    """

    megabytes: float
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.megabytes <= 0:
            raise ConfigurationError("space budget must be positive")
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")

    @property
    def bits(self) -> int:
        """Total number of bits this budget allows after scaling."""
        return int(self.megabytes * self.scale * 8 * 1024 * 1024)

    def params(
        self,
        k: int = 3,
        delta: float = 0.25,
        cell_hash_bits: int = 4,
        seed: int = 1,
    ) -> HABFParams:
        """Return :class:`HABFParams` for this budget."""
        return HABFParams(
            total_bits=self.bits,
            k=k,
            delta=delta,
            cell_hash_bits=cell_hash_bits,
            seed=seed,
        )


__all__ = ["HABFParams", "SpaceBudget"]
