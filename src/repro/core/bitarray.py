"""A compact bit vector backed by a ``bytearray``.

Every filter in this package stores its membership bits in a :class:`BitArray`.
The implementation favours clarity and exact space accounting over raw speed
on the scalar paths; the batch engine's :meth:`BitArray.set_many` and
:meth:`BitArray.test_many` additionally expose the same ``bytearray`` as a
writable numpy view, so whole index vectors are set and tested as one array
program.  Because the numpy view aliases the *same* buffer, serialization
(:meth:`BitArray.to_bytes` and the :mod:`repro.service.codec` frames built on
it) is byte-identical whichever path populated the bits, and a pure-Python
fallback keeps every batch entry point working when numpy is absent.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.hashing import vectorized as _vec

_POPCOUNT_TABLE = bytes(bin(i).count("1") for i in range(256))


class BitArray:
    """A fixed-length array of bits with set/test/clear and popcount support.

    Args:
        num_bits: Length of the array in bits; must be positive.
    """

    __slots__ = ("_num_bits", "_buffer")

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0:
            raise ConfigurationError(f"BitArray size must be positive, got {num_bits}")
        self._num_bits = num_bits
        self._buffer = bytearray((num_bits + 7) // 8)

    @classmethod
    def from_indices(cls, num_bits: int, indices: Iterable[int]) -> "BitArray":
        """Create an array of ``num_bits`` with the given ``indices`` set to 1."""
        array = cls(num_bits)
        for index in indices:
            array.set(index)
        return array

    def __len__(self) -> int:
        return self._num_bits

    def _check(self, index: int) -> int:
        if index < 0:
            index += self._num_bits
        if not 0 <= index < self._num_bits:
            raise IndexError(f"bit index {index} out of range for {self._num_bits} bits")
        return index

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to 1."""
        index = self._check(index)
        self._buffer[index >> 3] |= 1 << (index & 7)

    def clear(self, index: int) -> None:
        """Set the bit at ``index`` to 0."""
        index = self._check(index)
        self._buffer[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def test(self, index: int) -> bool:
        """Return ``True`` if the bit at ``index`` is 1."""
        index = self._check(index)
        return bool(self._buffer[index >> 3] & (1 << (index & 7)))

    def __getitem__(self, index: int) -> bool:
        return self.test(index)

    def __setitem__(self, index: int, value: object) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def set_all(self, indices: Iterable[int]) -> None:
        """Set every bit listed in ``indices``."""
        for index in indices:
            self.set(index)

    def test_all(self, indices: Iterable[int]) -> bool:
        """Return ``True`` only if every bit listed in ``indices`` is 1."""
        return all(self.test(index) for index in indices)

    # ------------------------------------------------------------------ #
    # Batch engine
    # ------------------------------------------------------------------ #
    def _checked_index_vector(self, np, indices):
        index = np.asarray(indices, dtype=np.int64).ravel()
        if index.size:
            index = np.where(index < 0, index + self._num_bits, index)
            bad = (index < 0) | (index >= self._num_bits)
            if bad.any():
                offender = int(np.asarray(indices, dtype=np.int64).ravel()[np.flatnonzero(bad)[0]])
                raise IndexError(
                    f"bit index {offender} out of range for {self._num_bits} bits"
                )
        return index

    def set_many(self, indices) -> None:
        """Set every bit listed in ``indices`` (vectorized when numpy exists).

        Accepts any integer sequence or ndarray, with the same negative-index
        wrapping and bounds checking as :meth:`set`.  Duplicate indices are
        fine (``bitwise_or.at`` accumulates per byte).
        """
        np = _vec.numpy_or_none()
        if np is None:
            self.set_all(int(index) for index in indices)
            return
        index = self._checked_index_vector(np, indices)
        if not index.size:
            return
        view = np.frombuffer(self._buffer, dtype=np.uint8)
        np.bitwise_or.at(
            view, index >> 3, np.uint8(1) << (index & 7).astype(np.uint8)
        )

    def test_many(self, indices):
        """Test every bit listed in ``indices``, in order.

        Returns a bool ndarray when numpy is available and a plain list of
        bools otherwise; index semantics match :meth:`test`.
        """
        np = _vec.numpy_or_none()
        if np is None:
            return [self.test(int(index)) for index in indices]
        index = self._checked_index_vector(np, indices)
        view = np.frombuffer(self._buffer, dtype=np.uint8)
        return (view[index >> 3] >> (index & 7).astype(np.uint8)) & 1 != 0

    def count(self) -> int:
        """Return the number of bits set to 1 (popcount)."""
        return sum(_POPCOUNT_TABLE[byte] for byte in self._buffer)

    def fill_ratio(self) -> float:
        """Return the fraction of bits set to 1."""
        return self.count() / self._num_bits

    def reset(self) -> None:
        """Clear every bit."""
        for i in range(len(self._buffer)):
            self._buffer[i] = 0

    def copy(self) -> "BitArray":
        """Return a deep copy of this array."""
        clone = BitArray(self._num_bits)
        clone._buffer[:] = self._buffer
        return clone

    def iter_set_bits(self) -> Iterator[int]:
        """Yield the indices of all bits currently set to 1, in order."""
        for byte_index, byte in enumerate(self._buffer):
            if not byte:
                continue
            base = byte_index << 3
            for offset in range(8):
                if byte & (1 << offset):
                    index = base + offset
                    if index < self._num_bits:
                        yield index

    def to_bytes(self) -> bytes:
        """Return the packed little-endian byte representation."""
        return bytes(self._buffer)

    @classmethod
    def from_bytes(cls, num_bits: int, data: bytes) -> "BitArray":
        """Rebuild an array from :meth:`to_bytes` output."""
        array = cls(num_bits)
        expected = (num_bits + 7) // 8
        if len(data) != expected:
            raise ConfigurationError(
                f"expected {expected} bytes for {num_bits} bits, got {len(data)}"
            )
        array._buffer[:] = data
        return array

    @classmethod
    def view(cls, num_bits: int, buffer) -> "BitArray":
        """Wrap an existing buffer as a :class:`BitArray` without copying.

        ``buffer`` is any object exporting the buffer protocol over exactly
        ``(num_bits + 7) // 8`` bytes — a ``bytes``, ``bytearray``,
        ``memoryview``, or a slice of a ``multiprocessing.shared_memory``
        mapping.  The returned array *aliases* the buffer: no bytes are
        copied, and :meth:`test` / :meth:`test_many` / :meth:`to_bytes` read
        straight from it.  This is what lets N replica processes serve the
        same filter payload from one shared-memory segment.

        Mutators (:meth:`set`, :meth:`set_many`, :meth:`clear`,
        :meth:`reset`) work only when the buffer is writable; over a
        read-only buffer they raise ``TypeError``/``ValueError`` from the
        buffer itself.  Serving-side filters are immutable after build, so
        read-only views are the intended use.
        """
        if num_bits <= 0:
            raise ConfigurationError(f"BitArray size must be positive, got {num_bits}")
        data = memoryview(buffer).cast("B")
        expected = (num_bits + 7) // 8
        if data.nbytes != expected:
            raise ConfigurationError(
                f"expected {expected} bytes for {num_bits} bits, got {data.nbytes}"
            )
        array = cls.__new__(cls)
        array._num_bits = num_bits
        array._buffer = data
        return array

    @property
    def writable(self) -> bool:
        """``False`` when this array is a read-only :meth:`view`."""
        buffer = self._buffer
        if isinstance(buffer, memoryview):
            return not buffer.readonly
        return True

    def size_in_bytes(self) -> int:
        """Return the storage footprint of the bit payload in bytes."""
        return len(self._buffer)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._num_bits == other._num_bits and self._buffer == other._buffer

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitArray(num_bits={self._num_bits}, set={self.count()})"
