"""The shared batch-membership engine interface.

Every filter in the library mixes in :class:`BatchMembership`, which defines
the public batch query ``contains_many(keys) -> List[bool]`` and the bulk
construction entry ``add_many(keys)`` once: encode the keys into one
:class:`~repro.hashing.vectorized.KeyBatch`, hand it to the filter's
``_contains_batch`` / ``_add_batch`` array program, and fall back to the
scalar ``contains`` / ``add`` loop when numpy is absent (or the filter has
no batch path).  The membership hot paths thereby stop being "a loop over
``contains``" (or ``add``) and become one array program per filter, while
the scalar semantics stay the single source of truth — the engine must agree
with them bit for bit (pinned by ``tests/core/test_batch_equivalence.py``
for queries and ``tests/core/test_batch_build_equivalence.py`` for
construction).

The module also hosts the two position kernels shared by the Bloom-probing
filters:

* :func:`positions_for_selection` — one *fixed* hash selection applied to a
  whole batch (Bloom round 1, H0);
* :func:`positions_for_matrix` — a *per-key* selection matrix, as decoded
  from the HashExpressor (Bloom round 2).  For a
  :class:`~repro.hashing.double_hashing.DoubleHashFamily` this collapses to
  one vectorized multiply-add off the shared h1/h2 base pass; for a table
  family the keys are grouped by selected function so each primitive runs
  once per distinct index, not once per key.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConstructionError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily


class BatchMembership:
    """Mixin providing the engine-backed ``contains_many`` and ``add_many``.

    Subclasses override :meth:`_contains_batch` (and, for incrementally
    buildable filters, :meth:`_add_batch`) with an array program over a
    :class:`~repro.hashing.vectorized.KeyBatch`; the mixin handles encoding,
    the numpy gate and the scalar fallback.  Filters that cannot vectorize
    simply inherit the fallback loops, so every filter in the library exposes
    the same batch interface.
    """

    def contains_many(self, keys: Iterable[Key]) -> List[bool]:
        """Vector form of ``contains``, in input order."""
        keys = list(keys)
        np = vec.numpy_or_none()
        if np is not None and keys:
            answers = self._contains_batch(vec.KeyBatch(keys))
            if answers is not None:
                return answers.tolist()
        return self._contains_fallback(keys)

    def add_many(self, keys: Iterable[Key]) -> None:
        """Bulk form of ``add``: encode once, insert the whole batch.

        The resulting filter state is bit-for-bit identical to looping the
        scalar ``add`` over ``keys`` (pinned by
        ``tests/core/test_batch_build_equivalence.py``), so serialized codec
        frames do not depend on which path built the filter.  Filters without
        an ``_add_batch`` array program — or any filter when numpy is absent
        — take the scalar fallback loop.  Build-once filters (no ``add``,
        e.g. the Xor filter) raise
        :class:`~repro.errors.ConstructionError` instead of failing with an
        attribute lookup.
        """
        keys = list(keys)
        np = vec.numpy_or_none()
        if np is not None and keys:
            if self._add_batch(vec.KeyBatch(keys)):
                return
        self._add_fallback(keys)

    def _add_fallback(self, keys: List[Key]) -> None:
        """Scalar bulk-insert path used when numpy (or a batch program) is absent."""
        add = getattr(self, "add", None)
        if add is None and keys:
            raise ConstructionError(
                f"{type(self).__name__} is built once from its key set and does "
                "not support incremental insertion (add_many)"
            )
        for key in keys:
            add(key)

    def _add_batch(self, batch: "vec.KeyBatch") -> bool:
        """Insert a whole encoded batch; return ``True`` if handled.

        ``False`` means "no bulk-build path for this filter" and routes the
        call to the scalar fallback.  Only invoked when numpy is available.
        """
        return False

    def _contains_fallback(self, keys: List[Key]) -> List[bool]:
        """Scalar batch path used when numpy (or a batch program) is absent.

        Filters whose scalar query re-resolves state per call can override
        this to hoist that dispatch out of the loop (see ``BloomFilter``).
        """
        return [self.contains(key) for key in keys]

    def _contains_batch(self, batch: "vec.KeyBatch"):
        """Answer a whole encoded batch; return a bool ndarray or ``None``.

        ``None`` means "no batch path for this filter" and routes the call to
        the scalar fallback.  Only invoked when numpy is available.
        """
        return None


def positions_for_selection(family, batch: "vec.KeyBatch", selection: Sequence[int], modulus: int):
    """Bit positions of every key under one fixed hash selection.

    Returns a ``(len(selection), len(batch))`` array; row ``i`` holds the
    positions of all keys under ``family[selection[i]]`` reduced modulo
    ``modulus``.  Family-level ``hash_many`` deduplicates the underlying
    work (one primitive pass per selected function; one shared base pass for
    double hashing).
    """
    return family.hash_many(batch, indexes=list(selection), modulus=modulus)


#: Batches at or below this size always take the memoised whole-batch pass:
#: a vectorized pass over so few keys is dominated by fixed numpy overhead,
#: so the reuse across engine stages is free.
_MEMO_BATCH_LIMIT = 1024

#: For larger batches, a group only takes the whole-batch pass when it covers
#: at least this fraction of the batch (the extra rows are nearly free and
#: later stages reuse the memo); smaller groups hash just their own rows.
_MEMO_GROUP_FRACTION = 0.6


def _positions_for_group(family, batch, family_index: int, group_rows, modulus: int):
    """Positions of the keys at ``group_rows`` under one family member.

    The HashExpressor chain walk and the HABF second round touch the same few
    family indexes repeatedly, so whole-batch passes memoised on the batch
    amortise well — but only when the group is a sizeable share of the batch
    (or the batch is small enough that a pass costs fixed overhead anyway).
    Otherwise hashing the group's own rows is strictly less work; ``take``
    slices numpy state only, so the subset costs no Python-level per-row
    effort.
    """
    np = vec.numpy_or_none()
    cache_key = ("family-index-positions", id(family), family_index, modulus)
    full = batch.cache.get(cache_key)
    if full is not None:
        return full[group_rows]
    total = len(batch)
    if total > _MEMO_BATCH_LIMIT and group_rows.size < _MEMO_GROUP_FRACTION * total:
        return np.asarray(
            family[family_index].hash_many(batch.take(group_rows), modulus)
        )
    full = family[family_index].hash_many(batch, modulus)
    batch.cache[cache_key] = full
    return full[group_rows]


def positions_for_matrix(family, batch: "vec.KeyBatch", selection_matrix, modulus: int, rows=None):
    """Bit positions under a per-key selection matrix.

    ``selection_matrix`` is ``(m, k)`` of family indexes — row ``i`` is the
    customised selection (as recovered from the HashExpressor) of the key at
    batch row ``rows[i]`` (``rows=None`` means rows ``0..m-1``, i.e. the
    whole batch).  Returns positions of the same shape.  Passing ``rows``
    instead of a ``batch.take`` sub-batch keeps the per-index hash memo on
    the *parent* batch, so the chain walk and the second-round probe share
    one vectorized pass per family index.
    """
    np = vec.numpy_or_none()
    selection_matrix = np.asarray(selection_matrix, dtype=np.int64)
    if rows is None:
        rows = np.arange(selection_matrix.shape[0])
    if isinstance(family, DoubleHashFamily):
        h1, h2 = family.base_hashes_many(batch)
        h1, odd = h1[rows], (h2 | np.uint64(1))[rows]
        steps = (selection_matrix + 1).astype(np.uint64)
        return (h1[:, None] + steps * odd[:, None]) % np.uint64(modulus)
    positions = np.zeros(selection_matrix.shape, dtype=np.uint64)
    for column in range(selection_matrix.shape[1]):
        indexes = selection_matrix[:, column]
        for family_index in np.unique(indexes):
            members = np.flatnonzero(indexes == family_index)
            positions[members, column] = _positions_for_group(
                family, batch, int(family_index), rows[members], modulus
            )
    return positions


def hash_for_index_vector(family, batch: "vec.KeyBatch", indexes, modulus: int, rows=None):
    """One hash per entry where entry ``i`` uses ``family[indexes[i]]``.

    The single-column case of :func:`positions_for_matrix`; used by the
    HashExpressor chain walk, where each step's next cell is addressed by the
    hash function stored in the current cell.  ``rows`` maps the entries onto
    batch rows, letting the walk hash only the chains still alive.
    """
    np = vec.numpy_or_none()
    return positions_for_matrix(
        family, batch, np.asarray(indexes, dtype=np.int64)[:, None], modulus, rows=rows
    )[:, 0]


__all__ = [
    "BatchMembership",
    "positions_for_selection",
    "positions_for_matrix",
    "hash_for_index_vector",
]
