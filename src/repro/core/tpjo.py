"""Two-Phase Joint Optimization (TPJO) — Section III-D of the paper.

TPJO builds the HABF: it inserts every positive key into the Bloom filter with
the initial hash selection ``H0``, then walks the negative keys that are still
false positives (the *collision keys*, ordered by descending cost) and tries
to re-map one of the positive keys responsible for each collision onto a
different hash function, so that the offending bit can be cleared.

Two runtime indexes drive the optimisation:

* ``V`` (Fig. 4) — for every Bloom-filter bit, whether it is mapped by positive
  keys at most once and, if exactly once, by which key.  Only such
  singly-mapped bits are safe to clear when their owner switches hashes.
* ``Γ`` (Fig. 5) — for every Bloom-filter bit, the set of currently-negative
  negative keys that map to it under ``H0``.  Before setting a new bit for an
  adjusted positive key, conflict detection (Algorithm 1) checks whether doing
  so would turn any of those protected keys into a new false positive, and if
  so whether the cost trade is worthwhile.

Phase-I selects the hash adjustment; phase-II attempts to insert the adjusted
selection into the HashExpressor.  The two phases are interleaved per
collision key, exactly as in Fig. 3: an adjustment is only committed when its
HashExpressor insertion succeeds.

The fast construction used by f-HABF (Section III-G) disables ``Γ``: no
conflict detection is performed, which speeds construction up at the price of
occasionally creating new (unprotected) collisions.

Construction runs on the batch engine when numpy is available: the H0
insertion and the negative-key classification each hash their whole key set
in one :func:`~repro.core.batch.positions_for_selection` pass, and candidate
evaluation gathers positions from cached per-family-index columns instead of
re-hashing the owner key per candidate.  The resulting filter is bit-for-bit
identical to the scalar construction (same shuffle order, same V/Γ updates,
same candidate ranking), pinned by
``tests/core/test_batch_build_equivalence.py``.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.batch import positions_for_selection
from repro.core.bloom import BloomFilter
from repro.core.hash_expressor import HashExpressor
from repro.core.params import HABFParams
from repro.errors import ConfigurationError
from repro.hashing import vectorized as vec
from repro.hashing.base import Key


@dataclass
class TPJOStats:
    """Bookkeeping produced by a TPJO run; useful for analysis and tests.

    Attributes:
        num_positive: Number of positive keys inserted.
        num_negative: Number of negative keys considered.
        initial_collisions: Collision keys found right after the H0 insertion.
        optimized: Collision keys successfully optimised (now negative).
        failed: Collision keys that could not be optimised.
        new_collisions: Negative keys that became collisions because of an
            adjustment and were re-enqueued.
        adjusted_positive_keys: Positive keys whose hash selection changed.
        expressor_insert_failures: Phase-II insertion attempts that failed.
        queue_passes: Total number of collision-queue pops processed.
    """

    num_positive: int = 0
    num_negative: int = 0
    initial_collisions: int = 0
    optimized: int = 0
    failed: int = 0
    new_collisions: int = 0
    adjusted_positive_keys: int = 0
    expressor_insert_failures: int = 0
    queue_passes: int = 0


@dataclass
class _Unit:
    """A unit of the V index: ``(singleflag, keyid)`` as in Fig. 4."""

    singleflag: bool = True
    keyid: Optional[Key] = None


class TPJOOptimizer:
    """Runs TPJO over a Bloom filter + HashExpressor pair.

    Args:
        bloom: The (empty) Bloom filter to populate.
        expressor: The (empty) HashExpressor to populate.
        params: Structural parameters (k, cell size, queue-pass bound, seed).
        use_gamma: Enable the ``Γ`` index and conflict detection (HABF);
            ``False`` reproduces the f-HABF fast construction.
    """

    def __init__(
        self,
        bloom: BloomFilter,
        expressor: HashExpressor,
        params: HABFParams,
        use_gamma: bool = True,
    ) -> None:
        self._bloom = bloom
        self._expressor = expressor
        self._params = params
        self._use_gamma = use_gamma
        self._rng = random.Random(params.seed)
        self._family = bloom.family
        self._h0: List[int] = bloom.initial_selection
        self._k = params.k
        if len(self._h0) != self._k:
            raise ConfigurationError("Bloom filter H0 size must equal params.k")
        # Per-positive-key current selection; keys absent from the map use H0.
        self._selections: Dict[Key, List[int]] = {}
        self._adjusted: Set[Key] = set()
        # V index: one unit per Bloom-filter bit.
        self._units: List[_Unit] = []
        # Γ index: bit position -> set of protected (currently negative) keys.
        self._gamma: Dict[int, Set[Key]] = {}
        # Cached H0 bit positions for negative keys.
        self._negative_positions: Dict[Key, Tuple[int, ...]] = {}
        self._costs: Dict[Key, float] = {}
        # Batch-construction state: the positives encoded once as a KeyBatch,
        # each key's batch row, and lazily materialised per-family-index
        # position columns.  Candidate evaluation then re-reads a cached
        # column instead of re-hashing the owner key per candidate.
        self._positive_batch = None
        self._positive_rows: Dict[Key, int] = {}
        self._family_columns: Dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def selection_for(self, key: Key) -> List[int]:
        """Return the current hash selection for a positive key (H0 if unadjusted)."""
        return list(self._selections.get(key, self._h0))

    @property
    def adjusted_keys(self) -> Set[Key]:
        """Positive keys whose hash selection was customised."""
        return set(self._adjusted)

    def optimize(
        self,
        positives: Sequence[Key],
        negatives: Sequence[Key],
        costs: Optional[Mapping[Key, float]] = None,
    ) -> TPJOStats:
        """Run the full construction: H0 insertion, then TPJO optimisation.

        Args:
            positives: The positive key set ``S``.
            negatives: The known negative key set ``O``.
            costs: Optional per-key misidentification costs ``Θ``; keys not in
                the mapping (and all keys when ``None``) default to cost 1.0.

        Returns:
            A :class:`TPJOStats` summary of the run.
        """
        stats = TPJOStats(num_positive=len(positives), num_negative=len(negatives))
        self._costs = dict(costs) if costs else {}

        self._insert_positives(positives)
        collision_keys = self._classify_negatives(negatives)
        stats.initial_collisions = len(collision_keys)

        queue = deque(
            sorted(collision_keys, key=lambda key: (-self._cost(key), repr(key)))
        )
        attempts: Dict[Key, int] = {}
        resolved: Set[Key] = set()
        failed: Set[Key] = set()

        while queue:
            eck = queue.popleft()
            stats.queue_passes += 1
            attempts[eck] = attempts.get(eck, 0) + 1
            if attempts[eck] > self._params.max_queue_passes:
                failed.add(eck)
                continue
            positions = self._negative_positions[eck]
            if not self._is_false_positive(positions):
                # Already fixed as a side effect of another adjustment.
                resolved.add(eck)
                failed.discard(eck)
                self._protect(eck)
                continue
            new_collisions = self._optimize_collision_key(eck, stats)
            if new_collisions is None:
                failed.add(eck)
                continue
            resolved.add(eck)
            failed.discard(eck)
            self._protect(eck)
            for newly_colliding in new_collisions:
                self._unprotect(newly_colliding)
                queue.append(newly_colliding)
                stats.new_collisions += 1

        stats.optimized = len(resolved)
        stats.failed = len(failed - resolved)
        stats.adjusted_positive_keys = len(self._adjusted)
        # The optimisation queue is drained; release the cached hash state so
        # the built filter does not pin the whole positive batch in memory.
        self._positive_batch = None
        self._positive_rows = {}
        self._family_columns = {}
        return stats

    # ------------------------------------------------------------------ #
    # Construction of the runtime indexes
    # ------------------------------------------------------------------ #
    def _insert_positives(self, positives: Sequence[Key]) -> None:
        self._units = [_Unit() for _ in range(self._bloom.num_bits)]
        order = list(positives)
        self._rng.shuffle(order)
        np = vec.numpy_or_none()
        if np is not None and order:
            # Bulk insert: hash the whole (shuffled) positive set under H0 in
            # one engine pass, commit the bits with one set_many, and walk the
            # resulting position lists to build the V index in the same order
            # the scalar loop would.  The KeyBatch is kept for the rest of
            # the run so candidate evaluation reuses its hash memo.
            batch = vec.KeyBatch(order)
            matrix = positions_for_selection(
                self._family, batch, self._h0, self._bloom.num_bits
            )
            self._bloom.add_positions_many(matrix, len(order))
            self._positive_batch = batch
            self._positive_rows = {key: row for row, key in enumerate(order)}
            for key, positions in zip(order, matrix.T.tolist()):
                for position in positions:
                    self._record_positive_mapping(position, key)
            return
        for key in order:
            positions = self._bloom.bit_positions(key, self._h0)
            self._bloom.add_with_selection(key, self._h0)
            for position in positions:
                self._record_positive_mapping(position, key)

    def _record_positive_mapping(self, position: int, key: Key) -> None:
        unit = self._units[position]
        if unit.singleflag and unit.keyid is None:
            unit.keyid = key
        elif unit.singleflag:
            unit.singleflag = False
        # else: already multi-mapped, nothing to do.

    def _classify_negatives(self, negatives: Sequence[Key]) -> List[Key]:
        position_lists = self._negative_position_lists(negatives)
        collisions: List[Key] = []
        for key, positions in zip(negatives, position_lists):
            self._negative_positions[key] = positions
            if self._is_false_positive(positions):
                collisions.append(key)
            else:
                self._protect(key)
        return collisions

    def _negative_position_lists(self, negatives: Sequence[Key]) -> List[Tuple[int, ...]]:
        """H0 positions of every negative key: one engine pass when possible."""
        np = vec.numpy_or_none()
        if np is not None and negatives:
            matrix = positions_for_selection(
                self._family, vec.KeyBatch(negatives), self._h0, self._bloom.num_bits
            )
            return [tuple(column) for column in matrix.T.tolist()]
        return [
            tuple(self._bloom.bit_positions(key, self._h0)) for key in negatives
        ]

    def _protect(self, key: Key) -> None:
        """Register a currently-negative key in Γ so adjustments avoid breaking it."""
        if not self._use_gamma:
            return
        for position in self._negative_positions[key]:
            self._gamma.setdefault(position, set()).add(key)

    def _unprotect(self, key: Key) -> None:
        """Remove a key from Γ (it became a collision again and re-enters the queue)."""
        if not self._use_gamma:
            return
        for position in self._negative_positions[key]:
            bucket = self._gamma.get(position)
            if bucket is not None:
                bucket.discard(key)

    # ------------------------------------------------------------------ #
    # Per-collision-key optimisation (phase-I + phase-II)
    # ------------------------------------------------------------------ #
    def _optimize_collision_key(
        self, eck: Key, stats: TPJOStats
    ) -> Optional[List[Key]]:
        """Try to make ``eck`` test negative.

        Returns the list of protected keys that became new collisions as a
        side effect (possibly empty), or ``None`` if the optimisation failed.
        """
        positions = self._negative_positions[eck]
        xi_ck = self._single_mapped_units(positions)
        if not xi_ck:
            return None
        cost_eck = self._cost(eck)
        for position in xi_ck:
            owner = self._units[position].keyid
            assert owner is not None
            result = self._try_adjust_owner(owner, position, cost_eck, stats)
            if result is not None:
                return result
        return None

    def _single_mapped_units(self, positions: Iterable[int]) -> List[int]:
        """Return ξck: positions whose unit is singly-mapped by an unadjusted key."""
        found: List[int] = []
        seen: Set[int] = set()
        for position in positions:
            if position in seen:
                continue
            seen.add(position)
            unit = self._units[position]
            if unit.singleflag and unit.keyid is not None and unit.keyid not in self._adjusted:
                found.append(position)
        return found

    def _try_adjust_owner(
        self, owner: Key, old_position: int, cost_eck: float, stats: TPJOStats
    ) -> Optional[List[Key]]:
        """Phase-I candidate generation + phase-II HashExpressor insertion."""
        current = self._selections.get(owner, self._h0)
        owner_positions = [self._owner_position(owner, index) for index in current]
        try:
            slot = owner_positions.index(old_position)
        except ValueError:
            return None
        replaced_index = current[slot]

        candidates = self._candidate_adjustments(owner, current, slot, cost_eck)
        for new_position, new_index, victims in candidates:
            new_selection = list(current)
            new_selection[slot] = new_index
            if not self._expressor.try_insert(owner, new_selection):
                stats.expressor_insert_failures += 1
                continue
            self._commit_adjustment(
                owner, old_position, new_position, replaced_index, new_selection
            )
            return list(victims)
        return None

    def _candidate_adjustments(
        self, owner: Key, current: Sequence[int], slot: int, cost_eck: float
    ) -> List[Tuple[int, int, List[Key]]]:
        """Rank candidate hash replacements for ``owner``'s ``slot``.

        Returns tuples ``(new_bit_position, new_family_index, victims)`` in
        preference order: replacements landing on an already-set bit first
        (no new collisions possible), then replacements whose conflict
        detection finds no victims, then cost-favourable trades.
        """
        limit = self._expressor.max_storable_index
        in_use = set(current)
        free_candidates: List[Tuple[int, int]] = []
        clean_candidates: List[Tuple[int, int]] = []
        trade_candidates: List[Tuple[float, int, int, List[Key]]] = []
        for family_index in range(min(len(self._family), limit)):
            if family_index in in_use:
                continue
            new_position = self._owner_position(owner, family_index)
            if self._bloom.bits.test(new_position):
                free_candidates.append((new_position, family_index))
                continue
            if not self._use_gamma:
                # f-HABF: no conflict detection, accept blindly after the
                # free candidates.
                clean_candidates.append((new_position, family_index))
                continue
            victims = self._conflict_detection(new_position)
            if not victims:
                clean_candidates.append((new_position, family_index))
                continue
            victim_cost = sum(self._cost(victim) for victim in victims)
            gain = cost_eck - victim_cost
            if gain >= 0:
                trade_candidates.append((gain, new_position, family_index, victims))

        ranked: List[Tuple[int, int, List[Key]]] = []
        for new_position, family_index in free_candidates:
            ranked.append((new_position, family_index, []))
        for new_position, family_index in clean_candidates:
            ranked.append((new_position, family_index, []))
        for gain, new_position, family_index, victims in sorted(
            trade_candidates, key=lambda item: -item[0]
        ):
            ranked.append((new_position, family_index, victims))
        return ranked

    def _conflict_detection(self, new_position: int) -> List[Key]:
        """Algorithm 1: protected keys that would become false positives if
        ``new_position`` flipped from 0 to 1."""
        bucket = self._gamma.get(new_position)
        if not bucket:
            return []
        victims: List[Key] = []
        for protected in bucket:
            positions = self._negative_positions[protected]
            if all(
                position == new_position or self._bloom.bits.test(position)
                for position in positions
            ):
                victims.append(protected)
        return victims

    def _commit_adjustment(
        self,
        owner: Key,
        old_position: int,
        new_position: int,
        replaced_index: int,
        new_selection: List[int],
    ) -> None:
        """Apply an accepted adjustment to the Bloom filter and the V index."""
        self._bloom.clear_position(old_position)
        self._bloom.set_position(new_position)
        self._selections[owner] = new_selection
        self._adjusted.add(owner)
        # The old unit is no longer mapped by anything.
        self._units[old_position] = _Unit()
        # The new unit gains one mapping from the adjusted owner.
        self._record_positive_mapping(new_position, owner)

    # ------------------------------------------------------------------ #
    # Small helpers
    # ------------------------------------------------------------------ #
    def _owner_position(self, key: Key, family_index: int) -> int:
        """Bit position of a positive key under one family member.

        Candidate evaluation probes every family member for each collision
        owner; instead of re-hashing the owner per candidate, the position
        comes from a cached whole-batch column (``family[index]`` over all
        positives, materialised lazily and reusing the KeyBatch hash memo
        from the H0 insertion pass).  Falls back to the scalar hash for keys
        outside the batch or when numpy is absent.
        """
        if self._positive_batch is not None:
            row = self._positive_rows.get(key)
            if row is not None:
                column = self._family_columns.get(family_index)
                if column is None:
                    column = self._family[family_index].hash_many(
                        self._positive_batch, self._bloom.num_bits
                    )
                    self._family_columns[family_index] = column
                return int(column[row])
        return self._family[family_index](key, self._bloom.num_bits)

    def _cost(self, key: Key) -> float:
        return float(self._costs.get(key, 1.0))

    def _is_false_positive(self, positions: Iterable[int]) -> bool:
        return all(self._bloom.bits.test(position) for position in positions)
