"""HashExpressor: the lightweight table storing customised hash selections.

Structure (paper Fig. 2(a)): ``ω`` cells, each a 2-tuple ``(endbit, hashindex)``.
``hashindex`` stores a 1-based index into the global hash family (0 means the
cell is empty); ``endbit`` marks the final cell of an inserted key's chain.

Insertion (Fig. 2(b)) walks a chain of cells: the key is first mapped with a
predefined unified hash ``f``; each visited cell either already stores one of
the key's still-unassigned hash functions (the chain reuses it) or is empty
(one of the unassigned functions is placed there); the next cell is addressed
by the hash function just assigned; the chain ends when all ``k`` functions
are placed, and the final cell's ``endbit`` is set.

Query (Fig. 2(c)) retraces the chain and returns the recovered hash selection
only if it reaches ``k`` functions and the final cell's ``endbit`` is 1 —
otherwise the key is assumed to use the initial selection ``H0``.

The paper's Case-1 step says "randomly choose an invalid hash function"; this
implementation instead performs a small depth-first search over the (at most
``k!``, with ``k`` ≈ 3) placement orders and commits the first order that
completes the chain, preferring orders that reuse already-stored cells.  This
matches the paper's own refinement ("we store the one with maximized overlap
with hash functions already stored in HashExpressor") and only increases the
insertion success probability; the query semantics are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hashing import vectorized as vec
from repro.hashing.base import HashFunction, Key
from repro.hashing.primitives import xxhash
from repro.hashing.registry import HashFamily

#: The unified hash ``f`` used to address the first cell of every chain.
_UNIFIED_HASH = HashFunction(name="unified-f", index=-1, primitive=xxhash, seed=0x5EED_F00D)


@dataclass(frozen=True)
class ExpressorStats:
    """Occupancy statistics, used by the memory/analysis experiments."""

    num_cells: int
    occupied_cells: int
    inserted_keys: int
    cell_bits: int

    @property
    def load_factor(self) -> float:
        """Fraction of cells that are non-empty."""
        if self.num_cells == 0:
            return 0.0
        return self.occupied_cells / self.num_cells


class HashExpressor:
    """The ω-cell hash table storing adjusted hash selections (paper Fig. 2).

    Args:
        num_cells: Number of cells ``ω``.
        cell_hash_bits: Bits of ``hashindex`` per cell; limits which hash
            family indexes can be stored (index < ``2**cell_hash_bits - 1``).
        family: The global hash family whose indexes the cells reference.
    """

    def __init__(self, num_cells: int, cell_hash_bits: int, family: HashFamily) -> None:
        if num_cells <= 0:
            raise ConfigurationError("HashExpressor needs at least one cell")
        if cell_hash_bits < 1:
            raise ConfigurationError("cell_hash_bits must be at least 1")
        self._num_cells = num_cells
        self._cell_hash_bits = cell_hash_bits
        self._family = family
        # hashindex per cell, 0 = empty, otherwise 1-based family index.
        self._hash_index: List[int] = [0] * num_cells
        self._endbit: List[bool] = [False] * num_cells
        self._inserted_keys = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        """Number of cells ω."""
        return self._num_cells

    @property
    def cell_hash_bits(self) -> int:
        """Bits of ``hashindex`` per cell."""
        return self._cell_hash_bits

    @property
    def max_storable_index(self) -> int:
        """Largest family index a cell can store (exclusive upper bound)."""
        return (1 << self._cell_hash_bits) - 1

    @property
    def inserted_keys(self) -> int:
        """Number of keys whose selections were successfully inserted."""
        return self._inserted_keys

    def size_in_bits(self) -> int:
        """Space of the serialized cell array: ``ω * (1 + cell_hash_bits)`` bits."""
        return self._num_cells * (1 + self._cell_hash_bits)

    def stats(self) -> ExpressorStats:
        """Return occupancy statistics."""
        occupied = sum(1 for value in self._hash_index if value != 0)
        return ExpressorStats(
            num_cells=self._num_cells,
            occupied_cells=occupied,
            inserted_keys=self._inserted_keys,
            cell_bits=1 + self._cell_hash_bits,
        )

    def cell(self, index: int) -> Tuple[bool, int]:
        """Return ``(endbit, hashindex)`` of cell ``index`` (hashindex 1-based, 0=empty)."""
        return self._endbit[index], self._hash_index[index]

    def is_empty_cell(self, index: int) -> bool:
        """A cell is empty when both fields are zero (paper's definition)."""
        return self._hash_index[index] == 0 and not self._endbit[index]

    def storable(self, selection: Sequence[int]) -> bool:
        """Return True if every family index in ``selection`` fits in a cell."""
        limit = self.max_storable_index
        return all(0 <= index < limit for index in selection)

    # ------------------------------------------------------------------ #
    # Cell addressing
    # ------------------------------------------------------------------ #
    def _first_cell(self, key: Key) -> int:
        return _UNIFIED_HASH(key, self._num_cells)

    def _next_cell(self, key: Key, family_index: int) -> int:
        return self._family[family_index](key, self._num_cells)

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def try_insert(self, key: Key, selection: Sequence[int]) -> bool:
        """Attempt to insert ``selection`` (family indexes) for ``key``.

        Returns True and commits the cell writes if a complete chain can be
        built, otherwise returns False and leaves the table untouched.
        """
        if len(set(selection)) != len(selection):
            raise ConfigurationError("hash selection must not contain duplicates")
        if not self.storable(selection):
            return False
        plan = self._search_chain(key, list(selection))
        if plan is None:
            return False
        for cell_index, family_index in plan:
            self._hash_index[cell_index] = family_index + 1
        last_cell = plan[-1][0]
        self._endbit[last_cell] = True
        self._inserted_keys += 1
        return True

    def can_insert(self, key: Key, selection: Sequence[int]) -> bool:
        """Return True if :meth:`try_insert` would succeed, without committing."""
        if not self.storable(selection):
            return False
        return self._search_chain(key, list(selection)) is not None

    def _search_chain(
        self, key: Key, selection: List[int]
    ) -> Optional[List[Tuple[int, int]]]:
        """Depth-first search for a placement order completing the chain.

        Returns a list of ``(cell_index, family_index)`` assignments covering
        every member of ``selection``, or ``None`` if no order works.
        """
        first = self._first_cell(key)
        return self._extend_chain(key, first, frozenset(selection), [])

    def _extend_chain(
        self,
        key: Key,
        cell_index: int,
        remaining: frozenset,
        assigned: List[Tuple[int, int]],
    ) -> Optional[List[Tuple[int, int]]]:
        if not remaining:
            return assigned
        # A cell may appear at most once per chain: revisiting means failure
        # because its stored hash is already consumed by this chain.
        if any(cell_index == prior_cell for prior_cell, _ in assigned):
            return None
        stored = self._hash_index[cell_index]
        if stored != 0:
            family_index = stored - 1
            if family_index not in remaining:
                return None
            # Case 2: the cell already stores one of the pending functions.
            next_cell = self._next_cell(key, family_index)
            return self._extend_chain(
                key,
                next_cell,
                remaining - {family_index},
                assigned + [(cell_index, family_index)],
            )
        # Case 1: empty cell — try each pending function, preferring the order
        # that is most likely to reuse already-populated downstream cells.
        candidates = sorted(
            remaining,
            key=lambda idx: (self.is_empty_cell(self._next_cell(key, idx)), idx),
        )
        for family_index in candidates:
            next_cell = self._next_cell(key, family_index)
            result = self._extend_chain(
                key,
                next_cell,
                remaining - {family_index},
                assigned + [(cell_index, family_index)],
            )
            if result is not None:
                return result
        return None

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #
    def query(self, key: Key, k: int) -> Optional[List[int]]:
        """Retrieve the customised hash selection for ``key``.

        Returns the list of ``k`` family indexes if the chain completes with a
        set ``endbit``, otherwise ``None`` (meaning the key should fall back to
        the initial selection ``H0``).  As in the paper, a non-inserted key may
        occasionally receive a spurious selection (the HashExpressor's own
        small false-positive rate); the two-round HABF query absorbs this.
        """
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        cell_index = self._first_cell(key)
        selection: List[int] = []
        for _ in range(k):
            stored = self._hash_index[cell_index]
            if stored == 0:
                return None
            family_index = stored - 1
            selection.append(family_index)
            last_cell = cell_index
            cell_index = self._next_cell(key, family_index)
        if not self._endbit[last_cell]:
            return None
        if len(set(selection)) != len(selection):
            # A chain that revisits a hash cannot belong to an inserted key.
            return None
        return selection

    def query_many_batch(self, batch: "vec.KeyBatch", k: int):
        """Vector form of :meth:`query` over an encoded batch.

        Walks all chains in lock-step: one iteration per chain position, each
        doing whole-batch array reads of the cell table plus one grouped hash
        pass for the next-cell addresses.  Returns ``(selections, valid)``
        where ``selections`` is an ``(n, k)`` int64 matrix and ``valid`` a
        bool vector — row ``r`` is meaningful only where ``valid[r]`` is
        True; everywhere else the key falls back to ``H0`` (the scalar
        ``None``).  Requires numpy (callers gate on the engine).
        """
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        from repro.core.batch import hash_for_index_vector

        np = vec.numpy_or_none()
        n = len(batch)
        hash_index = np.asarray(self._hash_index, dtype=np.int64)
        cell = np.asarray(
            _UNIFIED_HASH.hash_many(batch, self._num_cells), dtype=np.int64
        )
        alive = np.ones(n, dtype=bool)
        selections = np.zeros((n, k), dtype=np.int64)
        for step in range(k):
            stored = hash_index[cell]
            alive &= stored != 0
            family_index = np.maximum(stored - 1, 0)
            selections[:, step] = family_index
            if step + 1 < k:
                live = np.flatnonzero(alive)
                if not live.size:
                    break
                # Only the chains still alive need their next cell hashed.
                cell[live] = hash_for_index_vector(
                    self._family, batch, family_index[live], self._num_cells, rows=live
                ).astype(np.int64)
        valid = alive & np.asarray(self._endbit, dtype=bool)[cell]
        if k > 1:
            ordered = np.sort(selections, axis=1)
            # A chain that revisits a hash cannot belong to an inserted key.
            valid &= ~(ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
        return selections, valid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"HashExpressor(cells={self._num_cells}, occupied={stats.occupied_cells}, "
            f"keys={self._inserted_keys})"
        )
