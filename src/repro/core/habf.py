"""Hash Adaptive Bloom Filter (HABF) and its fast variant f-HABF.

A :class:`HABF` is the composition the paper's Fig. 1 shows: a standard Bloom
filter plus a :class:`~repro.core.hash_expressor.HashExpressor`, constructed
by the :class:`~repro.core.tpjo.TPJOOptimizer` from the positive keys, the
known negative keys and (optionally) per-key misidentification costs.

Queries follow the two-round pattern of Section III-E, which preserves the
zero-false-negative guarantee:

1. test the key with the initial hash selection ``H0``; if it hits, report
   *positive*;
2. otherwise ask the HashExpressor for a customised selection; if one is
   returned, test the key again with it and report the result, else report
   *negative*.

:class:`FastHABF` (the paper's f-HABF) trades accuracy for construction and
query speed by using Kirsch–Mitzenmacher double hashing and disabling the
``Γ`` conflict-detection index during construction.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.core.batch import BatchMembership
from repro.core.bloom import BloomFilter
from repro.core.hash_expressor import HashExpressor
from repro.core.params import HABFParams
from repro.core.tpjo import TPJOOptimizer, TPJOStats
from repro.errors import ConfigurationError, ConstructionError
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily
from repro.hashing.registry import GLOBAL_HASH_FAMILY, HashFamily

FamilyLike = Union[HashFamily, DoubleHashFamily]


class HABF(BatchMembership):
    """Hash Adaptive Bloom Filter (paper Sections III-C through III-E).

    The usual way to obtain one is :meth:`HABF.build`, which runs the full
    TPJO construction.  The resulting object supports ``key in habf`` with the
    two-round query and exposes the exact space split between its Bloom filter
    and HashExpressor halves.

    Args:
        params: Structural parameters (space budget, k, ∆, cell size, seed).
        family: Hash family to draw from; defaults to the Table II family.
        use_gamma: Whether TPJO should run conflict detection; ``False`` is the
            f-HABF fast construction.
    """

    #: Human-readable algorithm label used by the experiment reports.
    algorithm_name = "HABF"

    def __init__(
        self,
        params: HABFParams,
        family: Optional[FamilyLike] = None,
        use_gamma: bool = True,
    ) -> None:
        self._params = params
        self._family: FamilyLike = family if family is not None else GLOBAL_HASH_FAMILY
        if params.k > len(self._family):
            raise ConfigurationError(
                f"k={params.k} exceeds the hash family size {len(self._family)}"
            )
        if params.bloom_bits <= 0:
            raise ConfigurationError("space budget leaves no room for the Bloom filter")
        self._use_gamma = use_gamma
        self._bloom = BloomFilter(
            num_bits=max(1, params.bloom_bits),
            num_hashes=params.k,
            family=self._family,
        )
        if params.num_cells > 0:
            self._expressor: Optional[HashExpressor] = HashExpressor(
                num_cells=params.num_cells,
                cell_hash_bits=params.cell_hash_bits,
                family=self._family,  # type: ignore[arg-type]
            )
        else:
            self._expressor = None
        self._stats: Optional[TPJOStats] = None
        self._built = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        positives: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        params: Optional[HABFParams] = None,
        bits_per_key: float = 10.0,
        family: Optional[FamilyLike] = None,
        use_gamma: bool = True,
    ) -> "HABF":
        """Construct a HABF from key sets.

        Args:
            positives: The positive key set ``S`` (must be non-empty).
            negatives: The known negative key set ``O`` used to steer TPJO.
            costs: Optional per-key misidentification costs ``Θ``.
            params: Explicit structural parameters; if omitted they are derived
                from ``bits_per_key`` and ``len(positives)``.
            bits_per_key: Space budget used when ``params`` is omitted.
            family: Hash family override.
            use_gamma: Enable conflict detection (disable for f-HABF behaviour).
        """
        positives = list(positives)
        if not positives:
            raise ConstructionError("cannot build a HABF from an empty positive set")
        if params is None:
            params = HABFParams.from_bits_per_key(bits_per_key, len(positives))
        habf = cls(params=params, family=family, use_gamma=use_gamma)
        habf.fit(positives, negatives, costs)
        return habf

    def fit(
        self,
        positives: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
    ) -> TPJOStats:
        """Run the TPJO construction on this (empty) filter and return its stats."""
        if self._built:
            raise ConstructionError("this HABF has already been built")
        positives = list(positives)
        negatives = list(negatives)
        if not positives:
            raise ConstructionError("cannot build a HABF from an empty positive set")
        overlap = set(positives) & set(negatives)
        if overlap:
            raise ConstructionError(
                f"positive and negative key sets must be disjoint; "
                f"{len(overlap)} keys appear in both"
            )
        if self._expressor is None or not negatives:
            # Degenerate case (∆=0 or no negative information): plain Bloom
            # filter, bulk-inserted through the engine.
            self._bloom.add_many(positives)
            self._stats = TPJOStats(
                num_positive=len(positives), num_negative=len(negatives)
            )
        else:
            optimizer = TPJOOptimizer(
                bloom=self._bloom,
                expressor=self._expressor,
                params=self._params,
                use_gamma=self._use_gamma,
            )
            self._stats = optimizer.optimize(positives, negatives, costs)
        self._built = True
        return self._stats

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def contains(self, key: Key) -> bool:
        """Two-round membership test (zero false negatives by construction)."""
        if self._bloom.contains(key):
            return True
        if self._expressor is None:
            return False
        selection = self._expressor.query(key, self._params.k)
        if selection is None:
            return False
        return self._bloom.contains_with_selection(key, selection)

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def _contains_batch(self, batch):
        """Batch form of the two-round query.

        Round 1 is one vectorized H0 Bloom probe over the whole batch.  Only
        the first-round misses (typically the negatives) enter round 2: one
        lock-step HashExpressor chain walk recovers their customised
        selections, and the keys with a valid selection get a second
        vectorized Bloom probe under the decoded per-key selection matrix.
        """
        from repro.hashing import vectorized as vec

        np = vec.numpy_or_none()
        answers = self._bloom._contains_batch(batch)
        expressor = self._expressor
        if expressor is None:
            return answers
        missed = np.flatnonzero(~answers)
        if not missed.size:
            return answers
        misses = batch.take(missed)
        selections, valid = expressor.query_many_batch(misses, self._params.k)
        recovered = np.flatnonzero(valid)
        if not recovered.size:
            return answers
        # Round 2 probes on the same `misses` batch object (rows=recovered)
        # so it reuses the per-family-index hashes the chain walk memoised.
        answers[missed[recovered]] = self._bloom._probe_matrix(
            misses, selections[recovered], rows=recovered
        )
        return answers

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def params(self) -> HABFParams:
        """The structural parameters this filter was built with."""
        return self._params

    @property
    def bloom(self) -> BloomFilter:
        """The underlying standard Bloom filter."""
        return self._bloom

    @property
    def expressor(self) -> Optional[HashExpressor]:
        """The HashExpressor, or ``None`` when ∆ = 0."""
        return self._expressor

    @property
    def construction_stats(self) -> Optional[TPJOStats]:
        """TPJO statistics from the build, or ``None`` before :meth:`fit`."""
        return self._stats

    def size_in_bits(self) -> int:
        """Total serialized size: Bloom-filter bits plus HashExpressor cells."""
        expressor_bits = self._expressor.size_in_bits() if self._expressor else 0
        return self._bloom.size_in_bits() + expressor_bits

    def size_in_bytes(self) -> int:
        """Total serialized size in bytes (rounded up)."""
        return (self.size_in_bits() + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cells = self._expressor.num_cells if self._expressor else 0
        return (
            f"{self.algorithm_name}(bloom_bits={self._bloom.num_bits}, "
            f"cells={cells}, k={self._params.k})"
        )


class FastHABF(HABF):
    """f-HABF: double hashing plus the Γ-free fast construction (Section III-G)."""

    algorithm_name = "f-HABF"

    def __init__(
        self,
        params: HABFParams,
        family: Optional[FamilyLike] = None,
        base_primitive: str = "xxhash",
    ) -> None:
        if family is None:
            family = DoubleHashFamily(
                size=min(len(GLOBAL_HASH_FAMILY), max(params.k, params.max_hash_functions)),
                primitive=base_primitive,
                seed=params.seed,
            )
        super().__init__(params=params, family=family, use_gamma=False)

    @classmethod
    def build(
        cls,
        positives: Sequence[Key],
        negatives: Sequence[Key] = (),
        costs: Optional[Mapping[Key, float]] = None,
        params: Optional[HABFParams] = None,
        bits_per_key: float = 10.0,
        family: Optional[FamilyLike] = None,
        use_gamma: bool = False,
        base_primitive: str = "xxhash",
    ) -> "FastHABF":
        """Construct an f-HABF; mirrors :meth:`HABF.build`."""
        positives = list(positives)
        if not positives:
            raise ConstructionError("cannot build a HABF from an empty positive set")
        if params is None:
            params = HABFParams.from_bits_per_key(bits_per_key, len(positives))
        habf = cls(params=params, family=family, base_primitive=base_primitive)
        habf.fit(positives, negatives, costs)
        return habf
