"""Core data structures of the HABF reproduction.

This subpackage contains the paper's primary contribution:

* :class:`~repro.core.bitarray.BitArray` — the compact bit vector shared by
  every filter.
* :class:`~repro.core.bloom.BloomFilter` — the standard Bloom filter with a
  per-key hash-subset hook (the substrate HABF builds on).
* :class:`~repro.core.hash_expressor.HashExpressor` — the lightweight hash
  table storing customised hash selections (Fig. 2 of the paper).
* :class:`~repro.core.tpjo.TPJOOptimizer` — the Two-Phase Joint Optimization
  algorithm (Section III-D, Algorithm 1, Figs. 3–7).
* :class:`~repro.core.habf.HABF` — the full filter with the two-round query
  (Fig. 1, Section III-E) and its fast variant :class:`~repro.core.habf.FastHABF`.
* :class:`~repro.core.batch.BatchMembership` — the batch-membership engine
  mixin every filter shares: ``contains_many`` as one array program over a
  :class:`~repro.hashing.vectorized.KeyBatch`, with a scalar fallback when
  numpy is absent.
"""

from repro.core.batch import BatchMembership
from repro.core.bitarray import BitArray
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.habf import HABF, FastHABF
from repro.core.hash_expressor import HashExpressor
from repro.core.params import HABFParams
from repro.core.tpjo import TPJOOptimizer, TPJOStats

__all__ = [
    "BatchMembership",
    "BitArray",
    "BloomFilter",
    "optimal_num_hashes",
    "HashExpressor",
    "HABF",
    "FastHABF",
    "HABFParams",
    "TPJOOptimizer",
    "TPJOStats",
]
