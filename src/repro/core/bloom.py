"""Standard Bloom filter with a per-key hash-selection hook.

This is the substrate the paper builds HABF on.  Besides the classic
``add``/``contains`` interface it exposes:

* ``add_with_selection`` / ``contains_with_selection`` — insert or query a key
  with an explicit subset of the global hash family, which is exactly the hook
  HABF's two-round query and the TPJO optimizer need;
* ``bit_positions`` — the positions a key maps to under a given selection,
  used by TPJO's runtime indexes ``V`` and ``Γ``;
* ``clear_position`` — used by TPJO when an adjusted key abandons a bit that
  (per the ``V`` index) nothing else maps to.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.batch import BatchMembership, positions_for_matrix, positions_for_selection
from repro.core.bitarray import BitArray
from repro.errors import ConfigurationError
from repro.hashing.base import Key
from repro.hashing.double_hashing import DoubleHashFamily
from repro.hashing.registry import GLOBAL_HASH_FAMILY, HashFamily

FamilyLike = Union[HashFamily, DoubleHashFamily]


def optimal_num_hashes(bits_per_key: float) -> int:
    """Return the FPR-optimal hash count ``k = ln2 · b`` (at least 1)."""
    if bits_per_key <= 0:
        raise ConfigurationError("bits_per_key must be positive")
    return max(1, int(round(math.log(2) * bits_per_key)))


class BloomFilter(BatchMembership):
    """A standard Bloom filter over a configurable hash family.

    Args:
        num_bits: Size ``m`` of the underlying bit array.
        num_hashes: Number of hash functions ``k`` applied per key.
        family: Hash family to draw functions from; defaults to the paper's
            Table II family.  A :class:`~repro.hashing.double_hashing.DoubleHashFamily`
            may be supplied for Kirsch–Mitzenmacher double hashing.
        selection: Initial hash selection ``H0`` as indexes into ``family``;
            defaults to the first ``num_hashes`` members.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int,
        family: Optional[FamilyLike] = None,
        selection: Optional[Sequence[int]] = None,
    ) -> None:
        if num_bits <= 0:
            raise ConfigurationError("num_bits must be positive")
        if num_hashes < 1:
            raise ConfigurationError("num_hashes must be at least 1")
        self._family: FamilyLike = family if family is not None else GLOBAL_HASH_FAMILY
        if num_hashes > len(self._family):
            raise ConfigurationError(
                f"num_hashes={num_hashes} exceeds hash family size {len(self._family)}"
            )
        self._bits = BitArray(num_bits)
        self._num_hashes = num_hashes
        if selection is None:
            self._initial_selection: List[int] = self._family.initial_selection(num_hashes)
        else:
            self._initial_selection = list(selection)
            if len(self._initial_selection) != num_hashes:
                raise ConfigurationError(
                    "selection length must equal num_hashes "
                    f"({len(self._initial_selection)} != {num_hashes})"
                )
        self._num_items = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_bits(self) -> int:
        """Size ``m`` of the bit array."""
        return len(self._bits)

    @property
    def num_hashes(self) -> int:
        """Number of hash functions ``k`` per key."""
        return self._num_hashes

    @property
    def family(self) -> FamilyLike:
        """The hash family this filter draws from."""
        return self._family

    @property
    def initial_selection(self) -> List[int]:
        """The default hash selection ``H0`` (indexes into the family)."""
        return list(self._initial_selection)

    @property
    def num_items(self) -> int:
        """Number of keys inserted so far."""
        return self._num_items

    @property
    def bits(self) -> BitArray:
        """The underlying bit array (shared, not copied)."""
        return self._bits

    def fill_ratio(self) -> float:
        """Fraction of bits set to 1."""
        return self._bits.fill_ratio()

    def size_in_bits(self) -> int:
        """Space used by the bit payload, in bits."""
        return len(self._bits)

    def size_in_bytes(self) -> int:
        """Space used by the bit payload, in bytes."""
        return self._bits.size_in_bytes()

    # ------------------------------------------------------------------ #
    # Hashing helpers
    # ------------------------------------------------------------------ #
    def bit_positions(self, key: Key, selection: Optional[Sequence[int]] = None) -> List[int]:
        """Return the bit positions ``key`` maps to under ``selection`` (or H0)."""
        indexes = self._initial_selection if selection is None else selection
        modulus = len(self._bits)
        return [self._family[i](key, modulus) for i in indexes]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, key: Key) -> None:
        """Insert ``key`` using the initial hash selection ``H0``."""
        self.add_with_selection(key, self._initial_selection)

    def add_all(self, keys: Iterable[Key]) -> None:
        """Insert every key in ``keys`` using ``H0``.

        Prefer :meth:`add_many` for large key sets — it routes through the
        batch engine; this scalar loop is kept for incremental use and as the
        numpy-free reference semantics.
        """
        for key in keys:
            self.add(key)

    def add_with_selection(self, key: Key, selection: Sequence[int]) -> None:
        """Insert ``key`` using an explicit hash selection."""
        for position in self.bit_positions(key, selection):
            self._bits.set(position)
        self._num_items += 1

    def _insert_selection_batch(self, batch, selection: Sequence[int]) -> None:
        """Engine round: insert a whole batch under one fixed selection.

        One ``(k, n)`` position pass plus one ``set_many`` over the shared
        ``bytearray`` — serialization stays byte-identical to the scalar
        insert loop.
        """
        positions = positions_for_selection(
            self._family, batch, selection, len(self._bits)
        )
        self._bits.set_many(positions.reshape(-1))
        self._num_items += len(batch)

    def _add_batch(self, batch) -> bool:
        """Batch form of :meth:`add`: one H0 position pass + ``set_many``."""
        self._insert_selection_batch(batch, self._initial_selection)
        return True

    def add_many_with_selection(self, keys: Iterable[Key], selection: Sequence[int]) -> None:
        """Bulk form of :meth:`add_with_selection` (one fixed selection for all).

        Used by filters that insert key groups under distinct selections
        (e.g. Ada-BF's score groups); falls back to the scalar loop when
        numpy is absent, with identical resulting bits.
        """
        keys = list(keys)
        from repro.hashing import vectorized as vec

        np = vec.numpy_or_none()
        if np is not None and keys:
            self._insert_selection_batch(vec.KeyBatch(keys), selection)
            return
        for key in keys:
            self.add_with_selection(key, selection)

    @classmethod
    def from_keys(
        cls,
        keys: Iterable[Key],
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        bits_per_key: float = 10.0,
        family: Optional[FamilyLike] = None,
        selection: Optional[Sequence[int]] = None,
    ) -> "BloomFilter":
        """Build a Bloom filter from a key set via the bulk-build path.

        Args:
            keys: The keys to insert (consumed once).
            num_bits: Explicit bit-array size; derived from ``bits_per_key``
                and ``len(keys)`` when omitted.
            num_hashes: Explicit hash count; derived from the effective
                bits-per-key when omitted.
            bits_per_key: Space budget used for derivation.
            family: Hash family override (see :class:`BloomFilter`).
            selection: Initial hash selection ``H0`` override.
        """
        keys = list(keys)
        if num_bits is None:
            num_bits = max(8, int(round(bits_per_key * max(1, len(keys)))))
        if num_hashes is None:
            num_hashes = optimal_num_hashes(num_bits / max(1, len(keys)))
        bloom = cls(
            num_bits=num_bits, num_hashes=num_hashes, family=family, selection=selection
        )
        bloom.add_many(keys)
        return bloom

    def set_position(self, position: int) -> None:
        """Set an individual bit; used by the TPJO optimizer."""
        self._bits.set(position)

    def add_positions_many(self, positions, num_keys: int) -> None:
        """Commit precomputed bit positions as ``num_keys`` insertions.

        TPJO hook: the optimizer computes the H0 position matrix itself (it
        needs the per-key positions for its ``V`` index) and hands the whole
        matrix here, so the bits are set in one ``set_many`` instead of a
        per-key loop.
        """
        self._bits.set_many(positions)
        self._num_items += num_keys

    def clear_position(self, position: int) -> None:
        """Clear an individual bit; only safe when the caller knows (via the
        ``V`` index) that no other key maps to it."""
        self._bits.clear(position)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def contains(self, key: Key) -> bool:
        """Membership test with the initial hash selection ``H0``."""
        return self.contains_with_selection(key, self._initial_selection)

    def contains_with_selection(self, key: Key, selection: Sequence[int]) -> bool:
        """Membership test with an explicit hash selection."""
        modulus = len(self._bits)
        return all(self._bits.test(self._family[i](key, modulus)) for i in selection)

    def __contains__(self, key: Key) -> bool:
        return self.contains(key)

    def _probe_batch(self, batch, selection: Sequence[int]):
        """Engine round: test a whole batch under one fixed selection.

        For a table family the probe short-circuits row by row: keys that
        miss hash ``i`` are dropped from the batch before hash ``i+1`` runs,
        so a mixed workload pays roughly ``1/(1-fill)`` hash rows instead of
        ``k``.  Double-hashing families skip the short-circuit — their ``k``
        rows all derive from one memoised base pass, so dropping rows saves
        almost nothing and would re-slice the batch per row.
        """
        from repro.hashing import vectorized as vec

        np = vec.numpy_or_none()
        if isinstance(self._family, DoubleHashFamily):
            positions = positions_for_selection(
                self._family, batch, selection, len(self._bits)
            )
            tested = self._bits.test_many(positions.reshape(-1))
            return tested.reshape(positions.shape).all(axis=0)
        modulus = len(self._bits)
        answers = np.ones(len(batch), dtype=bool)
        alive = None  # None means "all rows", avoiding an initial take()
        for index in selection:
            sub = batch if alive is None else batch.take(alive)
            positions = self._family[index].hash_many(sub, modulus)
            hits = self._bits.test_many(positions)
            if alive is None:
                answers &= hits
                alive = np.flatnonzero(hits)
            else:
                answers[alive[~hits]] = False
                alive = alive[hits]
            if not alive.size:
                break
        return answers

    def _probe_matrix(self, batch, selection_matrix, rows=None):
        """Engine round: test a batch under per-key selections (HABF round 2).

        ``rows`` maps the selection-matrix rows onto batch rows (see
        :func:`repro.core.batch.positions_for_matrix`).
        """
        positions = positions_for_matrix(
            self._family, batch, selection_matrix, len(self._bits), rows=rows
        )
        tested = self._bits.test_many(positions.reshape(-1))
        return tested.reshape(positions.shape).all(axis=1)

    def _contains_batch(self, batch):
        """Batch form of :meth:`contains`: one H0 array probe."""
        return self._probe_batch(batch, self._initial_selection)

    def _contains_fallback(self, keys):
        """numpy-less batch path: hash functions and the bit test are
        resolved once per batch instead of once per key, which is where the
        scalar loop spends its dispatch overhead."""
        functions = [self._family[i] for i in self._initial_selection]
        test = self._bits.test
        modulus = len(self._bits)
        return [all(test(fn(key, modulus)) for fn in functions) for key in keys]

    def expected_fpr(self) -> float:
        """Analytic FPR estimate ``(1 - e^{-kn/m})^k`` for the current load."""
        if self._num_items == 0:
            return 0.0
        exponent = -self._num_hashes * self._num_items / len(self._bits)
        return (1.0 - math.exp(exponent)) ** self._num_hashes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BloomFilter(num_bits={len(self._bits)}, k={self._num_hashes}, "
            f"items={self._num_items})"
        )
