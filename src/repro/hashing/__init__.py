"""Hash-function family used by every filter in this reproduction.

The paper (Table II) draws its global hash-function set ``H`` from 22 classic
string hashes (xxHash, CityHash, MurmurHash, SuperFast, crc32, FNV, BOB, OAAT,
DEK, Hsieh, PYHash, BRP, TWMX, APHash, NDJB, DJB, BKDR, PJW, JSHash, RSHash,
SDBM, ELF).  All of them are re-implemented from scratch in
:mod:`repro.hashing.primitives` and exposed through a registry
(:mod:`repro.hashing.registry`) that mirrors the paper's Table II.

Public API
----------
``GLOBAL_HASH_FAMILY``
    The default :class:`HashFamily` with all 22 functions, matching Table II.
``HashFamily``
    An ordered, indexable collection of named hash functions.
``HashFunction``
    A named, seedable wrapper around a raw hash primitive.
``double_hashing_family``
    Kirsch–Mitzenmacher simulated hash family used by f-HABF and BF(City64)/
    BF(XXH128)-style configurations.
``KeyBatch``
    One-shot batch encoding of keys for the vectorized engine; every
    ``hash_many`` / ``contains_many`` path shares it (see
    :mod:`repro.hashing.vectorized`).
"""

from repro.hashing.base import HashFunction, normalize_key
from repro.hashing.vectorized import BATCH_PRIMITIVES, KeyBatch
from repro.hashing.double_hashing import DoubleHashFamily, double_hashing_family
from repro.hashing.registry import (
    GLOBAL_HASH_FAMILY,
    HASH_PRIMITIVES,
    HashFamily,
    build_family,
    get_primitive,
    list_hash_names,
)

__all__ = [
    "BATCH_PRIMITIVES",
    "KeyBatch",
    "HashFunction",
    "HashFamily",
    "DoubleHashFamily",
    "GLOBAL_HASH_FAMILY",
    "HASH_PRIMITIVES",
    "build_family",
    "double_hashing_family",
    "get_primitive",
    "list_hash_names",
    "normalize_key",
]
