"""Core hash abstractions: key normalisation and the :class:`HashFunction` wrapper.

Every filter in this package hashes *bytes*.  Keys supplied by users may be
``str``, ``bytes`` or ``int``; :func:`normalize_key` converts them to a
canonical byte representation once, so that the same logical key always maps
to the same bits regardless of which filter consumes it.

A :class:`HashFunction` pairs a raw primitive (a callable mapping ``bytes`` to
an unsigned 64-bit integer) with a name, an index in the global family and an
optional seed.  Seeding is implemented by mixing the seed into the primitive's
output with a 64-bit finaliser, which keeps the primitives themselves simple
and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

Key = Union[str, bytes, int]

_MASK64 = (1 << 64) - 1


def _vectorized():
    # Imported lazily: vectorized.py itself imports normalize_key from here.
    from repro.hashing import vectorized

    return vectorized


def normalize_key(key: Key) -> bytes:
    """Convert a user-facing key into canonical bytes.

    ``str`` keys are UTF-8 encoded, ``int`` keys are encoded little-endian in
    the minimal number of bytes (with a fixed 8-byte width for values that fit
    in 64 bits so that integer keys have a uniform layout), and ``bytes`` are
    returned unchanged.

    Raises:
        TypeError: if the key is not ``str``, ``bytes`` or ``int``.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        if 0 <= key < (1 << 64):
            return key.to_bytes(8, "little")
        length = max(1, (key.bit_length() + 8) // 8)
        return key.to_bytes(length, "little", signed=True)
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def mix64(value: int) -> int:
    """SplitMix64 finalisation step; a cheap, well-distributed 64-bit mixer."""
    value &= _MASK64
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return (value ^ (value >> 31)) & _MASK64


@dataclass(frozen=True)
class HashFunction:
    """A named, optionally seeded hash function over canonical key bytes.

    Attributes:
        name: Human-readable primitive name (e.g. ``"fnv"``, ``"murmur3"``).
        index: Position of this function inside its :class:`~repro.hashing.registry.HashFamily`.
            The HashExpressor stores this index (1-based on the wire) in its cells.
        primitive: Raw callable mapping ``bytes`` to an unsigned 64-bit integer.
        seed: Seed mixed into the primitive output; ``0`` means unseeded.
    """

    name: str
    index: int
    primitive: Callable[[bytes], int] = field(repr=False)
    seed: int = 0

    def raw(self, key: Key) -> int:
        """Return the full 64-bit hash of ``key`` (seed already mixed in)."""
        value = self.primitive(normalize_key(key))
        if self.seed:
            value = mix64(value ^ (self.seed * 0x9E3779B97F4A7C15))
        return value & _MASK64

    def __call__(self, key: Key, modulus: int) -> int:
        """Return the hash of ``key`` reduced into ``[0, modulus)``."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        return self.raw(key) % modulus

    def hash_many(self, keys: Sequence[Key], modulus: int = 0):
        """Vector form of :meth:`raw` / :meth:`__call__` over a whole batch.

        With numpy available this encodes the keys once (or reuses an already
        encoded :class:`~repro.hashing.vectorized.KeyBatch`), evaluates the
        primitive's vectorized twin column-wise and returns a ``uint64``
        ndarray; without numpy it falls back to the scalar loop and returns a
        plain list.  ``modulus`` of 0 means "no reduction" (full 64-bit
        hashes); a positive modulus reduces every hash into ``[0, modulus)``
        exactly like :meth:`__call__`.
        """
        if modulus < 0:
            raise ValueError("modulus must be positive (or 0 for no reduction)")
        vec = _vectorized()
        np = vec.numpy_or_none()
        if np is None:
            if modulus:
                return [self(key, modulus) for key in keys]
            return [self.raw(key) for key in keys]
        batch = vec.as_batch(keys)
        cache_key = ("hashfn", id(self))
        values = batch.cache.get(cache_key)
        if values is None:
            values = vec.hash_batch(self.primitive, batch)
            if self.seed:
                salt = (self.seed * 0x9E3779B97F4A7C15) & _MASK64
                values = vec.mix64(values ^ np.uint64(salt))
            batch.cache[cache_key] = values
        if modulus:
            return values % np.uint64(modulus)
        return values

    def with_seed(self, seed: int) -> "HashFunction":
        """Return a copy of this function using a different seed."""
        return HashFunction(name=self.name, index=self.index, primitive=self.primitive, seed=seed)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f"#seed={self.seed}" if self.seed else ""
        return f"{self.name}[{self.index}]{suffix}"
