"""Vectorized (numpy) batch implementations of the Table II hash primitives.

This module is the substrate of the batch-membership engine: every scalar
primitive in :mod:`repro.hashing.primitives` has a column-wise numpy twin
here that hashes a whole batch of keys in one array program.  Keys are
encoded **once** into a :class:`KeyBatch` (a zero-padded ``(n, max_len)``
uint8 matrix plus a length vector); the per-byte recurrences then run down
the byte columns with a live-key mask, so the Python-level loop is bounded
by the longest key, not by the batch size.

Bit-for-bit agreement with the scalar primitives is a hard requirement (the
HashExpressor chains and every serialized filter depend on it) and is pinned
by ``tests/hashing/test_vectorized.py``.  All arithmetic runs in ``uint64``,
whose wrap-around is exactly the ``& _MASK64`` masking of the scalar code;
32-bit cores keep an explicit ``& _MASK32``.

numpy is an optional runtime dependency of the engine: when it is missing
(``np`` is ``None``) every batch entry point in the library falls back to
its scalar loop.  The gate is checked at *call* time through
:func:`numpy_or_none`, so tests can simulate a numpy-less interpreter by
monkeypatching ``repro.hashing.vectorized.np`` to ``None``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.hashing.base import Key, normalize_key
from repro.hashing import primitives as _scalar

try:  # pragma: no cover - exercised indirectly via numpy_or_none()
    import numpy as np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    np = None  # type: ignore[assignment]

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1


def numpy_or_none():
    """Return the numpy module if the engine can vectorize, else ``None``.

    Every batch code path in the library consults this at call time instead
    of caching the import, so a monkeypatched ``vectorized.np = None``
    switches the whole stack onto the pure-Python fallback at once.
    """
    return np


@contextmanager
def force_scalar():
    """Temporarily disable the numpy engine (scalar fallbacks everywhere).

    The supported way to compare engine vs scalar behaviour — equivalence
    tests, scalar-forced timing in ``fig12`` / the build benchmark — without
    reaching into the module global by hand.  Restores the engine even if
    the body raises.  Flips a process-wide switch, so do not use it around
    code that serves concurrent engine traffic.
    """
    global np
    saved = np
    np = None
    try:
        yield
    finally:
        np = saved


class KeyBatch:
    """A batch of keys encoded once for the vectorized engine.

    Attributes:
        keys: The original user-facing keys, in order (kept for scalar
            fallbacks such as dict lookups in the WBF cost cache).
        data: The canonical byte encoding of each key.
        matrix: ``(n, max_len)`` uint8 array, rows zero-padded to the right.
        lengths: ``(n,)`` int64 array of true byte lengths.
        cache: Batch-lifetime memo used by hash functions and families to
            avoid re-hashing the same batch across engine stages (keyed by
            object identity, which is safe because the cached-for object is
            referenced by the filter for the duration of the call).

    A sub-batch from :meth:`take` slices only the numpy state eagerly; its
    ``keys``/``data`` lists materialise lazily from the parent, so engine
    stages that subset purely for vectorized hashing never pay Python-level
    per-row work.
    """

    __slots__ = ("_keys", "_data", "matrix", "lengths", "cache", "_matrix64", "_parent", "_rows")

    def __init__(self, keys: Sequence[Key]) -> None:
        if np is None:  # pragma: no cover - callers gate on numpy_or_none()
            raise RuntimeError("KeyBatch requires numpy")
        self._keys: Optional[List[Key]] = list(keys)
        data = [normalize_key(key) for key in self._keys]
        self._data: Optional[List[bytes]] = data
        n = len(data)
        max_len = max((len(d) for d in data), default=0)
        buffer = bytearray(n * max_len)
        for row, d in enumerate(data):
            start = row * max_len
            buffer[start : start + len(d)] = d
        self.matrix = np.frombuffer(bytes(buffer), dtype=np.uint8).reshape(n, max_len)
        self.lengths = np.fromiter((len(d) for d in data), dtype=np.int64, count=n)
        self.cache: Dict = {}
        self._matrix64 = None
        self._parent: Optional["KeyBatch"] = None
        self._rows = None

    def __len__(self) -> int:
        return self.matrix.shape[0]

    @property
    def keys(self) -> List[Key]:
        """The original keys (materialised from the parent on first access)."""
        if self._keys is None:
            self._keys = [self._parent.keys[int(i)] for i in self._rows]
        return self._keys

    @property
    def data(self) -> List[bytes]:
        """The canonical key bytes (materialised from the parent on first access)."""
        if self._data is None:
            self._data = [self._parent.data[int(i)] for i in self._rows]
        return self._data

    def take(self, indices) -> "KeyBatch":
        """Return a sub-batch holding the rows at ``indices`` (no re-encode).

        Numpy state is sliced immediately (C-speed fancy indexing);
        ``keys``/``data`` stay references into this batch until someone
        actually reads them.
        """
        rows = np.asarray(indices, dtype=np.intp)
        sub = KeyBatch.__new__(KeyBatch)
        sub._keys = None
        sub._data = None
        sub._parent = self
        sub._rows = rows
        sub.matrix = self.matrix[rows]
        sub.lengths = self.lengths[rows]
        sub.cache = {}
        sub._matrix64 = self._matrix64[rows] if self._matrix64 is not None else None
        return sub

    @property
    def matrix64(self):
        """The byte matrix widened to uint64, built lazily and kept.

        Every primitive reads byte columns as uint64 operands; widening the
        matrix once per batch replaces thousands of per-column ``astype``
        calls in the column loops.
        """
        if self._matrix64 is None:
            self._matrix64 = self.matrix.astype(np.uint64)
        return self._matrix64

    @classmethod
    def concat(cls, parts: Sequence["KeyBatch"]) -> "KeyBatch":
        """Merge encoded batches into one batch without re-normalising any key.

        The serving micro-batcher coalesces requests that were already
        encoded at arrival time (multi-key protocol requests) with freshly
        encoded scalar keys; concatenation re-pads the byte matrices to the
        widest part at numpy speed and never touches ``normalize_key`` again.
        Rows keep part order, so verdict slices map back to the original
        requests by offset.
        """
        if np is None:  # pragma: no cover - callers gate on numpy_or_none()
            raise RuntimeError("KeyBatch requires numpy")
        parts = list(parts)
        if not parts:
            raise ValueError("KeyBatch.concat needs at least one part")
        if len(parts) == 1:
            return parts[0]
        total = sum(len(part) for part in parts)
        width = max(part.matrix.shape[1] for part in parts)
        matrix = np.zeros((total, width), dtype=np.uint8)
        lengths = np.empty(total, dtype=np.int64)
        row = 0
        for part in parts:
            n = len(part)
            matrix[row : row + n, : part.matrix.shape[1]] = part.matrix
            lengths[row : row + n] = part.lengths
            row += n
        merged = cls.__new__(cls)
        merged._keys = [key for part in parts for key in part.keys]
        merged._data = [data for part in parts for data in part.data]
        merged._parent = None
        merged._rows = None
        merged.matrix = matrix
        merged.lengths = lengths
        merged.cache = {}
        merged._matrix64 = None
        return merged


BatchLike = Union[KeyBatch, Sequence[Key]]


def as_batch(keys: BatchLike) -> KeyBatch:
    """Coerce ``keys`` into a :class:`KeyBatch` (no-op if it already is one)."""
    if isinstance(keys, KeyBatch):
        return keys
    return KeyBatch(keys)


# --------------------------------------------------------------------- #
# Vector helpers (mirrors of the scalar helpers in primitives.py)
# --------------------------------------------------------------------- #
def _rotl32(value, amount: int):
    value = value & _MASK32
    return ((value << np.uint64(amount)) | (value >> np.uint64(32 - amount))) & _MASK32


def _rotl64(value, amount: int):
    return (value << np.uint64(amount)) | (value >> np.uint64(64 - amount))


def _fmix64(value):
    value = value ^ (value >> np.uint64(33))
    value = value * np.uint64(0xFF51AFD7ED558CCD)
    value = value ^ (value >> np.uint64(33))
    value = value * np.uint64(0xC4CEB9FE1A85EC53)
    return value ^ (value >> np.uint64(33))


def mix64(value):
    """Vector form of :func:`repro.hashing.base.mix64` (SplitMix64 finaliser)."""
    value = value ^ (value >> np.uint64(30))
    value = value * np.uint64(0xBF58476D1CE4E5B9)
    value = value ^ (value >> np.uint64(27))
    value = value * np.uint64(0x94D049BB133111EB)
    return value ^ (value >> np.uint64(31))


def _full(batch: KeyBatch, value: int):
    return np.full(len(batch), value, dtype=np.uint64)


def _columns(batch: KeyBatch):
    """Yield ``(mask, column)`` per byte position: mask = key still has bytes."""
    matrix, lengths = batch.matrix64, batch.lengths
    for j in range(matrix.shape[1]):
        yield lengths > j, matrix[:, j]


def _le_word(batch: KeyBatch, start: int, nbytes: int):
    """Little-endian integer of ``nbytes`` contiguous columns from ``start``."""
    matrix = batch.matrix64
    word = matrix[:, start].copy()
    for offset in range(1, nbytes):
        word |= matrix[:, start + offset] << np.uint64(8 * offset)
    return word


def _tail_byte(batch: KeyBatch, offsets, valid):
    """Gather one byte per key at per-key ``offsets``; 0 where not ``valid``.

    Out-of-range offsets of invalid rows are clipped before the gather so the
    fancy index stays in bounds.
    """
    matrix = batch.matrix64
    width = matrix.shape[1]
    if width == 0:
        return np.zeros(len(batch), dtype=np.uint64)
    safe = np.minimum(np.maximum(offsets, 0), width - 1)
    rows = np.arange(len(batch))
    gathered = matrix[rows, safe]
    return np.where(valid, gathered, np.uint64(0))


def _tail_le_word(batch: KeyBatch, offsets, nbytes: int, remaining):
    """Little-endian word of up to ``nbytes`` per-key tail bytes.

    Byte ``p`` of the word comes from ``offsets + p`` where ``p < remaining``,
    mirroring the scalar pattern ``int.from_bytes(data[i:], "little")`` with
    implicit zero padding.
    """
    word = np.zeros(len(batch), dtype=np.uint64)
    for p in range(nbytes):
        byte = _tail_byte(batch, offsets + p, remaining > p)
        word |= byte << np.uint64(8 * p)
    return word


# --------------------------------------------------------------------- #
# Byte-at-a-time primitives
# --------------------------------------------------------------------- #
def fnv1a(batch: KeyBatch):
    value = _full(batch, 0xCBF29CE484222325)
    for mask, col in _columns(batch):
        value = np.where(mask, (value ^ col) * np.uint64(0x100000001B3), value)
    return value


def djb2(batch: KeyBatch):
    value = _full(batch, 5381)
    for mask, col in _columns(batch):
        value = np.where(mask, value * np.uint64(33) + col, value)
    return value


def ndjb(batch: KeyBatch):
    value = _full(batch, 5381)
    for mask, col in _columns(batch):
        value = np.where(mask, (value * np.uint64(33)) ^ col, value)
    return value


def sdbm(batch: KeyBatch):
    value = _full(batch, 0)
    for mask, col in _columns(batch):
        updated = col + (value << np.uint64(6)) + (value << np.uint64(16)) - value
        value = np.where(mask, updated, value)
    return value


def bkdr(batch: KeyBatch):
    value = _full(batch, 0)
    for mask, col in _columns(batch):
        value = np.where(mask, value * np.uint64(131) + col, value)
    return value


def pjw(batch: KeyBatch):
    value = _full(batch, 0)
    for mask, col in _columns(batch):
        v = ((value << np.uint64(4)) + col) & _MASK32
        high = v & np.uint64(0xF0000000)
        v = np.where(high != 0, v ^ (high >> np.uint64(24)), v)
        v = v & (~high & _MASK32)
        value = np.where(mask, v, value)
    return _fmix64(value)


def elf(batch: KeyBatch):
    value = _full(batch, 0)
    for mask, col in _columns(batch):
        v = ((value << np.uint64(4)) + col) & _MASK32
        high = v & np.uint64(0xF0000000)
        adjusted = (v ^ (high >> np.uint64(24))) & (~high & _MASK32)
        v = np.where(high != 0, adjusted, v)
        value = np.where(mask, v, value)
    return _fmix64(value ^ (batch.lengths.astype(np.uint64) << np.uint64(16)))


def rs_hash(batch: KeyBatch):
    value = _full(batch, 0)
    # The multiplier sequence a, a*b, a*b^2, ... is data-independent, so it is
    # precomputed per column as plain Python ints.
    a, b = 63689, 378551
    for mask, col in _columns(batch):
        value = np.where(mask, value * np.uint64(a) + col, value)
        a = (a * b) & _MASK64
    return value


def js_hash(batch: KeyBatch):
    value = _full(batch, 1315423911)
    for mask, col in _columns(batch):
        updated = value ^ ((value << np.uint64(5)) + col + (value >> np.uint64(2)))
        value = np.where(mask, updated, value)
    return value


def ap_hash(batch: KeyBatch):
    value = _full(batch, 0xAAAAAAAA)
    for j, (mask, col) in enumerate(_columns(batch)):
        if j & 1 == 0:
            updated = value ^ ((value << np.uint64(7)) ^ col * (value >> np.uint64(3)))
        else:
            updated = value ^ ~((value << np.uint64(11)) + (col ^ (value >> np.uint64(5))))
        value = np.where(mask, updated, value)
    return value


def dek(batch: KeyBatch):
    value = batch.lengths.astype(np.uint64)
    for mask, col in _columns(batch):
        updated = (value << np.uint64(5)) ^ (value >> np.uint64(27)) ^ col
        value = np.where(mask, updated, value)
    return value


def brp(batch: KeyBatch):
    value = _full(batch, 0)
    for mask, col in _columns(batch):
        updated = (value << np.uint64(7)) ^ (value >> np.uint64(25)) ^ col
        value = np.where(mask, updated, value)
    return _fmix64(value)


def oaat(batch: KeyBatch):
    value = _full(batch, 0)
    for mask, col in _columns(batch):
        v = (value + col) & _MASK32
        v = (v + (v << np.uint64(10))) & _MASK32
        v = v ^ (v >> np.uint64(6))
        value = np.where(mask, v, value)
    value = (value + (value << np.uint64(3))) & _MASK32
    value = value ^ (value >> np.uint64(11))
    value = (value + (value << np.uint64(15))) & _MASK32
    return _fmix64(value)


def crc32(batch: KeyBatch):
    table = np.asarray(_scalar._crc32_table(), dtype=np.uint64)
    crc = _full(batch, 0xFFFFFFFF)
    for mask, col in _columns(batch):
        index = ((crc ^ col) & np.uint64(0xFF)).astype(np.intp)
        crc = np.where(mask, (crc >> np.uint64(8)) ^ table[index], crc)
    return _fmix64((crc ^ np.uint64(0xFFFFFFFF)) & _MASK32)


def hsieh(batch: KeyBatch):
    value = _full(batch, 0x811C9DC5)
    for mask, col in _columns(batch):
        v = ((value ^ col) * np.uint64(0x01000193)) & _MASK32
        v = v ^ (v >> np.uint64(15))
        value = np.where(mask, v, value)
    return _fmix64(value)


def pyhash(batch: KeyBatch):
    width = batch.matrix.shape[1]
    if width == 0:
        return np.zeros(len(batch), dtype=np.uint64)
    value = (batch.matrix64[:, 0] << np.uint64(7)) & _MASK64
    for mask, col in _columns(batch):
        value = np.where(mask, (value * np.uint64(1000003)) ^ col, value)
    value = value ^ batch.lengths.astype(np.uint64)
    return np.where(batch.lengths == 0, np.uint64(0), value)


def twmx(batch: KeyBatch):
    value = fnv1a(batch)
    value = ~value + (value << np.uint64(21))
    value = value ^ (value >> np.uint64(24))
    value = value + (value << np.uint64(3)) + (value << np.uint64(8))
    value = value ^ (value >> np.uint64(14))
    value = value + (value << np.uint64(2)) + (value << np.uint64(4))
    value = value ^ (value >> np.uint64(28))
    return value + (value << np.uint64(31))


# --------------------------------------------------------------------- #
# Word-at-a-time primitives
# --------------------------------------------------------------------- #
def murmur3(batch: KeyBatch):
    c1, c2 = np.uint64(0xCC9E2D51), np.uint64(0x1B873593)
    lengths = batch.lengths
    value = _full(batch, 0x9747B28C)
    for block in range(batch.matrix.shape[1] // 4):
        offset = block * 4
        mask = lengths >= offset + 4
        k = (_le_word(batch, offset, 4) * c1) & _MASK32
        k = (_rotl32(k, 15) * c2) & _MASK32
        v = _rotl32(value ^ k, 13)
        v = (v * np.uint64(5) + np.uint64(0xE6546B64)) & _MASK32
        value = np.where(mask, v, value)
    rounded = (lengths - (lengths % 4)).astype(np.int64)
    remaining = lengths - rounded
    k = np.zeros(len(batch), dtype=np.uint64)
    k = np.where(remaining >= 3, k ^ (_tail_byte(batch, rounded + 2, remaining >= 3) << np.uint64(16)), k)
    k = np.where(remaining >= 2, k ^ (_tail_byte(batch, rounded + 1, remaining >= 2) << np.uint64(8)), k)
    has_tail = remaining >= 1
    k = np.where(has_tail, k ^ _tail_byte(batch, rounded, has_tail), k)
    k = (k * c1) & _MASK32
    k = (_rotl32(k, 15) * c2) & _MASK32
    value = np.where(has_tail, value ^ k, value)
    value = value ^ lengths.astype(np.uint64)
    value = value ^ (value >> np.uint64(16))
    value = (value * np.uint64(0x85EBCA6B)) & _MASK32
    value = value ^ (value >> np.uint64(13))
    value = (value * np.uint64(0xC2B2AE35)) & _MASK32
    value = value ^ (value >> np.uint64(16))
    return _fmix64(value)


def cityhash(batch: KeyBatch):
    k2 = np.uint64(0x9AE16A3B2F90404F)
    lengths = batch.lengths
    value = lengths.astype(np.uint64) * k2
    for block in range(batch.matrix.shape[1] // 8):
        offset = block * 8
        mask = lengths >= offset + 8
        word = _le_word(batch, offset, 8)
        v = _rotl64(value ^ (word * k2), 29)
        v = v * np.uint64(5) + np.uint64(0x52DCE729)
        value = np.where(mask, v, value)
    rounded = (lengths - (lengths % 8)).astype(np.int64)
    remaining = lengths - rounded
    has_tail = remaining > 0
    word = _tail_le_word(batch, rounded, 7, remaining)
    tailed = _rotl64(value ^ (word * np.uint64(0xB492B66FBE98F273)), 33)
    value = np.where(has_tail, tailed, value)
    value = value ^ (value >> np.uint64(47))
    value = value * k2
    return value ^ (value >> np.uint64(47))


def xxhash(batch: KeyBatch):
    prime1 = np.uint64(0x9E3779B185EBCA87)
    prime2 = np.uint64(0xC2B2AE3D27D4EB4F)
    prime3 = np.uint64(0x165667B19E3779F9)
    prime5 = np.uint64(0x27D4EB2F165667C5)
    lengths = batch.lengths
    value = prime5 + lengths.astype(np.uint64)
    for block in range(batch.matrix.shape[1] // 8):
        offset = block * 8
        mask = lengths >= offset + 8
        word = _le_word(batch, offset, 8)
        v = value ^ (_rotl64(word * prime2, 31) * prime1)
        v = _rotl64(v, 27) * prime1 + prime3
        value = np.where(mask, v, value)
    rounded = (lengths - (lengths % 8)).astype(np.int64)
    for p in range(7):
        valid = rounded + p < lengths
        byte = _tail_byte(batch, rounded + p, valid)
        v = _rotl64(value ^ (byte * prime5), 11) * prime1
        value = np.where(valid, v, value)
    value = value ^ (value >> np.uint64(33))
    value = value * prime2
    value = value ^ (value >> np.uint64(29))
    value = value * prime3
    return value ^ (value >> np.uint64(32))


def superfast(batch: KeyBatch):
    lengths = batch.lengths
    value = lengths.astype(np.uint64) & _MASK32
    for chunk in range(batch.matrix.shape[1] // 4):
        offset = chunk * 4
        mask = lengths - offset >= 4
        low = _le_word(batch, offset, 2)
        high = _le_word(batch, offset + 2, 2)
        v = (value + low) & _MASK32
        tmp = ((high << np.uint64(11)) ^ v) & _MASK32
        v = ((v << np.uint64(16)) ^ tmp) & _MASK32
        v = (v + (v >> np.uint64(11))) & _MASK32
        value = np.where(mask, v, value)
    start = ((lengths // 4) * 4).astype(np.int64)
    remaining = lengths - start
    byte0 = _tail_byte(batch, start, remaining >= 1)
    byte1 = _tail_byte(batch, start + 1, remaining >= 2)
    byte2 = _tail_byte(batch, start + 2, remaining >= 3)
    two_le = byte0 | (byte1 << np.uint64(8))

    v3 = (value + two_le) & _MASK32
    v3 = v3 ^ ((v3 << np.uint64(16)) & _MASK32)
    v3 = v3 ^ ((byte2 << np.uint64(18)) & _MASK32)
    v3 = (v3 + (v3 >> np.uint64(11))) & _MASK32

    v2 = (value + two_le) & _MASK32
    v2 = v2 ^ ((v2 << np.uint64(11)) & _MASK32)
    v2 = (v2 + (v2 >> np.uint64(17))) & _MASK32

    v1 = (value + byte0) & _MASK32
    v1 = v1 ^ ((v1 << np.uint64(10)) & _MASK32)
    v1 = (v1 + (v1 >> np.uint64(1))) & _MASK32

    value = np.where(remaining == 3, v3, np.where(remaining == 2, v2, np.where(remaining == 1, v1, value)))
    value = value ^ ((value << np.uint64(3)) & _MASK32)
    value = (value + (value >> np.uint64(5))) & _MASK32
    value = value ^ ((value << np.uint64(4)) & _MASK32)
    value = (value + (value >> np.uint64(17))) & _MASK32
    value = value ^ ((value << np.uint64(25)) & _MASK32)
    value = (value + (value >> np.uint64(6))) & _MASK32
    return _fmix64(value)


def _jenkins_mix(a, b, c):
    a = (a - b - c) & _MASK32
    a = a ^ (c >> np.uint64(13))
    b = (b - c - a) & _MASK32
    b = b ^ ((a << np.uint64(8)) & _MASK32)
    c = (c - a - b) & _MASK32
    c = c ^ (b >> np.uint64(13))
    a = (a - b - c) & _MASK32
    a = a ^ (c >> np.uint64(12))
    b = (b - c - a) & _MASK32
    b = b ^ ((a << np.uint64(16)) & _MASK32)
    c = (c - a - b) & _MASK32
    c = c ^ (b >> np.uint64(5))
    a = (a - b - c) & _MASK32
    a = a ^ (c >> np.uint64(3))
    b = (b - c - a) & _MASK32
    b = b ^ ((a << np.uint64(10)) & _MASK32)
    c = (c - a - b) & _MASK32
    c = c ^ (b >> np.uint64(15))
    return a, b, c


def bob_jenkins(batch: KeyBatch):
    lengths = batch.lengths
    a = _full(batch, 0x9E3779B9)
    b = _full(batch, 0x9E3779B9)
    c = _full(batch, 0xDEADBEEF)
    for block in range(batch.matrix.shape[1] // 12):
        offset = block * 12
        mask = lengths >= offset + 12
        na = (a + _le_word(batch, offset, 4)) & _MASK32
        nb = (b + _le_word(batch, offset + 4, 4)) & _MASK32
        nc = (c + _le_word(batch, offset + 8, 4)) & _MASK32
        na, nb, nc = _jenkins_mix(na, nb, nc)
        a = np.where(mask, na, a)
        b = np.where(mask, nb, b)
        c = np.where(mask, nc, c)
    # Every key processes exactly one zero-padded tail block (possibly all
    # zeros when the length is a multiple of 12), as in the scalar code.
    start = ((lengths // 12) * 12).astype(np.int64)
    remaining = lengths - start
    word_a = _tail_le_word(batch, start, 4, remaining)
    word_b = _tail_le_word(batch, start + 4, 4, remaining - 4)
    word_c = _tail_le_word(batch, start + 8, 4, remaining - 8)
    a = (a + word_a) & _MASK32
    b = (b + word_b) & _MASK32
    c = (c + word_c + lengths.astype(np.uint64)) & _MASK32
    a, b, c = _jenkins_mix(a, b, c)
    return (b << np.uint64(32)) | c


#: Vectorized twin of :data:`repro.hashing.primitives.PRIMITIVES`.
BATCH_PRIMITIVES: Dict[str, Callable[[KeyBatch], "np.ndarray"]] = {
    "xxhash": xxhash,
    "cityhash": cityhash,
    "murmur3": murmur3,
    "superfast": superfast,
    "crc32": crc32,
    "fnv": fnv1a,
    "bob": bob_jenkins,
    "oaat": oaat,
    "dek": dek,
    "hsieh": hsieh,
    "pyhash": pyhash,
    "brp": brp,
    "twmx": twmx,
    "ap": ap_hash,
    "ndjb": ndjb,
    "djb": djb2,
    "bkdr": bkdr,
    "pjw": pjw,
    "js": js_hash,
    "rs": rs_hash,
    "sdbm": sdbm,
    "elf": elf,
}

#: Scalar callable -> vectorized twin, for lookups by HashFunction.primitive.
_BY_CALLABLE: Dict[Callable[[bytes], int], Callable[[KeyBatch], "np.ndarray"]] = {
    _scalar.PRIMITIVES[name]: fn for name, fn in BATCH_PRIMITIVES.items()
}


def batch_primitive_for(
    primitive: Callable[[bytes], int]
) -> Optional[Callable[[KeyBatch], "np.ndarray"]]:
    """Return the vectorized twin of a scalar primitive, or ``None``."""
    return _BY_CALLABLE.get(primitive)


#: A sub-batch may answer a primitive by slicing its parent's pass.  When the
#: parent has no cached pass yet, computing it there eagerly is still the
#: right call while the parent stays window-sized: the Python column loop
#: dominates at that scale and costs the same however many rows ride along,
#: and sibling sub-batches (shard groups of one serving window) then slice
#: the same pass for free.  Past this row count the per-row work dominates,
#: so a take from a large batch hashes only its own rows — which preserves
#: the short-circuit savings of probes that progressively narrow a big
#: batch (see ``BloomFilter._probe_batch``).
_PARENT_EAGER_ROWS = 4096

#: Below this row count the scalar primitive loop beats the numpy column
#: pass.  The column pass costs a near-constant ~200-400us setup (one Python
#: iteration per key-byte column, each running a handful of ufuncs on a tiny
#: array) while the scalar loop costs ~1-7us per key, so tiny batches — a
#: dispatcher's per-replica sub-window, a single-key probe riding the batch
#: path — were paying 10-30x overhead.  Measured on this repo's Shalla-like
#: keys (~25-byte URLs): scalar wins at <=32 rows for every primitive tried
#: (xxhash, bkdr, crc32, fnv1a; crossover lands in the 32-48 row band), so
#: 32 is the conservative cut.  Results are bit-identical either way (the
#: vectorized twins are pinned bit-for-bit against the scalar primitives),
#: and memoisation/slicing semantics are unchanged.
SCALAR_CROSSOVER_ROWS = 32


def hash_batch(primitive: Callable[[bytes], int], batch: KeyBatch):
    """Hash every key in ``batch`` with ``primitive`` as one uint64 vector.

    Uses the vectorized twin when one exists and the batch is larger than
    :data:`SCALAR_CROSSOVER_ROWS`; otherwise evaluates the scalar primitive
    per key (still saving the per-key normalisation, since the batch carries
    pre-encoded bytes).  Results are memoised on the batch, so
    engine stages that derive several values from one primitive pass (Xor
    slots + fingerprints, WBF base/step, double-hashing bases) hash each key
    once per batch.

    Sub-batches made with :meth:`KeyBatch.take` reuse their parent's pass by
    row-slicing it (hash values are per-key, so slicing is exact).  This is
    what makes sharded serving windows affordable: the router and N shard
    filters together pay one column-loop pass per primitive for the whole
    window instead of one per shard.
    """
    cache_key = ("primitive", primitive)
    values = batch.cache.get(cache_key)
    if values is not None:
        return values
    parent = batch._parent
    if parent is not None and (
        cache_key in parent.cache or len(parent) <= _PARENT_EAGER_ROWS
    ):
        values = hash_batch(primitive, parent)[batch._rows]
    else:
        vectorized = _BY_CALLABLE.get(primitive)
        if vectorized is not None and len(batch) > SCALAR_CROSSOVER_ROWS:
            values = vectorized(batch)
        else:
            values = np.fromiter(
                ((primitive(d) & _MASK64) for d in batch.data),
                dtype=np.uint64,
                count=len(batch),
            )
    batch.cache[cache_key] = values
    return values
