"""From-scratch implementations of the 22 string hashes in the paper's Table II.

Each primitive takes ``bytes`` and returns an unsigned 64-bit integer.  The
implementations follow the well-known reference algorithms (FNV-1a, djb2,
sdbm, BKDR, PJW/ELF, RS, JS, AP, DEK, BRP, OAAT/one-at-a-time, Bob Jenkins
lookup-style mix, SuperFastHash, CRC-32, Hsieh, Python-style string hash,
NDJB, TWMX integer mixer, MurmurHash3, a CityHash-flavoured mixer and an
xxHash-flavoured mixer).  Exact bit-for-bit compatibility with the original C
libraries is *not* a goal — what matters for the reproduction is that the
family contains many independent, reasonably well-distributed functions of
differing quality, exactly the role Table II plays in the paper.

All functions are deterministic, allocation-free and depend only on the input
bytes, which keeps the whole library reproducible across runs and platforms.
"""

from __future__ import annotations

from typing import Callable, Dict

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1


def _rotl32(value: int, amount: int) -> int:
    value &= _MASK32
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def _rotl64(value: int, amount: int) -> int:
    value &= _MASK64
    return ((value << amount) | (value >> (64 - amount))) & _MASK64


def _fmix64(value: int) -> int:
    value &= _MASK64
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def fnv1a(data: bytes) -> int:
    """FNV-1a 64-bit."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & _MASK64
    return value


def djb2(data: bytes) -> int:
    """Bernstein's djb2 (`hash * 33 + c`)."""
    value = 5381
    for byte in data:
        value = ((value * 33) + byte) & _MASK64
    return value


def ndjb(data: bytes) -> int:
    """djb2 XOR variant (`hash * 33 ^ c`), listed as NDJB in Table II."""
    value = 5381
    for byte in data:
        value = ((value * 33) ^ byte) & _MASK64
    return value


def sdbm(data: bytes) -> int:
    """The sdbm database hash (`c + (h << 6) + (h << 16) - h`)."""
    value = 0
    for byte in data:
        value = (byte + (value << 6) + (value << 16) - value) & _MASK64
    return value


def bkdr(data: bytes) -> int:
    """BKDR hash with the classic seed 131."""
    value = 0
    for byte in data:
        value = (value * 131 + byte) & _MASK64
    return value


def pjw(data: bytes) -> int:
    """Peter J. Weinberger's hash (the original AT&T compiler hash), 32-bit core."""
    value = 0
    for byte in data:
        value = ((value << 4) + byte) & _MASK32
        high = value & 0xF0000000
        if high:
            value ^= high >> 24
        value &= ~high & _MASK32
    return _fmix64(value)


def elf(data: bytes) -> int:
    """The UNIX ELF object-file hash (a PJW variant)."""
    value = 0
    for byte in data:
        value = ((value << 4) + byte) & _MASK32
        high = value & 0xF0000000
        if high:
            value ^= high >> 24
            value &= ~high & _MASK32
    return _fmix64(value ^ (len(data) << 16))


def rs_hash(data: bytes) -> int:
    """Robert Sedgewick's hash from *Algorithms in C*."""
    a, b = 63689, 378551
    value = 0
    for byte in data:
        value = (value * a + byte) & _MASK64
        a = (a * b) & _MASK64
    return value


def js_hash(data: bytes) -> int:
    """Justin Sobel's bitwise hash."""
    value = 1315423911
    for byte in data:
        value ^= ((value << 5) + byte + (value >> 2)) & _MASK64
        value &= _MASK64
    return value


def ap_hash(data: bytes) -> int:
    """Arash Partow's hybrid rotative/XOR hash."""
    value = 0xAAAAAAAA
    for i, byte in enumerate(data):
        if i & 1 == 0:
            value ^= ((value << 7) ^ byte * (value >> 3)) & _MASK64
        else:
            value ^= (~((value << 11) + (byte ^ (value >> 5)))) & _MASK64
        value &= _MASK64
    return value


def dek(data: bytes) -> int:
    """Donald E. Knuth's hash from TAOCP volume 3."""
    value = len(data)
    for byte in data:
        value = (((value << 5) & _MASK64) ^ (value >> 27) ^ byte) & _MASK64
    return value


def brp(data: bytes) -> int:
    """BRP (shift-and-xor) hash from the classic hash collections."""
    value = 0
    for byte in data:
        value = (((value << 7) & _MASK64) ^ (value >> 25) ^ byte) & _MASK64
    return _fmix64(value)


def oaat(data: bytes) -> int:
    """Bob Jenkins' one-at-a-time hash."""
    value = 0
    for byte in data:
        value = (value + byte) & _MASK32
        value = (value + (value << 10)) & _MASK32
        value ^= value >> 6
    value = (value + (value << 3)) & _MASK32
    value ^= value >> 11
    value = (value + (value << 15)) & _MASK32
    return _fmix64(value)


def bob_jenkins(data: bytes) -> int:
    """A Bob Jenkins lookup2-style mix over 32-bit little-endian words."""
    a = b = 0x9E3779B9
    c = 0xDEADBEEF
    i = 0
    length = len(data)
    while i + 12 <= length:
        a = (a + int.from_bytes(data[i : i + 4], "little")) & _MASK32
        b = (b + int.from_bytes(data[i + 4 : i + 8], "little")) & _MASK32
        c = (c + int.from_bytes(data[i + 8 : i + 12], "little")) & _MASK32
        a, b, c = _jenkins_mix(a, b, c)
        i += 12
    tail = data[i:] + b"\x00" * (12 - (length - i))
    a = (a + int.from_bytes(tail[0:4], "little")) & _MASK32
    b = (b + int.from_bytes(tail[4:8], "little")) & _MASK32
    c = (c + int.from_bytes(tail[8:12], "little") + length) & _MASK32
    a, b, c = _jenkins_mix(a, b, c)
    return ((b << 32) | c) & _MASK64


def _jenkins_mix(a: int, b: int, c: int) -> tuple:
    a = (a - b - c) & _MASK32
    a ^= c >> 13
    b = (b - c - a) & _MASK32
    b ^= (a << 8) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 13
    a = (a - b - c) & _MASK32
    a ^= c >> 12
    b = (b - c - a) & _MASK32
    b ^= (a << 16) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 5
    a = (a - b - c) & _MASK32
    a ^= c >> 3
    b = (b - c - a) & _MASK32
    b ^= (a << 10) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 15
    return a, b, c


def superfast(data: bytes) -> int:
    """Paul Hsieh's SuperFastHash."""
    length = len(data)
    value = length & _MASK32
    i = 0
    while length >= 4:
        low = int.from_bytes(data[i : i + 2], "little")
        high = int.from_bytes(data[i + 2 : i + 4], "little")
        value = (value + low) & _MASK32
        tmp = ((high << 11) ^ value) & _MASK32
        value = ((value << 16) ^ tmp) & _MASK32
        value = (value + (value >> 11)) & _MASK32
        i += 4
        length -= 4
    if length == 3:
        value = (value + int.from_bytes(data[i : i + 2], "little")) & _MASK32
        value ^= (value << 16) & _MASK32
        value ^= (data[i + 2] << 18) & _MASK32
        value = (value + (value >> 11)) & _MASK32
    elif length == 2:
        value = (value + int.from_bytes(data[i : i + 2], "little")) & _MASK32
        value ^= (value << 11) & _MASK32
        value = (value + (value >> 17)) & _MASK32
    elif length == 1:
        value = (value + data[i]) & _MASK32
        value ^= (value << 10) & _MASK32
        value = (value + (value >> 1)) & _MASK32
    value ^= (value << 3) & _MASK32
    value = (value + (value >> 5)) & _MASK32
    value ^= (value << 4) & _MASK32
    value = (value + (value >> 17)) & _MASK32
    value ^= (value << 25) & _MASK32
    value = (value + (value >> 6)) & _MASK32
    return _fmix64(value)


_CRC32_TABLE = []


def _crc32_table() -> list:
    if not _CRC32_TABLE:
        for i in range(256):
            crc = i
            for _ in range(8):
                crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
            _CRC32_TABLE.append(crc)
    return _CRC32_TABLE


def crc32(data: bytes) -> int:
    """CRC-32 (IEEE 802.3 polynomial), widened with a 64-bit finaliser."""
    table = _crc32_table()
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return _fmix64((crc ^ 0xFFFFFFFF) & _MASK32)


def hsieh(data: bytes) -> int:
    """Hsieh-style hash: SuperFastHash core with a different avalanche tail."""
    value = 0x811C9DC5
    for byte in data:
        value ^= byte
        value = (value * 0x01000193) & _MASK32
        value ^= value >> 15
    return _fmix64(value)


def pyhash(data: bytes) -> int:
    """CPython's historical (pre-SipHash) string hashing algorithm."""
    if not data:
        return 0
    value = (data[0] << 7) & _MASK64
    for byte in data:
        value = ((value * 1000003) ^ byte) & _MASK64
    value ^= len(data)
    return value


def twmx(data: bytes) -> int:
    """Thomas Wang's 64-bit integer mixer applied to an FNV prefix fold."""
    value = fnv1a(data)
    value = (~value + (value << 21)) & _MASK64
    value ^= value >> 24
    value = (value + (value << 3) + (value << 8)) & _MASK64
    value ^= value >> 14
    value = (value + (value << 2) + (value << 4)) & _MASK64
    value ^= value >> 28
    value = (value + (value << 31)) & _MASK64
    return value


def murmur3(data: bytes) -> int:
    """MurmurHash3 x86_32 core, widened with the Murmur 64-bit finaliser."""
    c1, c2 = 0xCC9E2D51, 0x1B873593
    value = 0x9747B28C
    length = len(data)
    rounded = length - (length % 4)
    for i in range(0, rounded, 4):
        k = int.from_bytes(data[i : i + 4], "little")
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        value ^= k
        value = _rotl32(value, 13)
        value = (value * 5 + 0xE6546B64) & _MASK32
    k = 0
    tail = data[rounded:]
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        value ^= k
    value ^= length
    value ^= value >> 16
    value = (value * 0x85EBCA6B) & _MASK32
    value ^= value >> 13
    value = (value * 0xC2B2AE35) & _MASK32
    value ^= value >> 16
    return _fmix64(value)


def cityhash(data: bytes) -> int:
    """CityHash-flavoured 64-bit hash (shift-mix over 8-byte words)."""
    k2 = 0x9AE16A3B2F90404F
    length = len(data)
    value = (length * k2) & _MASK64
    i = 0
    while i + 8 <= length:
        word = int.from_bytes(data[i : i + 8], "little")
        value ^= (word * k2) & _MASK64
        value = _rotl64(value, 29)
        value = (value * 5 + 0x52DCE729) & _MASK64
        i += 8
    if i < length:
        word = int.from_bytes(data[i:], "little")
        value ^= (word * 0xB492B66FBE98F273) & _MASK64
        value = _rotl64(value, 33)
    value ^= value >> 47
    value = (value * k2) & _MASK64
    value ^= value >> 47
    return value


def xxhash(data: bytes) -> int:
    """xxHash-flavoured 64-bit hash (prime-multiply and rotate over 8-byte words)."""
    prime1 = 0x9E3779B185EBCA87
    prime2 = 0xC2B2AE3D27D4EB4F
    prime3 = 0x165667B19E3779F9
    prime5 = 0x27D4EB2F165667C5
    length = len(data)
    value = (prime5 + length) & _MASK64
    i = 0
    while i + 8 <= length:
        word = int.from_bytes(data[i : i + 8], "little")
        value ^= _rotl64((word * prime2) & _MASK64, 31) * prime1 & _MASK64
        value = (_rotl64(value, 27) * prime1 + prime3) & _MASK64
        i += 8
    while i < length:
        value ^= (data[i] * prime5) & _MASK64
        value = (_rotl64(value, 11) * prime1) & _MASK64
        i += 1
    value ^= value >> 33
    value = (value * prime2) & _MASK64
    value ^= value >> 29
    value = (value * prime3) & _MASK64
    value ^= value >> 32
    return value


#: Ordered mapping of primitive name -> callable, mirroring the paper's Table II.
PRIMITIVES: Dict[str, Callable[[bytes], int]] = {
    "xxhash": xxhash,
    "cityhash": cityhash,
    "murmur3": murmur3,
    "superfast": superfast,
    "crc32": crc32,
    "fnv": fnv1a,
    "bob": bob_jenkins,
    "oaat": oaat,
    "dek": dek,
    "hsieh": hsieh,
    "pyhash": pyhash,
    "brp": brp,
    "twmx": twmx,
    "ap": ap_hash,
    "ndjb": ndjb,
    "djb": djb2,
    "bkdr": bkdr,
    "pjw": pjw,
    "js": js_hash,
    "rs": rs_hash,
    "sdbm": sdbm,
    "elf": elf,
}
