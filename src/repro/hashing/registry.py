"""The global hash-function registry mirroring the paper's Table II.

The paper draws the global set ``H`` of candidate hash functions from 22
classic string hashes.  :data:`GLOBAL_HASH_FAMILY` exposes exactly that set as
an ordered :class:`HashFamily`; HABF customises per-key hash subsets by
selecting indexes into this family and the HashExpressor stores those indexes
in its ``hashindex`` cells.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError, UnknownHashError
from repro.hashing.base import HashFunction
from repro.hashing.primitives import PRIMITIVES

#: Alias kept for API symmetry with the paper's "Table II" phrasing.
HASH_PRIMITIVES = PRIMITIVES


def list_hash_names() -> List[str]:
    """Return the ordered list of primitive names available in Table II."""
    return list(PRIMITIVES)


def get_primitive(name: str) -> Callable[[bytes], int]:
    """Look up a raw primitive by name.

    Raises:
        UnknownHashError: if ``name`` is not one of the Table II primitives.
    """
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise UnknownHashError(
            f"unknown hash primitive {name!r}; available: {', '.join(PRIMITIVES)}"
        ) from None


class HashFamily:
    """An ordered, indexable collection of :class:`HashFunction` objects.

    The family plays the role of the paper's global set ``H``: filters pick
    ``k``-sized subsets of it, HABF's HashExpressor stores indexes into it, and
    the initial selection ``H0`` is simply the first ``k`` members (or any
    explicit index list).

    Args:
        functions: The member hash functions, already carrying their indexes.
        name: Optional label used in reports.
    """

    def __init__(self, functions: Sequence[HashFunction], name: str = "H") -> None:
        if not functions:
            raise ConfigurationError("a HashFamily needs at least one hash function")
        indexes = [fn.index for fn in functions]
        if indexes != list(range(len(functions))):
            raise ConfigurationError("hash function indexes must be 0..n-1 in order")
        self._functions: List[HashFunction] = list(functions)
        self.name = name

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self) -> Iterator[HashFunction]:
        return iter(self._functions)

    def __getitem__(self, index: int) -> HashFunction:
        try:
            return self._functions[index]
        except IndexError:
            raise UnknownHashError(
                f"hash index {index} out of range for family of size {len(self)}"
            ) from None

    def subset(self, indexes: Iterable[int]) -> List[HashFunction]:
        """Return the hash functions at ``indexes``, in the given order."""
        return [self[i] for i in indexes]

    def initial_selection(self, k: int) -> List[int]:
        """Return the default initial selection ``H0``: the first ``k`` indexes."""
        if not 1 <= k <= len(self):
            raise ConfigurationError(
                f"k must be between 1 and |H|={len(self)}, got {k}"
            )
        return list(range(k))

    def random_selection(self, k: int, rng: random.Random) -> List[int]:
        """Sample ``k`` distinct indexes uniformly at random."""
        if not 1 <= k <= len(self):
            raise ConfigurationError(
                f"k must be between 1 and |H|={len(self)}, got {k}"
            )
        return sorted(rng.sample(range(len(self)), k))

    def names(self) -> List[str]:
        """Return the member names in index order."""
        return [fn.name for fn in self._functions]

    def hash_many(self, keys, indexes: Optional[Sequence[int]] = None, modulus: int = 0):
        """Hash a whole batch of keys under several member functions at once.

        Returns a ``(len(indexes), len(keys))`` uint64 ndarray (one row per
        selected function) when numpy is available, with the keys encoded
        once and shared across rows; otherwise a list of per-function lists
        from the scalar loop.  ``indexes`` defaults to the full family and
        ``modulus`` of 0 means full 64-bit hashes.
        """
        chosen = list(indexes) if indexes is not None else list(range(len(self)))
        from repro.hashing import vectorized as vec

        np = vec.numpy_or_none()
        if np is None:
            return [self[i].hash_many(keys, modulus) for i in chosen]
        batch = vec.as_batch(keys)
        if not chosen:
            return np.zeros((0, len(batch)), dtype=np.uint64)
        return np.stack([self[i].hash_many(batch, modulus) for i in chosen])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashFamily(name={self.name!r}, size={len(self)})"


def build_family(
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    name: str = "H",
) -> HashFamily:
    """Build a :class:`HashFamily` from primitive names.

    Args:
        names: Primitive names to include, in order.  Defaults to all of
            Table II.  Repeating a name is allowed (each occurrence gets its
            own index and a distinct derived seed) which is how the
            BF(City64)/BF(XXH128) configurations of Fig. 14 are expressed:
            ``k`` copies of one primitive with different seeds.
        seed: Base seed.  Occurrence ``j`` of a repeated name receives seed
            ``seed + j`` so repeated primitives stay independent.
        name: Label for the family.
    """
    chosen = list(names) if names is not None else list_hash_names()
    functions: List[HashFunction] = []
    occurrences: dict = {}
    for index, primitive_name in enumerate(chosen):
        primitive = get_primitive(primitive_name)
        count = occurrences.get(primitive_name, 0)
        occurrences[primitive_name] = count + 1
        fn_seed = 0 if (seed == 0 and count == 0) else seed + count
        functions.append(
            HashFunction(name=primitive_name, index=index, primitive=primitive, seed=fn_seed)
        )
    return HashFamily(functions, name=name)


#: The default global family, matching the paper's Table II (22 functions).
GLOBAL_HASH_FAMILY = build_family(name="TableII")
