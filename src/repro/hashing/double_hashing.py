"""Kirsch–Mitzenmacher double hashing, used by f-HABF and the Fig. 14 BF variants.

The paper's fast variant (f-HABF) and the single-primitive Bloom filters
BF(City64) / BF(XXH128) avoid computing ``k`` independent hashes per key.
Instead they compute two base hashes ``h1(x)`` and ``h2(x)`` once and simulate
the ``i``-th hash as ``g_i(x) = h1(x) + i * h2(x)``.  This module provides a
:class:`DoubleHashFamily` that exposes the simulated functions through the
same :class:`~repro.hashing.base.HashFunction`-like calling convention the
rest of the library uses, so filters can swap hashing strategies without any
other code change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hashing.base import HashFunction, Key, mix64, normalize_key
from repro.hashing.primitives import PRIMITIVES

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class SimulatedHash:
    """The ``i``-th Kirsch–Mitzenmacher simulated hash ``g_i(x) = h1(x) + i*h2(x)``."""

    name: str
    index: int
    base1: Callable[[bytes], int]
    base2: Callable[[bytes], int]
    step: int
    family: object = None

    def raw(self, key: Key) -> int:
        data = normalize_key(key)
        h1 = self.base1(data)
        h2 = self.base2(data) | 1  # force odd so the step cycles the whole range
        return (h1 + self.step * h2) & _MASK64

    def __call__(self, key: Key, modulus: int) -> int:
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        return self.raw(key) % modulus

    def hash_many(self, keys, modulus: int = 0):
        """Vector form of :meth:`raw` / :meth:`__call__` over a whole batch.

        Shares one vectorized h1/h2 base pass per batch with every other
        simulated hash of the same family (via the batch cache); falls back
        to the scalar loop when numpy is unavailable.
        """
        if modulus < 0:
            raise ValueError("modulus must be positive (or 0 for no reduction)")
        from repro.hashing import vectorized as vec

        np = vec.numpy_or_none()
        if np is None or self.family is None:
            if modulus:
                return [self(key, modulus) for key in keys]
            return [self.raw(key) for key in keys]
        batch = vec.as_batch(keys)
        h1, h2 = self.family.base_hashes_many(batch)
        values = h1 + np.uint64(self.step) * (h2 | np.uint64(1))
        if modulus:
            return values % np.uint64(modulus)
        return values


class DoubleHashFamily:
    """A family of ``size`` simulated hashes derived from two base primitives.

    The interface intentionally matches :class:`repro.hashing.registry.HashFamily`
    (indexing, iteration, ``initial_selection``) so filters accept either.
    """

    def __init__(self, size: int, primitive: str = "xxhash", seed: int = 0) -> None:
        if size < 1:
            raise ConfigurationError("double hash family needs size >= 1")
        if primitive not in PRIMITIVES:
            raise ConfigurationError(f"unknown base primitive {primitive!r}")
        base = PRIMITIVES[primitive]
        salt1 = (seed * 0x9E3779B97F4A7C15 + 0xA5A5A5A5) & _MASK64
        salt2 = (seed * 0xC2B2AE3D27D4EB4F + 0x5A5A5A5A) & _MASK64

        # The whole point of double hashing is to evaluate the base primitive
        # once per key instead of once per simulated function.  The simulated
        # functions are evaluated back-to-back on the same key by the filters,
        # so a single-entry memo captures that reuse without unbounded growth.
        memo: dict = {}

        def bases(data: bytes, _base=base, _s1=salt1, _s2=salt2, _memo=memo):
            cached = _memo.get(data)
            if cached is None:
                raw = _base(data)
                cached = (mix64(raw ^ _s1), mix64(raw ^ _s2))
                _memo.clear()
                _memo[data] = cached
            return cached

        def base1(data: bytes, _bases=bases) -> int:
            return _bases(data)[0]

        def base2(data: bytes, _bases=bases) -> int:
            return _bases(data)[1]

        self.name = f"double[{primitive}]"
        self.primitive_name = primitive
        self.seed = seed
        self._base = base
        self._salt1 = salt1
        self._salt2 = salt2
        self._functions: List[SimulatedHash] = [
            SimulatedHash(
                name=f"{primitive}+{i}*step",
                index=i,
                base1=base1,
                base2=base2,
                step=i + 1,
                family=self,
            )
            for i in range(size)
        ]

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self):
        return iter(self._functions)

    def __getitem__(self, index: int) -> SimulatedHash:
        return self._functions[index]

    def subset(self, indexes: Sequence[int]) -> List[SimulatedHash]:
        return [self._functions[i] for i in indexes]

    def initial_selection(self, k: int) -> List[int]:
        if not 1 <= k <= len(self):
            raise ConfigurationError(f"k must be between 1 and {len(self)}, got {k}")
        return list(range(k))

    def names(self) -> List[str]:
        return [fn.name for fn in self._functions]

    def base_hashes_many(self, batch):
        """One vectorized base pass: ``(h1, h2)`` uint64 vectors for ``batch``.

        This is the whole point of lifting Kirsch–Mitzenmacher into the batch
        engine — every simulated function of the family derives from these
        two vectors with one multiply-add, so a k-probe query hashes each key
        once instead of k times.  Memoised on the batch.
        """
        from repro.hashing import vectorized as vec

        np = vec.numpy_or_none()
        cache_key = ("double-bases", id(self))
        cached = batch.cache.get(cache_key)
        if cached is None:
            raw = vec.hash_batch(self._base, batch)
            h1 = vec.mix64(raw ^ np.uint64(self._salt1))
            h2 = vec.mix64(raw ^ np.uint64(self._salt2))
            cached = (h1, h2)
            batch.cache[cache_key] = cached
        return cached

    def hash_many(self, keys, indexes: Optional[Sequence[int]] = None, modulus: int = 0):
        """Batch counterpart of :meth:`repro.hashing.registry.HashFamily.hash_many`.

        All requested simulated functions are derived from a single h1/h2
        base pass; returns a ``(len(indexes), len(keys))`` uint64 ndarray, or
        per-function scalar lists when numpy is unavailable.
        """
        chosen = list(indexes) if indexes is not None else list(range(len(self)))
        from repro.hashing import vectorized as vec

        np = vec.numpy_or_none()
        if np is None:
            return [self._functions[i].hash_many(keys, modulus) for i in chosen]
        batch = vec.as_batch(keys)
        if not chosen:
            return np.zeros((0, len(batch)), dtype=np.uint64)
        h1, h2 = self.base_hashes_many(batch)
        odd = h2 | np.uint64(1)
        rows = []
        for i in chosen:
            values = h1 + np.uint64(self._functions[i].step) * odd
            rows.append(values % np.uint64(modulus) if modulus else values)
        return np.stack(rows)


def double_hashing_family(size: int, primitive: str = "xxhash", seed: int = 0) -> DoubleHashFamily:
    """Convenience constructor matching :func:`repro.hashing.registry.build_family`."""
    return DoubleHashFamily(size=size, primitive=primitive, seed=seed)


__all__ = ["DoubleHashFamily", "SimulatedHash", "double_hashing_family", "HashFunction"]
