"""Streaming-workload generators: Zipf query mixes, key churn, flood keys.

The static generators (:mod:`~repro.workloads.shalla`,
:mod:`~repro.workloads.ycsb`) produce one fixed dataset; scenario replays
also need the *traffic* side — which keys get queried, how the hot set
drifts between phases, which keys rotate out of the positive set, and the
adversarial always-miss floods the paper's cost model is built to absorb.
Every generator here takes an explicit ``seed=`` (or an injectable ``rng=``
``random.Random``), so a scenario replay is reproducible end to end and the
seeds can be recorded next to its results.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hashing.base import Key, mix64
from repro.workloads.zipf import zipf_weights

__all__ = ["adversarial_flood", "churn_keys", "zipf_query_stream"]


def zipf_query_stream(
    population: Sequence[Key],
    count: int,
    skewness: float = 1.0,
    seed: int = 1,
    rng: Optional[random.Random] = None,
    rotate: int = 0,
) -> List[Key]:
    """Draw a Zipf-weighted query stream over ``population``.

    The first key in (rotated) population order is the hottest; ``rotate``
    shifts which keys carry the head of the distribution, which is how a
    multi-phase scenario models *drift*: same population, same skew, a
    different hot set each phase.

    Args:
        population: Keys the stream draws from (with replacement).
        count: Stream length.
        skewness: Zipf skewness (0 = uniform traffic).
        seed: Draw seed (ignored when ``rng`` is given).
        rng: Injectable randomness shared across a scenario's draws.
        rotate: Rotate the rank→key assignment by this many positions.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    population = list(population)
    if not population:
        raise ConfigurationError("cannot draw queries from an empty population")
    if rotate:
        pivot = rotate % len(population)
        population = population[pivot:] + population[:pivot]
    weights = zipf_weights(len(population), skewness)
    chooser = rng or random.Random(seed)
    return chooser.choices(population, weights=weights, k=count)


def churn_keys(
    keys: Sequence[Key],
    fraction: float,
    seed: int = 1,
    rng: Optional[random.Random] = None,
    tag: str = "churn",
) -> Tuple[List[Key], List[Key], List[str]]:
    """Churn a key set: retire a fraction, mint replacements.

    Returns ``(survivors, removed, added)`` — ``survivors + added`` is the
    next phase's positive set, and ``removed`` are exactly the keys a
    correct filter must now *reject*: queried after the churn they are
    known negatives, the signal the key-churn scenario feeds back into
    rebuilds.

    Args:
        keys: The current positive key set.
        fraction: Share of keys to retire, in ``[0, 1]``.
        seed: Selection seed (ignored when ``rng`` is given); also salts
            the minted replacement keys.
        rng: Injectable randomness shared across a scenario's draws.
        tag: Prefix for minted replacement keys.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"churn fraction must be in [0, 1], got {fraction}")
    keys = list(keys)
    retire = int(len(keys) * fraction)
    chooser = rng or random.Random(seed)
    retired = set(chooser.sample(range(len(keys)), retire)) if retire else set()
    survivors = [key for index, key in enumerate(keys) if index not in retired]
    removed = [keys[index] for index in sorted(retired)]
    added = [
        f"{tag}-{mix64((seed + 1) * 0x9E3779B97F4A7C15 ^ index):016x}"
        for index in range(retire)
    ]
    return survivors, removed, added


def adversarial_flood(
    count: int,
    seed: int = 1,
    prefix: str = "atk",
) -> List[str]:
    """Mint ``count`` deterministic always-miss flood keys.

    These model the adversarial traffic the paper's cost model targets: a
    caller hammering keys that are *never* members, each miss carrying a
    high cost.  The keys are pure mixer output — no structure for a
    learned model and no overlap with any other generator's keys (distinct
    prefix), so feeding them to a rebuild as known negatives is the only
    way a backend can get ahead of them.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    return [
        f"{prefix}-{mix64((seed + 7) * 0xD1B54A32D192ED03 ^ index):016x}"
        for index in range(count)
    ]
