"""Workload generators reproducing the paper's two datasets and cost model.

* :mod:`repro.workloads.shalla` — a synthetic stand-in for Shalla's Blacklists:
  URL keys with evident structural characteristics (DESIGN.md §4).
* :mod:`repro.workloads.ycsb` — YCSB-style keys (4-byte prefix + 64-bit
  integer) with no learnable structure.
* :mod:`repro.workloads.zipf` — Zipf-distributed misidentification costs with
  a configurable skewness factor (0 = uniform).
* :mod:`repro.workloads.drift` — streaming-workload generators (Zipf query
  mixes with rotatable hot sets, key churn, adversarial always-miss floods)
  for scenario replays; all seeded.
* :mod:`repro.workloads.dataset` — the :class:`~repro.workloads.dataset.MembershipDataset`
  container holding positive keys, negative keys and per-key costs.
"""

from repro.workloads.dataset import MembershipDataset
from repro.workloads.drift import adversarial_flood, churn_keys, zipf_query_stream
from repro.workloads.shalla import generate_shalla_like
from repro.workloads.ycsb import generate_ycsb_like
from repro.workloads.zipf import assign_zipf_costs, zipf_weights

__all__ = [
    "MembershipDataset",
    "generate_shalla_like",
    "generate_ycsb_like",
    "assign_zipf_costs",
    "zipf_weights",
    "adversarial_flood",
    "churn_keys",
    "zipf_query_stream",
]
