"""Zipf cost distributions (Section V-C of the paper).

The paper assigns each negative key a misidentification cost drawn from a
Zipf distribution with a skewness factor between 0 (uniform) and 3.0, then
randomly shuffles the assignment.  :func:`assign_zipf_costs` reproduces that
procedure deterministically.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hashing.base import Key


def zipf_weights(count: int, skewness: float) -> List[float]:
    """Return ``count`` Zipf weights ``rank^-skewness`` (uniform when skewness=0).

    The weights are normalised so their mean is 1.0, which keeps weighted FPR
    directly comparable to unweighted FPR when the skewness is 0.
    """
    if count <= 0:
        raise ConfigurationError("count must be positive")
    if skewness < 0:
        raise ConfigurationError("skewness must be non-negative")
    raw = [1.0 / ((rank + 1) ** skewness) for rank in range(count)]
    mean = sum(raw) / count
    return [value / mean for value in raw]


def assign_zipf_costs(
    keys: Sequence[Key],
    skewness: float,
    seed: int = 1,
    shuffle: bool = True,
    rng: Optional[random.Random] = None,
) -> Dict[Key, float]:
    """Assign Zipf-distributed costs to ``keys``.

    Args:
        keys: The keys to assign costs to (typically the negative key set).
        skewness: Zipf skewness factor; 0 yields a uniform cost of 1.0.
        seed: Shuffle seed (the paper shuffles the generated distribution).
        shuffle: When False the highest cost goes to the first key, the second
            highest to the second key, and so on (useful in tests).
        rng: Injectable randomness; overrides ``seed`` when given, so scenario
            replays can thread one seeded generator through every draw.
    """
    keys = list(keys)
    if not keys:
        return {}
    weights = zipf_weights(len(keys), skewness)
    if shuffle:
        (rng or random.Random(seed)).shuffle(weights)
    return dict(zip(keys, weights))
