"""YCSB-style key generator (the paper's second dataset).

The paper modifies YCSB's uniform generator to emit keys made of a 4-byte
prefix and a 64-bit integer "without evident characteristics" — i.e. there is
nothing for a learned model to exploit.  This generator reproduces that
schema: every key is ``user`` + a 20-digit decimal rendering of a 64-bit value
produced by a SplitMix64-style mixer, so positive and negative keys are
statistically indistinguishable.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import ConfigurationError
from repro.hashing.base import mix64
from repro.workloads.dataset import MembershipDataset

_DEFAULT_PREFIX = "user"


def _ycsb_key(counter: int, seed: int, prefix: str) -> str:
    value = mix64((counter + 1) * 0x9E3779B97F4A7C15 ^ (seed * 0xD1B54A32D192ED03))
    return f"{prefix}{value:020d}"


def generate_ycsb_like(
    num_positives: int = 25_000,
    num_negatives: int = 23_000,
    seed: int = 1,
    prefix: str = _DEFAULT_PREFIX,
    name: str = "ycsb",
) -> MembershipDataset:
    """Generate the YCSB-like dataset (4-byte prefix + 64-bit integer keys).

    Args:
        num_positives: Size of the positive key set.
        num_negatives: Size of the known negative key set.
        seed: Generation seed; the output is fully deterministic.
        prefix: The 4-byte key prefix (``"user"`` matches YCSB's default).
        name: Dataset label used in reports.
    """
    if num_positives <= 0 or num_negatives <= 0:
        raise ConfigurationError("dataset sizes must be positive")
    if len(prefix.encode("utf-8")) != 4:
        raise ConfigurationError("prefix must be exactly 4 bytes, as in the paper")
    positives: List[str] = []
    negatives: List[str] = []
    seen: Set[str] = set()
    counter = 0
    while len(positives) < num_positives or len(negatives) < num_negatives:
        key = _ycsb_key(counter, seed, prefix)
        counter += 1
        if key in seen:
            continue
        seen.add(key)
        if len(positives) < num_positives:
            positives.append(key)
        else:
            negatives.append(key)
    return MembershipDataset(name=name, positives=positives, negatives=negatives)
