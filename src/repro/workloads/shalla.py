"""Synthetic stand-in for Shalla's Blacklists (the paper's URL dataset).

Shalla's Blacklists is a categorised URL blocklist (~2.9 M keys split roughly
half/half into the paper's positive and negative sets).  The hosting site is
offline and this environment has no network access, so this module generates a
URL corpus with the same *evident characteristics* the paper relies on:

* keys are URLs with category-correlated token structure — blacklisted
  (positive) URLs are drawn from "risky" categories with characteristic TLDs,
  hosts and path tokens, benign (negative) URLs from ordinary categories;
* the two classes are therefore separable to a useful degree by a classifier
  over character n-grams (which is what makes the learned baselines strong on
  this dataset and is irrelevant to the hash-based filters);
* positive and negative sets are disjoint and deterministic for a given seed.

Sizes default to laptop-scale (thousands of keys); the generator accepts any
size so the experiment harness can scale up when more time is available.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.errors import ConfigurationError
from repro.workloads.dataset import MembershipDataset

_RISKY_CATEGORIES = (
    "adv", "tracker", "spyware", "warez", "gamble", "phish", "malware", "porn",
)
_BENIGN_CATEGORIES = (
    "news", "shopping", "education", "health", "travel", "sports", "music", "recipes",
)
_RISKY_TLDS = ("xyz", "top", "click", "info", "biz", "ru", "cn", "tk")
_BENIGN_TLDS = ("com", "org", "net", "edu", "gov", "io", "co", "de")
_RISKY_WORDS = (
    "free", "win", "bonus", "crack", "keygen", "casino", "bet", "pills",
    "adult", "prize", "cheap", "vip", "hot", "xxx", "loan", "hack",
)
_BENIGN_WORDS = (
    "article", "blog", "docs", "about", "contact", "product", "review", "guide",
    "library", "store", "portal", "forum", "recipe", "course", "photo", "event",
)
_PATH_SEGMENTS = ("index", "page", "item", "view", "post", "cat", "id", "ref")


def _make_url(rng: random.Random, risky: bool, serial: int) -> str:
    categories = _RISKY_CATEGORIES if risky else _BENIGN_CATEGORIES
    tlds = _RISKY_TLDS if risky else _BENIGN_TLDS
    words = _RISKY_WORDS if risky else _BENIGN_WORDS
    category = rng.choice(categories)
    host_word = rng.choice(words)
    second_word = rng.choice(words)
    tld = rng.choice(tlds)
    # Risky hosts frequently embed digits and hyphens; benign hosts rarely do.
    if risky and rng.random() < 0.7:
        host = f"{host_word}{rng.randint(0, 9999)}-{second_word}"
    else:
        host = f"{host_word}{second_word}"
    depth = rng.randint(1, 3)
    segments = [
        f"{rng.choice(_PATH_SEGMENTS)}{rng.randint(0, 999)}" for _ in range(depth)
    ]
    path = "/".join(segments)
    return f"http://{category}.{host}.{tld}/{path}?s={serial}"


def generate_shalla_like(
    num_positives: int = 15_000,
    num_negatives: int = 14_500,
    seed: int = 1,
    name: str = "shalla",
) -> MembershipDataset:
    """Generate the Shalla-like URL dataset.

    Args:
        num_positives: Size of the positive (blacklisted) key set.
        num_negatives: Size of the known negative (benign) key set.  The
            paper's real dataset has slightly fewer negatives than positives,
            hence the default ratio.
        seed: Generation seed; the output is fully deterministic.
        name: Dataset label used in reports.
    """
    if num_positives <= 0 or num_negatives <= 0:
        raise ConfigurationError("dataset sizes must be positive")
    rng = random.Random(seed)
    positives = _generate_unique(rng, risky=True, count=num_positives)
    taken: Set[str] = set(positives)
    negatives = _generate_unique(rng, risky=False, count=num_negatives, exclude=taken)
    return MembershipDataset(name=name, positives=positives, negatives=negatives)


def _generate_unique(
    rng: random.Random,
    risky: bool,
    count: int,
    exclude: Set[str] = frozenset(),
) -> List[str]:
    keys: List[str] = []
    seen: Set[str] = set()
    serial = 0
    while len(keys) < count:
        url = _make_url(rng, risky, serial)
        serial += 1
        if url in seen or url in exclude:
            continue
        seen.add(url)
        keys.append(url)
    return keys
