"""The dataset container shared by every experiment and example.

A :class:`MembershipDataset` bundles the positive key set ``S``, the known
negative key set ``O`` and the per-key cost function ``Θ`` (defaulting to
uniform cost 1.0), validating the disjointness invariant the problem
formulation requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import DatasetError
from repro.hashing.base import Key


@dataclass
class MembershipDataset:
    """Positive keys, negative keys and per-key misidentification costs.

    Attributes:
        name: Label used in experiment reports (e.g. ``"shalla"`` or ``"ycsb"``).
        positives: The positive key set ``S`` (keys that are members).
        negatives: The known negative key set ``O`` (keys that are not members).
        costs: Per-key cost ``Θ(e)`` for negative keys; keys missing from the
            mapping have cost 1.0.
    """

    name: str
    positives: List[Key]
    negatives: List[Key]
    costs: Dict[Key, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.positives:
            raise DatasetError("a dataset needs at least one positive key")
        if len(set(self.positives)) != len(self.positives):
            raise DatasetError("positive keys must be unique")
        if len(set(self.negatives)) != len(self.negatives):
            raise DatasetError("negative keys must be unique")
        overlap = set(self.positives) & set(self.negatives)
        if overlap:
            raise DatasetError(
                f"positive and negative keys must be disjoint ({len(overlap)} overlap)"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_positives(self) -> int:
        """Number of positive keys ``|S|``."""
        return len(self.positives)

    @property
    def num_negatives(self) -> int:
        """Number of known negative keys ``|O|``."""
        return len(self.negatives)

    def cost_of(self, key: Key) -> float:
        """Cost ``Θ(key)``; 1.0 when no explicit cost was assigned."""
        return float(self.costs.get(key, 1.0))

    def total_negative_cost(self) -> float:
        """Sum of ``Θ`` over all negative keys (the weighted-FPR denominator)."""
        return sum(self.cost_of(key) for key in self.negatives)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_costs(self, costs: Mapping[Key, float], name: Optional[str] = None) -> "MembershipDataset":
        """Return a copy of this dataset using different costs."""
        return MembershipDataset(
            name=name or self.name,
            positives=list(self.positives),
            negatives=list(self.negatives),
            costs=dict(costs),
        )

    def with_uniform_costs(self) -> "MembershipDataset":
        """Return a copy with every cost reset to 1.0 (uniform distribution)."""
        return self.with_costs({}, name=self.name)

    def subsample(
        self,
        num_positives: Optional[int] = None,
        num_negatives: Optional[int] = None,
        seed: int = 1,
    ) -> "MembershipDataset":
        """Return a smaller dataset sampled deterministically from this one."""
        rng = random.Random(seed)
        positives = list(self.positives)
        negatives = list(self.negatives)
        if num_positives is not None and num_positives < len(positives):
            positives = rng.sample(positives, num_positives)
        if num_negatives is not None and num_negatives < len(negatives):
            negatives = rng.sample(negatives, num_negatives)
        costs = {key: self.costs[key] for key in negatives if key in self.costs}
        return MembershipDataset(
            name=self.name, positives=positives, negatives=negatives, costs=costs
        )

    def split_negatives(self, train_fraction: float, seed: int = 1) -> Tuple[List[Key], List[Key]]:
        """Split the negative keys into (train, held-out) subsets.

        Useful for evaluating filters on negative keys they did not see during
        construction (generalisation check), and for training learned filters.
        """
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError("train_fraction must be strictly between 0 and 1")
        rng = random.Random(seed)
        shuffled = list(self.negatives)
        rng.shuffle(shuffled)
        cut = int(len(shuffled) * train_fraction)
        return shuffled[:cut], shuffled[cut:]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MembershipDataset(name={self.name!r}, positives={len(self.positives)}, "
            f"negatives={len(self.negatives)})"
        )
