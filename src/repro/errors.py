"""Exception hierarchy for the HABF reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A filter, workload or experiment was configured with invalid parameters."""


class CapacityError(ReproError, RuntimeError):
    """A data structure ran out of capacity (e.g. Xor filter peeling failed)."""


class ConstructionError(ReproError, RuntimeError):
    """A filter could not be constructed from the supplied key sets."""


class UnknownHashError(ConfigurationError):
    """A hash function name or index does not exist in the global registry."""


class DatasetError(ReproError, ValueError):
    """A workload/dataset was malformed (e.g. overlapping positive/negative sets)."""


class CodecError(ReproError, ValueError):
    """A serialized filter frame is malformed, corrupted or unsupported."""


class ServiceError(ReproError, RuntimeError):
    """The membership service was used incorrectly (e.g. queried before load)."""
