"""Tests for the streaming scenario harness and the built-in library.

The library tests pin the properties the benchmark's comparisons rest on:
builders are pure functions of their seed (same seed → byte-identical
phases), floods really are router-targeted at the shard subset they claim,
and churn really retires keys into the query stream.  The harness tests
replay small scenarios against real services and check the ground-truth
accounting line by line — the numbers in ``BENCH_adaptive.json`` are only
as trustworthy as this arithmetic.
"""

from __future__ import annotations

import json
import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.obs import FprEstimator, Registry
from repro.scenarios import (
    Scenario,
    ScenarioPhase,
    adversarial_negatives_scenario,
    builtin_scenarios,
    cost_shift_scenario,
    key_churn_scenario,
    run_scenario,
    zipf_drift_scenario,
)
from repro.service import MembershipService
from repro.service.adaptive import AdaptivePolicy, BackendCandidate, BackendScorer
from repro.service.shards import ShardRouter

BUILDERS = (
    adversarial_negatives_scenario,
    cost_shift_scenario,
    zipf_drift_scenario,
    key_churn_scenario,
)


class TestScenarioLibrary:
    def test_builders_are_pure_functions_of_the_seed(self):
        for build in BUILDERS:
            first = build(seed=5, num_shards=4, scale=0.05)
            again = build(seed=5, num_shards=4, scale=0.05)
            assert first == again, f"{first.name}: same seed, different scenario"
            other = build(seed=6, num_shards=4, scale=0.05)
            assert first != other, f"{first.name}: seed had no effect"

    def test_builtin_scenarios_cover_the_four_shapes(self):
        scenarios = builtin_scenarios(seed=3, num_shards=4, scale=0.05)
        assert [scenario.name for scenario in scenarios] == [
            "adversarial_negatives",
            "cost_shift",
            "zipf_drift",
            "key_churn",
        ]
        assert all(scenario.seed == 3 for scenario in scenarios)
        for scenario in scenarios:
            assert scenario.phases
            for phase in scenario.phases:
                assert phase.keys
                assert phase.queries

    def test_flood_keys_are_router_targeted(self):
        scenario = adversarial_negatives_scenario(seed=2, num_shards=8, scale=0.05)
        router = ShardRouter(8, seed=0)
        flooded = set(range(4))
        for phase in scenario.phases:
            assert phase.negatives
            assert {router.shard_of(key) for key in phase.negatives} <= flooded
            # The known flood carries the premium cost on every phase.
            assert all(phase.costs[key] == 40.0 for key in phase.negatives)

    def test_cost_shift_moves_the_cost_mass_mid_run(self):
        scenario = cost_shift_scenario(seed=2, num_shards=8, scale=0.05)
        router = ShardRouter(8, seed=0)
        early, late = scenario.phases[0], scenario.phases[-1]
        group_b = [
            key for key in early.negatives if router.shard_of(key) >= 4
        ]
        assert group_b
        assert all(early.costs[key] == 1.0 for key in group_b)
        assert all(late.costs[key] == 32.0 for key in group_b)

    def test_zipf_drift_keeps_the_working_set_but_rotates_it(self):
        scenario = zipf_drift_scenario(seed=2, num_shards=4, scale=0.05)
        negatives = {phase.negatives for phase in scenario.phases}
        assert len(negatives) == 1  # same known working set every phase
        heads = [
            Counter(
                key for key in phase.queries if key in set(phase.negatives)
            ).most_common(1)[0][0]
            for phase in scenario.phases
        ]
        assert len(set(heads)) > 1  # ...but the hot head moves

    def test_churn_retires_keys_into_the_query_stream(self):
        scenario = key_churn_scenario(seed=2, num_shards=4, scale=0.1)
        first, second = scenario.phases[0], scenario.phases[1]
        assert first.negatives == ()
        retired = set(second.negatives)
        assert retired
        assert retired <= set(first.keys)
        assert retired.isdisjoint(second.keys)
        assert retired & set(second.queries)  # stale callers keep asking
        assert all(second.costs[key] == 20.0 for key in retired)


class TestHarnessAccounting:
    def test_empty_scenario_is_rejected(self):
        service = MembershipService(
            backend="bloom", num_shards=2, bits_per_key=10.0, registry=Registry()
        )
        empty = Scenario(name="void", seed=1, phases=())
        with pytest.raises(ConfigurationError, match="no phases"):
            run_scenario(service, empty)

    def test_ground_truth_accounting_is_exact(self):
        keys = tuple(f"member-{i:04d}" for i in range(400))
        negatives = tuple(f"absent-{i:04d}" for i in range(120))
        costs = {key: 5.0 for key in negatives}
        scenario = Scenario(
            name="tiny",
            seed=9,
            phases=(
                ScenarioPhase(
                    name="p0",
                    keys=keys,
                    negatives=negatives,
                    costs=costs,
                    queries=tuple(keys[:200]) + negatives,
                ),
                ScenarioPhase(name="p1", keys=keys, queries=tuple(keys[:60])),
            ),
        )
        service = MembershipService(
            backend="bloom", num_shards=2, bits_per_key=12.0, registry=Registry()
        )
        report = run_scenario(service, scenario, clients=3, chunk=16)

        assert (report.scenario, report.seed) == ("tiny", 9)
        assert [phase.name for phase in report.phases] == ["p0", "p1"]
        first = report.phases[0]
        assert first.queries == 320
        assert first.negative_queries == 120
        assert first.negative_cost == 600.0
        assert first.fp_cost == first.false_positives * 5.0
        assert first.fpr_cost == first.fp_cost / first.negative_cost
        # Positives-only phase: no negative cost, no FPR-cost contribution.
        second = report.phases[1]
        assert (second.negative_queries, second.negative_cost) == (0, 0.0)
        # The filter contract: zero false negatives, every phase.
        assert report.false_negatives == 0
        assert report.throughput_qps > 0
        # One rebuild per phase boundary; no window straddles one.
        assert first.generations == [1]
        assert second.generations == [2]
        assert report.migrations == 0
        assert report.shard_backends == ["bloom", "bloom"]
        json.dumps(report.to_dict())  # BENCH-ready: plain JSON throughout

    def test_replay_works_with_an_adaptive_service(self):
        """A small end-to-end replay: the adaptive service must migrate the
        flooded shards to a negative-aware backend mid-scenario and finish
        with zero false negatives.  Everything is seeded, so the migration
        decision is deterministic."""
        scenario = adversarial_negatives_scenario(seed=1, num_shards=4, scale=0.4)
        service = MembershipService(
            backend="xor",
            num_shards=4,
            bits_per_key=10.0,
            registry=Registry(),
            fpr_estimator=FprEstimator(sample_rate=1.0, rng=random.Random(3)),
            adaptive_policy=AdaptivePolicy(
                [
                    BackendCandidate("bloom", {"bits_per_key": 10.0}),
                    BackendCandidate("xor", {"bits_per_key": 10.0}),
                    BackendCandidate("habf", {"bits_per_key": 10.0}),
                ],
                scorer=BackendScorer(min_sampled=60),
            ),
        )
        report = run_scenario(service, scenario, clients=4, chunk=32)
        assert report.false_negatives == 0
        assert report.migrations > 0
        # Migrations only ever target the flooded half of the shard space.
        migrated = {shard for phase in report.phases for shard in phase.migrated}
        assert migrated <= {0, 1}
        assert "habf" in report.shard_backends[:2]
        assert report.shard_backends[2:] == ["xor", "xor"]
        # Generations stay monotone across the phases.
        flattened = [
            generation for phase in report.phases for generation in phase.generations
        ]
        assert flattened == sorted(flattened)
