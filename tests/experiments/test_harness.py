"""Unit tests for the experiment harness: config, registry, report, runner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    ExperimentConfig,
    PAPER_SHALLA_POSITIVES,
    PAPER_YCSB_POSITIVES,
    QUICK_CONFIG,
    mb_to_bits_per_key,
)
from repro.experiments.registry import (
    FILTER_BUILDERS,
    LEARNED_ALGORITHMS,
    NON_LEARNED_ALGORITHMS,
    build_filter,
    list_algorithms,
)
from repro.experiments.report import ExperimentResult, format_table, rows_to_csv
from repro.experiments.runner import averaged_skewed_sweep, sweep_space
from repro.workloads.shalla import generate_shalla_like


class TestConfig:
    def test_defaults_validate(self):
        config = ExperimentConfig()
        assert config.shalla_positives > 0
        assert QUICK_CONFIG.space_points <= config.space_points

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(shalla_positives=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(space_points=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(cost_shuffles=0)

    def test_mb_to_bits_per_key_matches_paper(self):
        # 1.5 MB over 1.49 M Shalla keys is ~8.4 bits/key in the paper.
        value = mb_to_bits_per_key(1.5, PAPER_SHALLA_POSITIVES)
        assert value == pytest.approx(8.44, abs=0.05)
        value = mb_to_bits_per_key(15.0, PAPER_YCSB_POSITIVES)
        assert value == pytest.approx(10.07, abs=0.05)

    def test_space_sweeps_grow(self):
        config = ExperimentConfig(space_points=5)
        shalla = config.shalla_space_sweep()
        assert len(shalla) == 5
        bits = [b for _, b in shalla]
        assert bits == sorted(bits)

    def test_datasets_are_deterministic(self):
        config = ExperimentConfig(shalla_positives=200, shalla_negatives=200)
        a = config.shalla_dataset()
        b = config.shalla_dataset()
        assert a.positives == b.positives


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = list_algorithms()
        for expected in ("HABF", "f-HABF", "BF", "Xor", "WBF", "LBF", "SLBF", "Ada-BF"):
            assert expected in names
        assert set(NON_LEARNED_ALGORITHMS) <= set(names)
        assert set(LEARNED_ALGORITHMS) <= set(names)

    def test_unknown_algorithm_rejected(self, small_shalla):
        with pytest.raises(ConfigurationError):
            build_filter("NotAFilter", small_shalla, 1000)

    def test_invalid_budget_rejected(self, small_shalla):
        with pytest.raises(ConfigurationError):
            build_filter("BF", small_shalla, 0)

    @pytest.mark.parametrize("name", ["HABF", "f-HABF", "BF", "Xor", "WBF", "BF(City64)", "BF(XXH128)"])
    def test_non_learned_builders_produce_zero_fnr_filters(self, name, small_shalla):
        dataset = small_shalla.subsample(num_positives=300, num_negatives=300, seed=2)
        filt = build_filter(name, dataset, total_bits=10 * dataset.num_positives, seed=2)
        assert all(filt.contains(key) for key in dataset.positives)

    def test_builders_are_total_for_every_registered_name(self, small_shalla):
        assert set(FILTER_BUILDERS) == set(list_algorithms())


class TestReport:
    def make_result(self):
        return ExperimentResult(
            experiment_id="figX",
            title="toy",
            rows=[
                {"algorithm": "A", "space_mb": 1.0, "weighted_fpr": 0.25},
                {"algorithm": "B", "space_mb": 1.0, "weighted_fpr": 0.5},
                {"algorithm": "A", "space_mb": 2.0, "weighted_fpr": 0.1},
            ],
        )

    def test_filter_rows_and_series(self):
        result = self.make_result()
        assert len(result.filter_rows(algorithm="A")) == 2
        assert result.series("weighted_fpr", algorithm="A") == [0.25, 0.1]
        assert result.filter_rows(algorithm="A", space_mb=2.0)[0]["weighted_fpr"] == 0.1

    def test_columns_order(self):
        assert self.make_result().columns() == ["algorithm", "space_mb", "weighted_fpr"]

    def test_csv_round_trip(self):
        csv_text = self.make_result().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "algorithm,space_mb,weighted_fpr"
        assert len(lines) == 4

    def test_table_rendering(self):
        table = self.make_result().to_table()
        assert "algorithm" in table and "weighted_fpr" in table
        assert format_table([]) == "(no rows)"
        assert rows_to_csv([]) == ""


class TestRunner:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        return generate_shalla_like(400, 400, seed=11)

    def test_sweep_space_produces_row_per_point_and_algorithm(self, tiny_dataset):
        sweep = [(1.0, 8.0), (2.0, 12.0)]
        rows = sweep_space(tiny_dataset, ["BF", "HABF"], sweep, seed=11)
        assert len(rows) == 4
        assert {row["algorithm"] for row in rows} == {"BF", "HABF"}
        assert all(row["fnr"] == 0.0 for row in rows)

    def test_habf_beats_bf_in_sweep(self, tiny_dataset):
        rows = sweep_space(tiny_dataset, ["BF", "HABF"], [(1.0, 8.0)], seed=11)
        by_algorithm = {row["algorithm"]: row for row in rows}
        assert by_algorithm["HABF"]["weighted_fpr"] <= by_algorithm["BF"]["weighted_fpr"]

    def test_averaged_skewed_sweep_averages(self, tiny_dataset):
        rows = averaged_skewed_sweep(
            tiny_dataset, ["BF"], [(1.0, 8.0)], skewness=1.0, num_shuffles=2, seed=11
        )
        assert len(rows) == 1
        assert rows[0]["num_shuffles"] == 2
        assert rows[0]["skewness"] == 1.0
