"""Tests for the run-everything driver (repro.experiments.run_all)."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # run_all regenerates figures that train learned filters

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.run_all import ALL_FIGURES, run_all, summarize

MICRO = ExperimentConfig(
    shalla_positives=400,
    shalla_negatives=400,
    ycsb_positives=400,
    ycsb_negatives=380,
    space_points=1,
    cost_shuffles=1,
    query_sample=100,
)


class TestRunAll:
    def test_every_figure_has_a_runner(self):
        assert set(ALL_FIGURES) == {
            "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"
        }

    @pytest.mark.slow
    def test_run_all_writes_csvs(self, tmp_path):
        results = run_all(MICRO, output_dir=tmp_path)
        assert set(results) == set(ALL_FIGURES)
        for name, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.rows
            csv_path = tmp_path / f"{name}.csv"
            assert csv_path.exists()
            assert csv_path.read_text().strip()
        summary_path = tmp_path / "summary.txt"
        assert summary_path.exists()
        assert "fig10" in summary_path.read_text()

    def test_summarize_handles_missing_figures(self):
        assert summarize({}) == "\n"

    def test_summarize_reports_ratios(self):
        fig12 = ExperimentResult(
            experiment_id="fig12",
            title="t",
            rows=[
                {"dataset": "shalla", "algorithm": "BF", "construction_ns_per_key": 100.0, "query_ns_per_key": 50.0},
                {"dataset": "shalla", "algorithm": "HABF", "construction_ns_per_key": 1000.0, "query_ns_per_key": 250.0},
            ],
        )
        text = summarize({"fig12": fig12})
        assert "construction ratio 10.0x" in text
        assert "query ratio 5.0x" in text
