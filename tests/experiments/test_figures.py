"""Integration tests: every figure runner executes and reproduces the paper's shape.

Each test uses a deliberately tiny configuration so the whole module stays
fast; the full-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # the figure suites include the learned baselines

from repro.experiments import (
    fig08_bounds,
    fig09_parameters,
    fig10_uniform,
    fig11_skewed,
    fig12_time,
    fig13_skewness,
    fig14_hash_impls,
    fig15_memory,
)
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig(
    shalla_positives=700,
    shalla_negatives=700,
    ycsb_positives=700,
    ycsb_negatives=650,
    space_points=2,
    cost_shuffles=1,
    query_sample=200,
)


@pytest.fixture(scope="module")
def fig10_result():
    return fig10_uniform.run(TINY)


@pytest.fixture(scope="module")
def fig11_result():
    return fig11_skewed.run(TINY)


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_bounds.run(TINY)

    def test_covers_both_panels(self, result):
        panels = {row["panel"] for row in result.rows}
        assert panels == {"a (vary k)", "b (vary b)"}
        assert len(result.rows) == len(fig08_bounds.K_SWEEP) + len(fig08_bounds.B_SWEEP)

    def test_bound_holds_everywhere(self, result):
        violations = [row for row in result.rows if not row["bound_holds"]]
        assert not violations, f"Eq. 19 bound violated at {violations}"


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_parameters.run(TINY)

    def test_all_three_sweeps_present(self, result):
        panels = {row["panel"] for row in result.rows}
        assert panels == {"a (vary delta)", "a (vary k)", "b (vary cell size)"}

    def test_recommended_delta_beats_extremes(self, result):
        deltas = {row["delta"]: row["weighted_fpr"] for row in result.filter_rows(panel="a (vary delta)")}
        assert deltas[0.25] <= deltas[0.9]


class TestFig10:
    def test_row_count(self, fig10_result):
        # 4 panels x space_points x algorithms (4 non-learned, 5 learned).
        assert len(fig10_result.rows) == 2 * 2 * 4 + 2 * 2 * 5

    def test_habf_beats_bf_on_every_point(self, fig10_result):
        for panel in ("a (shalla, non-learned)", "c (ycsb, non-learned)"):
            habf = fig10_result.series("weighted_fpr", panel=panel, algorithm="HABF")
            bf = fig10_result.series("weighted_fpr", panel=panel, algorithm="BF")
            assert all(h <= b for h, b in zip(habf, bf))

    def test_no_false_negatives_anywhere(self, fig10_result):
        assert all(row["fnr"] == 0.0 for row in fig10_result.rows)


class TestFig11:
    def test_includes_wbf_in_non_learned_panels(self, fig11_result):
        algorithms = {
            row["algorithm"] for row in fig11_result.filter_rows(panel="a (shalla, non-learned)")
        }
        assert "WBF" in algorithms

    def test_habf_wins_under_skew(self, fig11_result):
        """HABF must dominate the Bloom-based baselines at every point; the
        comparison against Xor allows a tiny absolute tolerance because at the
        tiny test scale a single cheap false positive moves the weighted FPR."""
        for panel in ("a (shalla, non-learned)", "c (ycsb, non-learned)"):
            rows = fig11_result.filter_rows(panel=panel)
            spaces = sorted({row["space_mb"] for row in rows})
            for space in spaces:
                at_space = {row["algorithm"]: row for row in rows if row["space_mb"] == space}
                habf = at_space["HABF"]["weighted_fpr"]
                assert habf <= at_space["BF"]["weighted_fpr"] + 1e-9
                assert habf <= at_space["WBF"]["weighted_fpr"] + 1e-9
                assert habf <= at_space["Xor"]["weighted_fpr"] + 0.01


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_time.run(TINY)

    def test_every_algorithm_timed_on_both_datasets(self, result):
        for dataset in ("shalla", "ycsb"):
            timed = {row["algorithm"] for row in result.filter_rows(dataset=dataset)}
            assert timed == set(fig12_time.TIMED_ALGORITHMS)

    def test_learned_filters_are_slowest_to_query(self, result):
        for dataset in ("shalla", "ycsb"):
            rows = {row["algorithm"]: row for row in result.filter_rows(dataset=dataset)}
            assert rows["LBF"]["query_ns_per_key"] > rows["BF"]["query_ns_per_key"]
            assert rows["HABF"]["construction_ns_per_key"] > rows["BF"]["construction_ns_per_key"]

    def test_fast_habf_builds_faster_than_habf(self):
        """f-HABF's construction shortcut (double hashing, no Γ) should not be
        slower than full HABF; allow 20% head-room for wall-clock noise.

        Engine-backed builds finish in single-digit milliseconds at this
        scale, so one scheduler stall can dominate a one-shot measurement;
        compare best-of-three builds instead of the shared fixture's single
        run.
        """
        from repro.experiments.registry import build_filter
        from repro.metrics.timing import time_construction_best_of

        dataset = TINY.shalla_dataset()
        total_bits = 10 * dataset.num_positives

        def best_seconds(algorithm):
            _, timing = time_construction_best_of(
                lambda: build_filter(
                    algorithm, dataset, total_bits, costs=dataset.costs, seed=TINY.seed
                ),
                num_keys=dataset.num_positives,
            )
            return timing.total_seconds

        assert best_seconds("f-HABF") <= 1.2 * best_seconds("HABF")


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_skewness.run(TINY)

    def test_sweep_covers_all_skewness_values(self, result):
        skews = sorted({row["skewness"] for row in result.rows})
        assert skews == sorted(fig13_skewness.SKEWNESS_SWEEP)

    def test_habf_at_least_matches_bf(self, result):
        for skew in fig13_skewness.SKEWNESS_SWEEP:
            rows = {row["algorithm"]: row for row in result.filter_rows(skewness=skew)}
            assert rows["HABF"]["weighted_fpr"] <= rows["BF"]["weighted_fpr"] + 1e-9


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_hash_impls.run(TINY)

    def test_bf_variants_present(self, result):
        algorithms = {row["algorithm"] for row in result.rows}
        assert algorithms == set(fig14_hash_impls.ALGORITHMS)

    def test_habf_beats_every_bf_variant_under_skew(self, result):
        skewed = result.filter_rows(panel="b (skewed)")
        spaces = sorted({row["space_mb"] for row in skewed})
        for space in spaces:
            at_space = {row["algorithm"]: row for row in skewed if row["space_mb"] == space}
            for variant in ("BF", "BF(City64)", "BF(XXH128)"):
                assert at_space["HABF"]["weighted_fpr"] <= at_space[variant]["weighted_fpr"] + 1e-9


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15_memory.run(TINY)

    def test_memory_reported_for_every_algorithm(self, result):
        for dataset in ("shalla", "ycsb"):
            measured = {row["algorithm"] for row in result.filter_rows(dataset=dataset)}
            assert measured == set(fig15_memory.MEASURED_ALGORITHMS)
            assert all(row["peak_construction_mb"] >= 0 for row in result.rows)

    def test_habf_needs_more_construction_memory_than_bf(self, result):
        for dataset in ("shalla", "ycsb"):
            rows = {row["algorithm"]: row for row in result.filter_rows(dataset=dataset)}
            assert rows["HABF"]["peak_construction_mb"] > rows["BF"]["peak_construction_mb"]
