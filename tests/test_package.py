"""Package-level tests: public exports, version, packaging metadata,
exception hierarchy."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing attribute {name}"

    def test_headline_classes_are_exported(self):
        assert repro.HABF.algorithm_name == "HABF"
        assert repro.FastHABF.algorithm_name == "f-HABF"
        assert len(repro.GLOBAL_HASH_FAMILY) == 22

    def test_pyproject_metadata_matches_package(self):
        """setup.py defers all metadata to pyproject.toml; keep them honest."""
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            pytest.skip("tomllib unavailable")
        pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
        metadata = tomllib.loads(pyproject.read_text())
        assert metadata["project"]["name"] == "habf-repro"
        assert metadata["project"]["version"] == repro.__version__
        assert any(
            dep.startswith("numpy") for dep in metadata["project"]["dependencies"]
        ), "numpy is a real dependency of the learned baselines and the batch engine"
        assert metadata["tool"]["pytest"]["ini_options"]["testpaths"] == [
            "tests",
            "benchmarks",
        ]

    def test_quickstart_snippet_from_readme(self):
        """The README quickstart must keep working verbatim (smaller sizes)."""
        positives = [f"user:{i}" for i in range(200)]
        negatives = [f"visitor:{i}" for i in range(200)]
        costs = {key: 1.0 + (hash(key) % 100) for key in negatives}
        habf = repro.HABF.build(
            positives,
            negatives,
            costs,
            params=repro.HABFParams(total_bits=2_000, k=3, delta=0.25, cell_hash_bits=4),
        )
        assert all(key in habf for key in positives)
        assert habf.construction_stats is not None


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            errors.ConfigurationError,
            errors.CapacityError,
            errors.ConstructionError,
            errors.UnknownHashError,
            errors.DatasetError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_configuration_error_is_a_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)
        assert issubclass(errors.DatasetError, ValueError)

    def test_runtime_errors(self):
        assert issubclass(errors.CapacityError, RuntimeError)
        assert issubclass(errors.ConstructionError, RuntimeError)

    def test_single_except_clause_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.UnknownHashError("nope")
