"""Latency-percentile helpers (p50/p95/p99) in :mod:`repro.metrics.timing`."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.metrics import LatencyPercentiles, latency_percentiles, percentile


def test_percentile_of_known_series():
    samples = [float(value) for value in range(1, 101)]  # 1..100
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 100.0) == 100.0
    assert percentile(samples, 50.0) == pytest.approx(50.5)
    assert percentile(samples, 95.0) == pytest.approx(95.05)
    assert percentile(samples, 99.0) == pytest.approx(99.01)


def test_percentile_is_order_independent():
    rng = random.Random(3)
    samples = [rng.random() for _ in range(500)]
    shuffled = list(samples)
    rng.shuffle(shuffled)
    for q in (10.0, 50.0, 95.0, 99.0):
        assert percentile(samples, q) == percentile(shuffled, q)


def test_percentile_single_sample_and_errors():
    assert percentile([7.0], 99.0) == 7.0
    with pytest.raises(ConfigurationError):
        percentile([], 50.0)
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101.0)


def test_latency_percentiles_summary():
    samples = [float(value) for value in range(1, 101)]
    summary = latency_percentiles(samples)
    assert isinstance(summary, LatencyPercentiles)
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.p50 <= summary.p95 <= summary.p99
    micros = summary.scaled(1e6)
    assert micros.p50 == pytest.approx(summary.p50 * 1e6)
    assert micros.count == summary.count


def test_latency_percentiles_rejects_empty():
    with pytest.raises(ConfigurationError):
        latency_percentiles([])
