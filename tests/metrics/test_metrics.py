"""Unit tests for the metrics: weighted FPR, timing and memory."""

from __future__ import annotations

import time

import pytest

from repro.core.bloom import BloomFilter
from repro.errors import ConfigurationError
from repro.metrics.fpr import evaluate_filter, false_positive_rate, weighted_fpr
from repro.metrics.memory import measure_construction_memory
from repro.metrics.timing import time_construction, time_queries
from repro.workloads.dataset import MembershipDataset


class _FixedFilter:
    """A stub filter that reports membership from an explicit set."""

    def __init__(self, members):
        self._members = set(members)

    def contains(self, key):
        return key in self._members


class TestFalsePositiveRate:
    def test_empty_negatives(self):
        assert false_positive_rate(_FixedFilter([]), []) == 0.0

    def test_counts_fraction(self):
        filt = _FixedFilter(["a", "b"])
        assert false_positive_rate(filt, ["a", "b", "c", "d"]) == pytest.approx(0.5)


class TestWeightedFpr:
    def test_uniform_costs_equal_plain_fpr(self):
        filt = _FixedFilter(["a"])
        negatives = ["a", "b", "c", "d"]
        assert weighted_fpr(filt, negatives) == pytest.approx(
            false_positive_rate(filt, negatives)
        )

    def test_costs_weight_the_errors(self):
        filt = _FixedFilter(["expensive"])
        negatives = ["expensive", "cheap"]
        costs = {"expensive": 99.0, "cheap": 1.0}
        assert weighted_fpr(filt, negatives, costs) == pytest.approx(0.99)

    def test_missing_costs_default_to_one(self):
        filt = _FixedFilter(["x"])
        assert weighted_fpr(filt, ["x", "y"], {"y": 3.0}) == pytest.approx(1 / 4)

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_fpr(_FixedFilter([]), ["a"], {"a": -1.0})

    def test_empty(self):
        assert weighted_fpr(_FixedFilter([]), []) == 0.0


class TestEvaluateFilter:
    def make_dataset(self):
        return MembershipDataset(
            name="toy",
            positives=["p1", "p2"],
            negatives=["n1", "n2", "n3"],
            costs={"n1": 10.0},
        )

    def test_perfect_filter(self):
        dataset = self.make_dataset()
        result = evaluate_filter(_FixedFilter(["p1", "p2"]), dataset)
        assert result.fpr == 0.0
        assert result.fnr == 0.0
        assert result.weighted_fpr == 0.0
        assert result.num_negatives == 3
        assert result.num_positives == 2

    def test_false_positive_accounting(self):
        dataset = self.make_dataset()
        result = evaluate_filter(_FixedFilter(["p1", "p2", "n1"]), dataset)
        assert result.num_false_positives == 1
        assert result.fpr == pytest.approx(1 / 3)
        assert result.weighted_fpr == pytest.approx(10.0 / 12.0)

    def test_false_negative_accounting(self):
        dataset = self.make_dataset()
        result = evaluate_filter(_FixedFilter(["p1"]), dataset)
        assert result.num_false_negatives == 1
        assert result.fnr == pytest.approx(0.5)

    def test_negatives_override(self):
        dataset = self.make_dataset()
        result = evaluate_filter(_FixedFilter(["p1", "p2"]), dataset, negatives=["n1"])
        assert result.num_negatives == 1


class TestTiming:
    def test_time_construction_returns_filter_and_timing(self):
        def build():
            bloom = BloomFilter(num_bits=1024, num_hashes=3)
            bloom.add_all(f"k{i}" for i in range(100))
            return bloom

        built, timing = time_construction(build, num_keys=100)
        assert built.num_items == 100
        assert timing.total_seconds > 0
        assert timing.ns_per_key > 0
        assert timing.num_keys == 100

    def test_time_queries(self):
        bloom = BloomFilter(num_bits=1024, num_hashes=3)
        bloom.add("a")
        result = time_queries(bloom, ["a", "b", "c"], repeats=5)
        assert result.num_keys == 15
        assert result.ns_per_key > 0

    def test_validation(self):
        bloom = BloomFilter(num_bits=64, num_hashes=2)
        with pytest.raises(ConfigurationError):
            time_construction(lambda: bloom, num_keys=0)
        with pytest.raises(ConfigurationError):
            time_queries(bloom, [])
        with pytest.raises(ConfigurationError):
            time_queries(bloom, ["a"], repeats=0)

    def test_ns_per_key_scales_with_duration(self):
        slow = lambda: time.sleep(0.01)  # noqa: E731 - tiny inline stub
        _, timing = time_construction(slow, num_keys=10)
        assert timing.ns_per_key >= 1e6  # at least a millisecond spread over 10 keys


class TestMemory:
    def test_allocation_is_observed(self):
        def build():
            return [bytes(1024) for _ in range(2000)]  # ~2 MB of distinct payloads

        payload, result = measure_construction_memory(build)
        assert len(payload) == 2000
        assert result.peak_bytes > 1_000_000
        assert result.peak_megabytes == pytest.approx(result.peak_bytes / (1024 * 1024))

    def test_small_allocation_smaller_than_large(self):
        _, small = measure_construction_memory(lambda: [bytes(512) for _ in range(200)])
        _, large = measure_construction_memory(lambda: [bytes(4096) for _ in range(2000)])
        assert small.peak_bytes < large.peak_bytes

    def test_current_bytes_reflect_retained_objects(self):
        _, transient = measure_construction_memory(lambda: sum(len(bytes(1024)) for _ in range(100)))
        assert transient.current_bytes <= transient.peak_bytes
