"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bitarray import BitArray
from repro.core.bloom import BloomFilter
from repro.core.habf import HABF
from repro.core.hash_expressor import HashExpressor
from repro.core.params import HABFParams
from repro.baselines.xor_filter import XorFilter
from repro.errors import ConfigurationError
from repro.hashing.base import normalize_key
from repro.hashing.registry import GLOBAL_HASH_FAMILY
from repro.service import codec
from repro.service.backends import available_backends, get_backend
from repro.service.shards import ShardedFilterStore
from repro.workloads.zipf import zipf_weights

# Text keys without surrogates so UTF-8 encoding always succeeds.
key_strategy = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=40
)
key_sets = st.lists(key_strategy, min_size=1, max_size=60, unique=True)

relaxed = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestBitArrayProperties:
    @given(
        num_bits=st.integers(min_value=1, max_value=4096),
        indices=st.lists(st.integers(min_value=0, max_value=4095), max_size=100),
    )
    @relaxed
    def test_set_then_test(self, num_bits, indices):
        bits = BitArray(num_bits)
        valid = [index % num_bits for index in indices]
        bits.set_all(valid)
        assert all(bits.test(index) for index in valid)
        assert bits.count() == len(set(valid))

    @given(
        num_bits=st.integers(min_value=1, max_value=2048),
        indices=st.lists(st.integers(min_value=0, max_value=2047), max_size=60),
    )
    @relaxed
    def test_serialization_round_trip(self, num_bits, indices):
        bits = BitArray.from_indices(num_bits, [index % num_bits for index in indices])
        assert BitArray.from_bytes(num_bits, bits.to_bytes()) == bits

    @given(
        num_bits=st.integers(min_value=1, max_value=1024),
        indices=st.lists(st.integers(min_value=0, max_value=1023), max_size=40),
    )
    @relaxed
    def test_iter_set_bits_matches_count(self, num_bits, indices):
        bits = BitArray.from_indices(num_bits, [index % num_bits for index in indices])
        listed = list(bits.iter_set_bits())
        assert len(listed) == bits.count()
        assert listed == sorted(set(listed))


class TestKeyNormalizationProperties:
    @given(key_strategy)
    @relaxed
    def test_string_normalization_is_deterministic(self, key):
        assert normalize_key(key) == normalize_key(key)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @relaxed
    def test_u64_keys_have_fixed_width(self, value):
        assert len(normalize_key(value)) == 8

    @given(st.lists(st.integers(min_value=-(10 ** 30), max_value=10 ** 30), unique=True, min_size=2, max_size=30))
    @relaxed
    def test_distinct_ints_stay_distinct(self, values):
        encoded = {normalize_key(value) for value in values}
        assert len(encoded) == len(values)


class TestBloomFilterProperties:
    @given(keys=key_sets, num_bits=st.integers(min_value=64, max_value=4096), k=st.integers(min_value=1, max_value=6))
    @relaxed
    def test_no_false_negatives(self, keys, num_bits, k):
        bloom = BloomFilter(num_bits=num_bits, num_hashes=k)
        bloom.add_all(keys)
        assert all(key in bloom for key in keys)

    @given(keys=key_sets)
    @relaxed
    def test_positions_are_in_range(self, keys):
        bloom = BloomFilter(num_bits=509, num_hashes=3)
        for key in keys:
            assert all(0 <= p < 509 for p in bloom.bit_positions(key))


class TestHashExpressorProperties:
    @given(
        selections=st.lists(
            st.lists(st.integers(min_value=0, max_value=14), min_size=3, max_size=3, unique=True),
            min_size=1,
            max_size=20,
        )
    )
    @relaxed
    def test_inserted_selections_are_always_retrievable(self, selections):
        """Zero FNR of the HashExpressor: anything inserted is recovered exactly."""
        expressor = HashExpressor(num_cells=512, cell_hash_bits=4, family=GLOBAL_HASH_FAMILY)
        stored = {}
        for i, selection in enumerate(selections):
            key = f"key-{i}"
            if expressor.try_insert(key, selection):
                stored[key] = selection
        for key, selection in stored.items():
            retrieved = expressor.query(key, k=3)
            assert retrieved is not None
            assert sorted(retrieved) == sorted(selection)


class TestHABFProperties:
    @given(
        num_positive=st.integers(min_value=5, max_value=120),
        num_negative=st.integers(min_value=0, max_value=120),
        bits_per_key=st.sampled_from([6.0, 8.0, 12.0]),
    )
    @relaxed
    def test_zero_false_negatives(self, num_positive, num_negative, bits_per_key):
        positives = [f"pos#{i}" for i in range(num_positive)]
        negatives = [f"neg#{i}" for i in range(num_negative)]
        params = HABFParams.from_bits_per_key(bits_per_key, num_positive)
        habf = HABF.build(positives, negatives, params=params)
        assert all(key in habf for key in positives)

    @given(
        num_positive=st.integers(min_value=10, max_value=100),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @relaxed
    def test_size_never_exceeds_budget(self, num_positive, seed):
        positives = [f"p{i}" for i in range(num_positive)]
        negatives = [f"n{i}" for i in range(num_positive)]
        params = HABFParams.from_bits_per_key(10.0, num_positive, seed=seed)
        habf = HABF.build(positives, negatives, params=params)
        assert habf.size_in_bits() <= params.total_bits


class TestXorFilterProperties:
    @given(keys=key_sets, fingerprint_bits=st.integers(min_value=4, max_value=16))
    @relaxed
    def test_no_false_negatives(self, keys, fingerprint_bits):
        xor = XorFilter(keys, fingerprint_bits=fingerprint_bits)
        assert all(key in xor for key in keys)


class TestZipfProperties:
    @given(count=st.integers(min_value=1, max_value=500), skew=st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    @relaxed
    def test_weights_are_positive_with_unit_mean(self, count, skew):
        weights = zipf_weights(count, skew)
        assert len(weights) == count
        assert all(weight > 0 for weight in weights)
        assert sum(weights) / count == __import__("pytest").approx(1.0)

    @given(count=st.integers(min_value=2, max_value=300), skew=st.floats(min_value=0.01, max_value=3.0, allow_nan=False))
    @relaxed
    def test_weights_are_non_increasing(self, count, skew):
        weights = zipf_weights(count, skew)
        assert all(a >= b for a, b in zip(weights, weights[1:]))


# Every example builds (and for the learned backends, trains) real filters,
# so the codec fuzz runs fewer examples than the cheap structural properties.
codec_settings = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestCodecFrameProperties:
    """Codec frames are a fixed point of decode→re-encode for every backend.

    The example-based suite (``tests/service/test_codec_backends.py``) checks
    the same contract on curated URL-shaped datasets; here hypothesis feeds
    arbitrary unicode key material, because byte-identity is exactly the kind
    of invariant that breaks on the inputs nobody curated — empty strings,
    astral-plane characters, keys that normalise to each other's prefixes.
    Mixed-backend frames matter since adaptive migrations made them a normal
    serving state rather than a test-only curiosity.
    """

    @staticmethod
    def _filter_for(name, keys, negatives):
        negatives = [key for key in negatives if key not in set(keys)]
        if not negatives and "codec-fuzz-negative" not in keys:
            negatives = ["codec-fuzz-negative"]  # learned backends train on both classes
        costs = {key: 2.0 + index for index, key in enumerate(negatives[:5])}
        policy = get_backend(name)
        try:
            return policy.create_filter(keys, negatives=negatives, costs=costs)
        except ConfigurationError as exc:
            if "numpy" in str(exc):
                pytest.skip(f"backend {name!r} needs numpy to build")
            raise

    @pytest.mark.parametrize("name", available_backends())
    @given(
        keys=key_sets,
        negatives=st.lists(key_strategy, max_size=30, unique=True),
    )
    @codec_settings
    def test_every_backend_frame_survives_decode_reencode(
        self, name, keys, negatives
    ):
        filt = self._filter_for(name, keys, negatives)
        frame = codec.dumps(filt)
        revived = codec.loads(frame)
        assert type(revived) is type(filt)
        assert codec.dumps(revived) == frame, (
            f"{name}: decode→re-encode changed the frame bytes"
        )
        assert all(revived.contains(key) for key in keys)
        probe = keys + negatives
        assert [revived.contains(key) for key in probe] == [
            filt.contains(key) for key in probe
        ]

    @given(
        keys=st.lists(key_strategy, min_size=4, max_size=60, unique=True),
        xor_shard=st.integers(min_value=0, max_value=2),
        habf_shard=st.integers(min_value=0, max_value=2),
    )
    @codec_settings
    def test_mixed_backend_store_frame_survives_decode_reencode(
        self, keys, xor_shard, habf_shard
    ):
        store = ShardedFilterStore.build(
            keys,
            num_shards=3,
            backend="bloom",
            bits_per_key=9.0,
            shard_backends={
                xor_shard: ("xor", {"bits_per_key": 10.0}),
                habf_shard: ("habf", {"bits_per_key": 10.0}),
            },
        )
        frame = codec.dumps(store)
        revived = codec.loads(frame)
        assert codec.dumps(revived) == frame
        assert revived.shard_backend_names == store.shard_backend_names
        assert revived.backend_name == store.backend_name
        assert revived.query_many(keys) == [True] * len(keys)
