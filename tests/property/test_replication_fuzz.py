"""Corruption fuzz for replication frames: flipped bytes never lie.

Hypothesis drives random byte flips into encoded replication frames — both
kinds, the O(dirty) delta and the full-snapshot fallback — and the property
is the wire-safety contract in one sentence: decoding and applying a
damaged frame either raises a typed :class:`CodecError`/:class:`ServiceError`
or produces a store answering *exactly* like the true successor.

There is no third outcome.  The frame CRC covers everything after the
magic, each dirty shard's nested codec frame carries its own checksum, and
the per-shard records are validated against the follower's base before any
patch is trusted — so a flip either surfaces as a typed refusal (the wire
layer NACKs it and the publisher re-ships) or lands on a byte the decode
never trusts (or is a no-op), in which case verdicts must be bit-identical
with zero false negatives.  A follower silently serving wrong members
fails the property.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis", reason="corruption fuzz needs hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, ServiceError
from repro.service.replication import (
    apply_delta,
    decode_delta,
    encode_delta,
    full_snapshot,
    make_delta,
)
from repro.service.server import Snapshot
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

fuzz_settings = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def pristine():
    """Base snapshot, true successor, and both pristine encoded frames."""
    data = generate_shalla_like(num_positives=250, num_negatives=200, seed=59)
    base_store = ShardedFilterStore.build(
        data.positives, negatives=data.negatives, num_shards=3, backend="bloom-dh"
    )
    base = Snapshot(generation=1, store=base_store, num_keys=len(data.positives))
    new_keys = data.positives + [f"repl-added-{i}" for i in range(10)]
    successor, rebuilt, _ = ShardedFilterStore.rebuild_from(
        base_store, new_keys, negatives=data.negatives, backend="bloom-dh"
    )
    assert rebuilt, "the fuzz corpus needs at least one dirty shard"
    frames = {
        "delta": encode_delta(make_delta(base, successor)),
        "full": encode_delta(full_snapshot(successor, 2)),
    }
    probe = new_keys + data.negatives + [f"fuzz-{i}" for i in range(150)]
    baseline = successor.query_many(probe)
    return base, frames, probe, baseline, new_keys


def _flip(frame: bytes, flips) -> bytes:
    blob = bytearray(frame)
    for position, value in flips:
        blob[position % len(blob)] = value
    return bytes(blob)


@given(
    kind=st.sampled_from(["delta", "full"]),
    flips=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1 << 24),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1,
        max_size=8,
    ),
)
@fuzz_settings
def test_flipped_frames_fail_typed_or_apply_identically(pristine, kind, flips):
    base, frames, probe, baseline, new_keys = pristine
    damaged = _flip(frames[kind], flips)
    try:
        applied = apply_delta(base, decode_delta(damaged))
        verdicts = applied.query_many(probe)
    except (CodecError, ServiceError):
        return  # typed refusal is a correct outcome (the wire layer NACKs)
    # the frame applied: it must have produced the true successor — a
    # damaged frame may be refused, it may survive (no-op flips), but the
    # follower may never serve different verdicts from it
    assert verdicts == baseline, (
        f"corrupted {kind} frame applied with different verdicts (flips={flips})"
    )
    positive_verdicts = verdicts[: len(new_keys)]
    assert all(positive_verdicts), "corruption introduced a false negative"


def test_pristine_round_trip_sanity(pristine):
    """The fuzz harness itself: zero-effect flips reproduce the baseline."""
    base, frames, probe, baseline, _ = pristine
    for kind, frame in frames.items():
        same = _flip(frame, [(0, frame[0])])
        assert same == frame
        applied = apply_delta(base, decode_delta(same))
        assert applied.query_many(probe) == baseline, kind
