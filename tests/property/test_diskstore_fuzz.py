"""Corruption fuzz for the disk store: flipped bytes never lie, never hang.

Hypothesis drives random byte flips into both persisted artifacts — the
DIRECTORY record and the page file — and the property is the whole safety
contract in one sentence: opening and querying a damaged store either
raises a typed :class:`CodecError`/:class:`ServiceError` or answers
*exactly* like the pristine store.

There is no third outcome.  A flip in CRC-covered bytes (the directory
payload, any frame) must surface as a typed error before a verdict is
produced from garbage; a flip in dead bytes (page padding, the unused tail
the directory does not reference) must change nothing at all.  Silently
different verdicts — in particular a false negative on a positive key —
fail the property, and because every parse is length-checked before it is
trusted, the check terminates on every input (Hypothesis' deadline would
flag a hang as a failing example).
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis", reason="corruption fuzz needs hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, ServiceError
from repro.obs import Registry
from repro.service.diskstore import DIRECTORY_NAME, DiskShardStore
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

PAGE = 256

fuzz_settings = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A committed store plus its baseline verdicts and raw file bytes."""
    data = generate_shalla_like(num_positives=250, num_negatives=200, seed=53)
    store = ShardedFilterStore.build(
        data.positives, negatives=data.negatives, num_shards=3, backend="bloom-dh"
    )
    path = tmp_path_factory.mktemp("fuzz") / "store"
    probe = data.positives + data.negatives + [f"fuzz-{i}" for i in range(150)]
    with DiskShardStore.create(
        path, store, page_size=PAGE, registry=Registry()
    ) as disk:
        baseline = disk.serving_store().query_many(probe)
    files = {
        DIRECTORY_NAME: (path / DIRECTORY_NAME).read_bytes(),
        "pages": next(path.glob("frames-*.pages")).read_bytes(),
    }
    return path, files, probe, baseline, data.positives


def _corrupt(path, files, target, flips):
    """Restore both pristine files, then apply ``flips`` to ``target``."""
    pages_name = next(
        name for name in (p.name for p in path.glob("frames-*.pages"))
    )
    (path / DIRECTORY_NAME).write_bytes(files[DIRECTORY_NAME])
    (path / pages_name).write_bytes(files["pages"])
    victim = path / (DIRECTORY_NAME if target == "directory" else pages_name)
    blob = bytearray(files[DIRECTORY_NAME] if target == "directory" else files["pages"])
    changed = False
    for position, value in flips:
        index = position % len(blob)
        if blob[index] != value:
            blob[index] = value
            changed = True
    victim.write_bytes(bytes(blob))
    return changed


@given(
    target=st.sampled_from(["directory", "pages"]),
    flips=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1 << 24),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1,
        max_size=8,
    ),
)
@fuzz_settings
def test_flipped_bytes_fail_typed_or_change_nothing(pristine, target, flips):
    path, files, probe, baseline, positives = pristine
    changed = _corrupt(path, files, target, flips)
    try:
        with DiskShardStore.open(
            path, registry=Registry(), cleanup=False
        ) as disk:
            verdicts = disk.serving_store().query_many(probe)
            disk.verify()
    except (CodecError, ServiceError):
        return  # typed refusal is a correct outcome
    # the store answered: it must have answered exactly like the pristine
    # one — a corrupted store may refuse, it may survive (flip landed in
    # padding / dead bytes / was a no-op), but it may never lie
    assert verdicts == baseline, (
        f"corruption in {target} changed verdicts without raising "
        f"(flips={flips}, changed={changed})"
    )
    positive_verdicts = verdicts[: len(positives)]
    assert all(positive_verdicts), "corruption introduced a false negative"


def test_pristine_round_trip_sanity(pristine):
    """The fuzz harness itself: restoring with zero flips reproduces baseline."""
    path, files, probe, baseline, _ = pristine
    assert _corrupt(path, files, "pages", [(0, files["pages"][0])]) is False
    with DiskShardStore.open(path, registry=Registry(), cleanup=False) as disk:
        assert disk.serving_store().query_many(probe) == baseline
        assert disk.verify() == 3
