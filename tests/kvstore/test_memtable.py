"""Unit tests for the MemTable."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.memtable import TOMBSTONE, MemTable


class TestMemTable:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            MemTable(capacity=0)

    def test_put_and_get(self):
        table = MemTable()
        table.put("a", 1)
        assert table.get("a") == (True, 1)
        assert table.get("missing") == (False, None)

    def test_overwrite(self):
        table = MemTable()
        table.put("a", 1)
        table.put("a", 2)
        assert table.get("a") == (True, 2)
        assert len(table) == 1

    def test_delete_leaves_tombstone(self):
        table = MemTable()
        table.put("a", 1)
        table.delete("a")
        found, value = table.get("a")
        assert found and value is None
        assert ("a", TOMBSTONE) in table.sorted_items()

    def test_is_full(self):
        table = MemTable(capacity=2)
        table.put("a", 1)
        assert not table.is_full()
        table.put("b", 2)
        assert table.is_full()

    def test_sorted_items_and_iteration(self):
        table = MemTable()
        for key in ["c", "a", "b"]:
            table.put(key, key.upper())
        assert [key for key, _ in table.sorted_items()] == ["a", "b", "c"]
        assert list(table) == ["a", "b", "c"]

    def test_clear(self):
        table = MemTable()
        table.put("a", 1)
        table.clear()
        assert len(table) == 0
        assert "a" not in table

    def test_contains(self):
        table = MemTable()
        table.put("a", 1)
        assert "a" in table
        assert "b" not in table
