"""Unit tests for the LSM tree."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.filter_policy import BloomFilterPolicy, HABFFilterPolicy, NoFilterPolicy
from repro.kvstore.lsm import LSMTree


class TestValidation:
    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            LSMTree(max_levels=0)
        with pytest.raises(ConfigurationError):
            LSMTree(level_fanout=0)
        with pytest.raises(ConfigurationError):
            LSMTree(level_cost_factor=0)


class TestReadYourWrites:
    def test_memtable_reads(self):
        tree = LSMTree(memtable_capacity=100)
        tree.put("a", 1)
        assert tree.get("a") == 1
        assert tree.get("b") is None

    def test_reads_after_flush(self):
        tree = LSMTree(memtable_capacity=10)
        for i in range(35):
            tree.put(f"k{i:03d}", i)
        tree.flush()
        for i in range(35):
            assert tree.get(f"k{i:03d}") == i

    def test_overwrite_across_flushes(self):
        tree = LSMTree(memtable_capacity=4)
        tree.put("key", "old")
        tree.flush()
        tree.put("key", "new")
        tree.flush()
        assert tree.get("key") == "new"

    def test_delete_shadows_older_versions(self):
        tree = LSMTree(memtable_capacity=4)
        tree.put("key", "value")
        tree.flush()
        tree.delete("key")
        tree.flush()
        assert tree.get("key") is None
        assert "key" not in tree

    def test_contains(self):
        tree = LSMTree()
        tree.put("present", 1)
        assert "present" in tree
        assert "absent" not in tree


class TestCompaction:
    def test_compaction_bounds_table_count(self):
        tree = LSMTree(memtable_capacity=16, max_levels=3, level_fanout=2)
        for i in range(400):
            tree.put(f"k{i:05d}", i)
        tree.flush()
        assert tree.num_tables() <= 2 * 3 + 1
        # All data still readable after compactions.
        for i in range(0, 400, 17):
            assert tree.get(f"k{i:05d}") == i

    def test_tombstones_dropped_at_bottom_level(self):
        tree = LSMTree(memtable_capacity=8, max_levels=2, level_fanout=1)
        for i in range(64):
            tree.put(f"k{i:04d}", i)
        for i in range(64):
            tree.delete(f"k{i:04d}")
        tree.flush()
        for i in range(0, 64, 7):
            assert tree.get(f"k{i:04d}") is None

    def test_level_sizes_reported(self):
        tree = LSMTree(memtable_capacity=8, max_levels=3)
        for i in range(50):
            tree.put(f"k{i:04d}", i)
        tree.flush()
        sizes = tree.level_sizes()
        assert len(sizes) == 3
        assert sum(sizes) == tree.num_tables()


class TestFilterEffect:
    def _populate_and_query(self, policy, negative_hints, costs):
        tree = LSMTree(
            memtable_capacity=64,
            filter_policy=policy,
            negative_hints=negative_hints,
            negative_costs=costs,
        )
        for i in range(0, 2000, 2):
            tree.put(f"row{i:05d}", i)
        tree.flush()
        for i in range(1, 2000, 2):
            assert tree.get(f"row{i:05d}") is None
        return tree.stats

    def test_filters_cut_wasted_io(self):
        missing = [f"row{i:05d}" for i in range(1, 2000, 2)]
        costs = {key: 1.0 for key in missing}
        none_stats = self._populate_and_query(NoFilterPolicy(), missing, costs)
        bloom_stats = self._populate_and_query(BloomFilterPolicy(10), missing, costs)
        habf_stats = self._populate_and_query(HABFFilterPolicy(10), missing, costs)
        assert bloom_stats.wasted_io_cost < none_stats.wasted_io_cost
        assert habf_stats.wasted_io_cost <= bloom_stats.wasted_io_cost
        assert habf_stats.filter_rejections >= bloom_stats.filter_rejections

    def test_stats_counters_consistent(self):
        tree = LSMTree(memtable_capacity=32, filter_policy=BloomFilterPolicy(10))
        for i in range(100):
            tree.put(f"k{i:04d}", i)
        tree.flush()
        for i in range(100):
            tree.get(f"k{i:04d}")
        for i in range(100, 150):
            tree.get(f"k{i:04d}")
        stats = tree.stats
        assert stats.gets == 150
        assert stats.hits == 100
        assert stats.misses == 50
        assert stats.io_cost >= stats.wasted_io_cost


class TestBatchReads:
    def _tree(self):
        tree = LSMTree(memtable_capacity=16, filter_policy=BloomFilterPolicy(10))
        for i in range(120):
            tree.put(f"k{i:04d}", i)
        for i in range(0, 120, 10):
            tree.delete(f"k{i:04d}")
        return tree

    def test_get_many_matches_scalar_gets_and_stats(self):
        batch_tree, scalar_tree = self._tree(), self._tree()
        lookup = (
            [f"k{i:04d}" for i in range(0, 140, 3)]
            + [f"missing{i}" for i in range(20)]
            + ["k0005"]  # duplicate key in one batch
        )
        assert batch_tree.get_many(lookup) == [scalar_tree.get(key) for key in lookup]
        assert vars(batch_tree.stats) == vars(scalar_tree.stats)

    def test_get_many_reads_memtable_first(self):
        tree = LSMTree(memtable_capacity=1024, filter_policy=BloomFilterPolicy(10))
        tree.put("only-in-memtable", 42)
        assert tree.get_many(["only-in-memtable", "absent"]) == [42, None]
        assert tree.stats.table_lookups == 0
