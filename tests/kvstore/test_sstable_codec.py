"""SSTable filter dump/restore through the service codec."""

from __future__ import annotations

import pytest

from repro.errors import CodecError
from repro.kvstore.filter_policy import (
    BloomFilterPolicy,
    HABFFilterPolicy,
    NoFilterPolicy,
    XorFilterPolicy,
)
from repro.kvstore.sstable import SSTable


def _table(policy, count=300):
    entries = [(f"row:{i:05d}", i) for i in range(0, count * 2, 2)]
    negatives = [f"row:{i:05d}" for i in range(1, count, 2)]
    return SSTable(entries, filter_policy=policy, negatives=negatives)


@pytest.mark.parametrize(
    "policy", [BloomFilterPolicy(10.0), HABFFilterPolicy(10.0), XorFilterPolicy(10.0)]
)
def test_filter_round_trips_and_guards_identically(policy):
    table = _table(policy)
    frame = table.dump_filter()
    probe = [f"row:{i:05d}" for i in range(600)]
    before = [table.filter.contains(key) for key in probe]
    table.restore_filter(frame)
    assert [table.filter.contains(key) for key in probe] == before
    # The read path still works after the swap, with zero false negatives.
    found, value, _ = table.get("row:00004")
    assert found and value == 4


def test_restore_rejects_filter_from_another_table():
    table_a = _table(BloomFilterPolicy(10.0))
    table_b = SSTable(
        [(f"other:{i}", i) for i in range(200)], filter_policy=BloomFilterPolicy(10.0)
    )
    with pytest.raises(CodecError, match="misses"):
        table_a.restore_filter(table_b.dump_filter())


def test_restore_rejects_corrupt_frames():
    table = _table(BloomFilterPolicy(10.0))
    frame = bytearray(table.dump_filter())
    frame[len(frame) // 2] ^= 0xFF
    with pytest.raises(CodecError):
        table.restore_filter(bytes(frame))


def test_no_filter_policy_round_trips_as_always_contains():
    table = _table(NoFilterPolicy())
    table.restore_filter(table.dump_filter())
    # The degenerate filter still routes every lookup to the table.
    found, value, cost = table.get("row:00004")
    assert found and value == 4 and cost > 0
