"""Unit tests for the SSTable and its filter policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.filter_policy import (
    BloomFilterPolicy,
    HABFFilterPolicy,
    NoFilterPolicy,
)
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.sstable import SSTable


def make_entries(count, step=1):
    return [(f"key{i:05d}", f"value{i}") for i in range(0, count * step, step)]


class TestConstruction:
    def test_needs_entries(self):
        with pytest.raises(ConfigurationError):
            SSTable([])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            SSTable([("a", 1), ("a", 2)])

    def test_negative_read_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            SSTable([("a", 1)], read_cost=-1)

    def test_entries_are_sorted(self):
        table = SSTable([("b", 2), ("a", 1), ("c", 3)])
        assert [key for key, _ in table.items()] == ["a", "b", "c"]
        assert table.min_key == "a"
        assert table.max_key == "c"
        assert len(table) == 3


class TestReads:
    def test_hit_pays_read_cost(self):
        table = SSTable(make_entries(100), read_cost=2.5)
        found, value, cost = table.get("key00050")
        assert found and value == "value50"
        assert cost == 2.5
        assert table.stats.reads == 1

    def test_out_of_range_is_free(self):
        table = SSTable(make_entries(10))
        found, value, cost = table.get("zzz")
        assert not found and cost == 0.0
        assert table.stats.reads == 0

    def test_tombstone_is_found_but_empty(self):
        table = SSTable([("a", 1), ("b", TOMBSTONE)])
        found, value, cost = table.get("b")
        assert found and value is None and cost > 0.0

    def test_filter_rejects_absent_keys(self):
        entries = make_entries(200, step=2)  # even keys only
        missing = [f"key{i:05d}" for i in range(1, 399, 2)]
        table = SSTable(entries, filter_policy=BloomFilterPolicy(bits_per_key=12))
        for key in missing:
            table.get(key)
        assert table.stats.filter_rejections > len(missing) * 0.9
        assert table.stats.reads < len(missing) * 0.1

    def test_no_filter_always_reads(self):
        entries = make_entries(50, step=2)
        table = SSTable(entries, filter_policy=NoFilterPolicy())
        found, _, cost = table.get("key00001")  # inside range but absent
        assert not found and cost > 0.0
        assert table.stats.useless_reads == 1

    def test_habf_policy_uses_negative_hints(self):
        entries = make_entries(300, step=2)
        missing = [f"key{i:05d}" for i in range(1, 599, 2)]
        costs = {key: 2.0 for key in missing}
        table = SSTable(
            entries,
            filter_policy=HABFFilterPolicy(bits_per_key=10),
            negatives=missing,
            costs=costs,
        )
        useless = 0
        for key in missing:
            found, _, cost = table.get(key)
            if cost > 0.0:
                useless += 1
        # HABF knows these misses ahead of time, so almost all are rejected.
        assert useless <= 2

    def test_members_always_found_with_any_policy(self):
        entries = make_entries(150)
        for policy in (NoFilterPolicy(), BloomFilterPolicy(10), HABFFilterPolicy(10)):
            table = SSTable(entries, filter_policy=policy)
            for key, expected in entries[:30]:
                found, value, _ = table.get(key)
                assert found and value == expected


class TestBatchReads:
    def test_get_many_matches_scalar_gets_and_stats(self):
        entries = make_entries(200, step=2)
        missing = [f"key{i:05d}" for i in range(1, 399, 2)]
        lookup = [key for key, _ in entries[:60]] + missing[:60] + ["zzz-out-of-range"]
        batch_table = SSTable(entries, filter_policy=BloomFilterPolicy(10))
        scalar_table = SSTable(entries, filter_policy=BloomFilterPolicy(10))
        assert batch_table.get_many(lookup) == [scalar_table.get(key) for key in lookup]
        assert vars(batch_table.stats) == vars(scalar_table.stats)

    def test_get_many_sees_tombstones(self):
        entries = [("a", 1), ("b", TOMBSTONE), ("c", 3)]
        table = SSTable(entries, filter_policy=BloomFilterPolicy(10))
        results = table.get_many(["a", "b", "c", "d"])
        assert results[0][:2] == (True, 1)
        assert results[1][:2] == (True, None)  # tombstone: found, no value
        assert results[2][:2] == (True, 3)
        assert results[3][0] is False

    def test_get_many_empty_batch(self):
        table = SSTable(make_entries(10))
        assert table.get_many([]) == []
        assert table.stats.lookups == 0
