"""Exposition-format tests: TYPE headers, escaping, monotone counters.

This is the /metrics contract suite: every family carries its ``# TYPE``
line, label values escape correctly, histogram series decompose into
``_bucket``/``_sum``/``_count``, and counters only ever grow between two
scrapes of the same registry.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import CONTENT_TYPE, Registry, parse_families, render_text


@pytest.fixture()
def registry():
    return Registry()


def test_content_type_pins_the_exposition_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_every_family_has_help_and_type_headers(registry):
    registry.counter("a_total", "counts a").inc()
    registry.gauge("b", "measures b").set(2)
    registry.histogram("c_seconds", "times c").observe(0.01)
    text = render_text(registry)
    for name, kind in (("a_total", "counter"), ("b", "gauge"), ("c_seconds", "histogram")):
        assert f"# HELP {name} " in text
        assert f"# TYPE {name} {kind}" in text
    families = parse_families(text)
    assert families["a_total"][0] == "counter"
    assert families["b"][0] == "gauge"
    assert families["c_seconds"][0] == "histogram"


def test_render_ends_with_newline(registry):
    registry.counter("a_total", "help").inc()
    assert render_text(registry).endswith("\n")


def test_histogram_series_decompose(registry):
    histogram = registry.histogram("h", "help", buckets=(1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(1.5)
    histogram.observe(9.0)
    text = render_text(registry)
    samples = parse_families(text)["h"][1]
    assert samples['h_bucket{le="1"}'] == 1.0
    assert samples['h_bucket{le="2"}'] == 2.0
    assert samples['h_bucket{le="+Inf"}'] == 3.0  # cumulative
    assert samples["h_count"] == 3.0
    assert samples["h_sum"] == pytest.approx(11.0)


def test_label_values_are_escaped(registry):
    counter = registry.counter("e_total", "help", ("path",))
    counter.labels('with"quote\\and\nnewline').inc()
    text = render_text(registry)
    assert r'path="with\"quote\\and\nnewline"' in text
    # The escaped line still parses back to the one sample.
    samples = parse_families(text)["e_total"][1]
    assert len(samples) == 1
    assert next(iter(samples.values())) == 1.0


def test_help_text_escapes_newlines(registry):
    registry.counter("n_total", "line one\nline two").inc()
    text = render_text(registry)
    assert "# HELP n_total line one\\nline two" in text


def test_special_float_values_render(registry):
    gauge = registry.gauge("g", "help", ("kind",))
    gauge.labels("inf").set(math.inf)
    gauge.labels("ninf").set(-math.inf)
    gauge.labels("int").set(3.0)
    gauge.labels("frac").set(0.25)
    text = render_text(registry)
    assert 'g{kind="inf"} +Inf' in text
    assert 'g{kind="ninf"} -Inf' in text
    assert 'g{kind="int"} 3' in text  # integral values drop the decimal
    assert 'g{kind="frac"} 0.25' in text


def test_counters_are_monotone_across_scrapes(registry):
    counter = registry.counter("m_total", "help", ("shard",))
    histogram = registry.histogram("m_seconds", "help")
    for shard in ("0", "1"):
        counter.labels(shard).inc(3)
    histogram.observe(0.5)
    first = parse_families(render_text(registry))
    counter.labels("0").inc(2)
    histogram.observe(1.5)
    second = parse_families(render_text(registry))
    for name, (kind, samples) in first.items():
        if kind != "counter" and not name.endswith("_seconds"):
            continue
        for series, value in samples.items():
            if name == "m_seconds" and not (
                "_bucket" in series or "_count" in series
            ):
                continue  # _sum can move by any amount; buckets/counts are monotone
            assert second[name][1][series] >= value, series


def test_parser_rejects_samples_outside_their_block():
    with pytest.raises(ValueError):
        parse_families("# TYPE a counter\nb 1\n")


def test_empty_registry_renders_blank_exposition():
    assert render_text(Registry()) == "\n"
    assert parse_families(render_text(Registry())) == {}
