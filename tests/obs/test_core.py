"""Unit tests for the metrics core: instruments, registries, null registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    NullRegistry,
    Registry,
    null_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Registry().counter("t_total", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative_increments(self):
        counter = Registry().counter("t_total", "help")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Registry().counter("t_total", "help", ("shard",))
        counter.labels("0").inc(2)
        counter.labels("1").inc(5)
        assert counter.labels("0").value == 2.0
        assert counter.labels("1").value == 5.0
        assert counter.labels(shard="0") is counter.labels("0")

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Registry().counter("t_total", "help")

        def worker():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000.0

    def test_label_arity_is_checked(self):
        counter = Registry().counter("t_total", "help", ("a", "b"))
        with pytest.raises(ConfigurationError):
            counter.labels("only-one")
        with pytest.raises(ConfigurationError):
            counter.labels("x", "y", "z")
        with pytest.raises(ConfigurationError):
            counter.labels("x", b="y")  # mixing positional and keyword
        with pytest.raises(ConfigurationError):
            counter.labels(a="x", wrong="y")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Registry().gauge("t", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_function_backed_value_is_read_at_access(self):
        gauge = Registry().gauge("t", "help")
        box = {"v": 1.0}
        gauge.set_function(lambda: box["v"])
        assert gauge.value == 1.0
        box["v"] = 7.5
        assert gauge.value == 7.5

    def test_broken_callback_reads_zero_instead_of_raising(self):
        gauge = Registry().gauge("t", "help")
        gauge.set_function(lambda: 1 / 0)
        assert gauge.value == 0.0


class TestHistogram:
    def test_observe_updates_sum_count_and_buckets(self):
        histogram = Registry().histogram(
            "t_seconds", "help", buckets=(1.0, 10.0, 100.0)
        )
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)
        bounds, counts, total, count = histogram.labels().snapshot()
        assert bounds == (1.0, 10.0, 100.0)
        assert counts == [1, 1, 1, 1]  # one per bucket including +Inf

    def test_approx_quantile_tracks_the_distribution(self):
        histogram = Registry().histogram("t", "help", buckets=DEFAULT_SIZE_BUCKETS)
        for _ in range(99):
            histogram.observe(3.0)
        histogram.observe(900.0)
        p50 = histogram.approx_quantile(0.5)
        assert 2.0 <= p50 <= 4.0
        assert histogram.approx_quantile(0.995) > 500.0

    def test_buckets_must_increase(self):
        registry = Registry()
        with pytest.raises(ConfigurationError):
            registry.histogram("t", "help", buckets=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("t2", "help", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = Registry()
        first = registry.counter("x_total", "help", ("service",))
        second = registry.counter("x_total", "other help", ("service",))
        assert first is second

    def test_kind_conflict_is_rejected(self):
        registry = Registry()
        registry.counter("x_total", "help")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total", "help")

    def test_labelname_conflict_is_rejected(self):
        registry = Registry()
        registry.counter("x_total", "help", ("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("x_total", "help", ("b",))

    def test_invalid_names_are_rejected(self):
        registry = Registry()
        with pytest.raises(ConfigurationError):
            registry.counter("0bad", "help")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", "help", ("bad-label",))
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", "help", ("dup", "dup"))

    def test_collect_lists_every_family(self):
        registry = Registry()
        registry.counter("a_total", "help").inc()
        registry.gauge("b", "help").set(2)
        names = {family.name for family in registry.collect()}
        assert names == {"a_total", "b"}

    def test_weak_collector_drops_with_its_owner(self):
        registry = Registry()

        class Owner:
            def families(self):
                return []

        owner = Owner()
        registry.add_collector(owner.families)
        assert registry.collect() == []  # resolves while alive
        del owner
        import gc

        gc.collect()
        assert registry.collect() == []  # dead ref pruned, no crash


class TestNullRegistry:
    def test_everything_is_a_cheap_noop(self):
        registry = NullRegistry()
        counter = registry.counter("a_total", "help", ("x",))
        counter.labels("v").inc(5)
        assert counter.value == 0.0
        gauge = registry.gauge("b", "help")
        gauge.set(3)
        gauge.set_function(lambda: 9)
        assert gauge.value == 0.0
        histogram = registry.histogram("c", "help")
        histogram.observe(1.0)
        assert histogram.count == 0
        assert registry.collect() == []

    def test_shared_instance(self):
        assert null_registry() is null_registry()
