"""Tracing tests: no-op cost path, stage histograms, sampled span logs."""

from __future__ import annotations

import random
import threading

import pytest

from repro.obs import Registry, Tracer, current_trace, span_log_to_jsonl, stage
from repro.obs.trace import _NOOP


class TestStageWithoutTrace:
    def test_stage_is_the_shared_noop(self):
        assert current_trace() is None
        assert stage("anything", shard=1) is _NOOP

    def test_noop_stage_is_a_context_manager(self):
        with stage("anything"):
            pass


class TestTracer:
    def test_stages_land_in_the_stage_histogram(self):
        registry = Registry()
        tracer = Tracer(registry=registry)
        trace = tracer.begin()
        with tracer.activate(trace):
            with stage("engine_dispatch"):
                pass
            with stage("shard_probe", shard=0):
                pass
            with stage("shard_probe", shard=1):
                pass
        histogram = registry.get("repro_stage_seconds")
        assert histogram.labels("engine_dispatch").count == 1
        assert histogram.labels("shard_probe").count == 2

    def test_activate_restores_previous_context(self):
        tracer = Tracer(registry=Registry())
        trace = tracer.begin()
        assert current_trace() is None
        with tracer.activate(trace):
            assert current_trace() is trace
        assert current_trace() is None

    def test_trace_ids_are_unique(self):
        tracer = Tracer(registry=Registry())
        ids = {tracer.begin().trace_id for _ in range(100)}
        assert len(ids) == 100

    def test_traces_total_counts_sampling_decisions(self):
        registry = Registry()
        spans = []
        tracer = Tracer(
            registry=registry,
            sample_rate=1.0,
            span_log=spans.append,
            rng=random.Random(1),
        )
        for _ in range(3):
            tracer.begin()
        counter = registry.get("repro_traces_total")
        assert counter.labels("true").value == 3.0

    def test_unsampled_without_span_log(self):
        # sample_rate=1.0 but no sink: nothing can receive spans, so traces
        # are minted unsampled and only the histograms record.
        tracer = Tracer(registry=Registry(), sample_rate=1.0)
        assert tracer.begin().sampled is False


class TestSpanLog:
    def _traced_stages(self, sample_rate, seed=7):
        spans = []
        tracer = Tracer(
            registry=Registry(),
            sample_rate=sample_rate,
            span_log=spans.append,
            rng=random.Random(seed),
        )
        for _ in range(50):
            trace = tracer.begin()
            with tracer.activate(trace):
                with stage("engine_dispatch", keys=4):
                    pass
        return spans

    def test_rate_one_logs_every_trace(self):
        spans = self._traced_stages(1.0)
        assert len(spans) == 50
        span = spans[0]
        assert set(span) == {"trace_id", "span_id", "stage", "duration_seconds", "tags"}
        assert span["stage"] == "engine_dispatch"
        assert span["tags"] == {"keys": "4"}
        assert span["duration_seconds"] >= 0.0

    def test_rate_zero_logs_nothing(self):
        assert self._traced_stages(0.0) == []

    def test_fractional_rate_is_deterministic_with_seeded_rng(self):
        first = self._traced_stages(0.2, seed=11)
        second = self._traced_stages(0.2, seed=11)
        assert [s["stage"] for s in first] == [s["stage"] for s in second]
        assert 0 < len(first) < 50

    def test_span_ids_increase_within_a_trace(self):
        spans = []
        tracer = Tracer(
            registry=Registry(), sample_rate=1.0, span_log=spans.append,
            rng=random.Random(3),
        )
        trace = tracer.begin()
        with tracer.activate(trace):
            with stage("a"):
                pass
            with stage("b"):
                pass
        assert [span["span_id"] for span in spans] == [1, 2]
        assert len({span["trace_id"] for span in spans}) == 1

    def test_broken_sink_never_breaks_the_stage(self):
        def sink(span):
            raise RuntimeError("log backend down")

        tracer = Tracer(
            registry=Registry(), sample_rate=1.0, span_log=sink, rng=random.Random(5)
        )
        trace = tracer.begin()
        with tracer.activate(trace):
            with stage("a"):
                pass  # must not raise

    def test_jsonl_helper_writes_one_object_per_line(self):
        import io
        import json

        sink = io.StringIO()
        tracer = Tracer(
            registry=Registry(),
            sample_rate=1.0,
            span_log=span_log_to_jsonl(sink),
            rng=random.Random(9),
        )
        trace = tracer.begin()
        with tracer.activate(trace):
            with stage("a"):
                pass
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["stage"] == "a"


class TestCrossThreadPropagation:
    def test_copy_context_carries_the_trace_into_a_worker(self):
        import contextvars

        registry = Registry()
        tracer = Tracer(registry=registry)
        trace = tracer.begin()
        seen = []

        def worker():
            seen.append(current_trace())
            with stage("shard_probe", shard=0):
                pass

        with tracer.activate(trace):
            context = contextvars.copy_context()
            thread = threading.Thread(target=context.run, args=(worker,))
            thread.start()
            thread.join()
        assert seen == [trace]
        assert registry.get("repro_stage_seconds").labels("shard_probe").count == 1

    def test_plain_thread_sees_no_trace(self):
        tracer = Tracer(registry=Registry())
        trace = tracer.begin()
        seen = []
        with tracer.activate(trace):
            thread = threading.Thread(target=lambda: seen.append(current_trace()))
            thread.start()
            thread.join()
        assert seen == [None]


def test_invalid_sample_rate_rejected():
    with pytest.raises(ValueError):
        Tracer(registry=Registry(), sample_rate=1.5)
