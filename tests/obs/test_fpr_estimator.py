"""FprEstimator tests: extrapolation math, sampling, service integration.

The headline test is the acceptance criterion: fed a uniform-negative
workload through a real bloom-backed service, the live ``observed_fpr``
converges to within 2x of the filter's analytic false-positive rate.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.obs import FprEstimator
from repro.service.server import MembershipService


class TestExtrapolation:
    def test_inert_without_an_oracle(self):
        estimator = FprEstimator(sample_rate=1.0)
        assert estimator.active is False
        estimator.observe("k", True, shard=0)
        assert estimator.shard_estimate(0, queries=10, positives=1).sampled == 0

    def test_exact_when_every_positive_is_sampled(self):
        estimator = FprEstimator(sample_rate=1.0)
        estimator.set_key_oracle(["a", "b"])
        # 10 queries on shard 0: 2 true members, 1 false positive, 7 negatives.
        for key, verdict in [("a", True), ("b", True), ("x", True)] + [
            (f"n{i}", False) for i in range(7)
        ]:
            estimator.observe(key, verdict, shard=0)
        estimate = estimator.shard_estimate(0, queries=10, positives=3)
        assert estimate.sampled == 3
        assert estimate.false_positives == 1
        assert estimate.fp_fraction == pytest.approx(1 / 3)
        # est_fp = 3 * 1/3 = 1; est_negatives = 10 - 3 + 1 = 8.
        assert estimate.observed_fpr == pytest.approx(1 / 8)
        # Uniform costs: cost-weighted equals plain observed FPR.
        assert estimate.cost_weighted_fpr == pytest.approx(1 / 8)

    def test_no_signal_yields_none(self):
        estimator = FprEstimator(sample_rate=1.0)
        estimator.set_key_oracle(["a"])
        estimator.observe("a", True, shard=0)  # member, not a false positive
        estimate = estimator.shard_estimate(0, queries=1, positives=1)
        assert estimate.false_positives == 0
        assert estimate.observed_fpr == 0.0 or estimate.observed_fpr is None

    def test_cost_weighted_uses_per_key_costs(self):
        estimator = FprEstimator(sample_rate=1.0, costs={"cheap": 1.0, "dear": 3.0})
        estimator.set_key_oracle(["member"])
        estimator.observe("dear", True, shard=0)  # costly false positive
        estimator.observe("member", True, shard=0)
        estimate = estimator.shard_estimate(0, queries=4, positives=2)
        # est_fp = 2 * 1/2 = 1; est_negatives = 4 - 2 + 1 = 3.
        assert estimate.observed_fpr == pytest.approx(1 / 3)
        # fp cost 3.0 against a mean negative cost of 2.0 doubles the rate
        # relative to uniform: (2 * 3/2) / (3 * 2) = 0.5.
        assert estimate.cost_weighted_fpr == pytest.approx(0.5)

    def test_overall_aggregates_shards(self):
        estimator = FprEstimator(sample_rate=1.0)
        estimator.set_key_oracle(["a"])
        estimator.observe("x", True, shard=0)
        estimator.observe("a", True, shard=1)

        class Stats:
            def __init__(self, shard, queries, positives):
                self.shard, self.queries, self.positives = shard, queries, positives

        overall = estimator.overall([Stats(0, 10, 1), Stats(1, 10, 1)])
        assert overall.shard == -1
        assert overall.sampled == 2
        assert overall.false_positives == 1

    def test_reset_clears_tallies(self):
        estimator = FprEstimator(sample_rate=1.0)
        estimator.set_key_oracle(["a"])
        estimator.observe("x", True, shard=0)
        estimator.reset()
        assert estimator.shard_estimate(0, queries=1, positives=1).sampled == 0

    def test_sample_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FprEstimator(sample_rate=1.2)


class TestSampling:
    def test_fractional_sampling_sees_a_fraction(self):
        estimator = FprEstimator(sample_rate=0.25, rng=random.Random(42))
        estimator.set_key_oracle([])
        for i in range(4000):
            estimator.observe(f"k{i}", True, shard=0)
        sampled = estimator.shard_estimate(0, queries=4000, positives=4000).sampled
        assert 800 <= sampled <= 1200  # ~1000 expected

    def test_negative_verdicts_are_never_sampled(self):
        estimator = FprEstimator(sample_rate=1.0)
        estimator.set_key_oracle(["a"])
        estimator.observe_batch(["x", "y"], [False, False], lambda key: 0)
        assert estimator.shard_estimate(0, queries=2, positives=0).sampled == 0

    def test_custom_oracle_disables_auto_refresh(self):
        estimator = FprEstimator(sample_rate=1.0)
        assert estimator.auto_oracle is True
        estimator.set_oracle(lambda key: key.startswith("member"))
        assert estimator.auto_oracle is False
        estimator.set_key_oracle(["a"])  # key oracle keeps the flag as-is
        assert estimator.auto_oracle is False


class TestServiceConvergence:
    """Acceptance: live observed FPR within 2x of analytic on uniform negatives."""

    BITS_PER_KEY = 10.0
    NUM_KEYS = 4000
    NUM_NEGATIVES = 60_000

    def _analytic_bloom_fpr(self):
        from repro.core.bloom import optimal_num_hashes

        k = optimal_num_hashes(self.BITS_PER_KEY)
        return (1.0 - math.exp(-k / self.BITS_PER_KEY)) ** k

    def test_observed_fpr_converges_to_analytic(self):
        estimator = FprEstimator(sample_rate=1.0, rng=random.Random(123))
        service = MembershipService(
            backend="bloom",
            num_shards=4,
            bits_per_key=self.BITS_PER_KEY,
            fpr_estimator=estimator,
        )
        rng = random.Random(99)
        keys = [f"member-{rng.getrandbits(64):016x}" for _ in range(self.NUM_KEYS)]
        service.load(keys)
        assert estimator.active, "rebuild must auto-register the key oracle"
        negatives = [
            f"negative-{rng.getrandbits(64):016x}" for _ in range(self.NUM_NEGATIVES)
        ]
        chunk = 5000
        for start in range(0, len(negatives), chunk):
            service.query_batch(negatives[start : start + chunk])
        stats = service.stats()
        overall = estimator.overall(stats.shards)
        analytic = self._analytic_bloom_fpr()
        assert overall is not None and overall.observed_fpr is not None
        assert analytic / 2 <= overall.observed_fpr <= analytic * 2, (
            f"observed {overall.observed_fpr:.5f} vs analytic {analytic:.5f}"
        )
        # All traffic was negative, so with rate 1.0 the extrapolation is
        # exact: estimated FP count equals the confirmed count.
        assert overall.false_positives == stats.positives
        # Per-shard estimates partition the aggregate.
        per_shard = service.fpr_estimates()
        assert sum(e.sampled for e in per_shard) == overall.sampled

    def test_mixed_traffic_extrapolates_true_members_out(self):
        estimator = FprEstimator(sample_rate=1.0, rng=random.Random(5))
        service = MembershipService(
            backend="bloom",
            num_shards=2,
            bits_per_key=self.BITS_PER_KEY,
            fpr_estimator=estimator,
        )
        rng = random.Random(17)
        keys = [f"member-{rng.getrandbits(64):016x}" for _ in range(2000)]
        service.load(keys)
        negatives = [f"negative-{rng.getrandbits(64):016x}" for _ in range(20_000)]
        service.query_batch(keys)  # all true positives
        for start in range(0, len(negatives), 5000):
            service.query_batch(negatives[start : start + 5000])
        overall = estimator.overall(service.stats().shards)
        analytic = self._analytic_bloom_fpr()
        assert analytic / 2 <= overall.observed_fpr <= analytic * 2
