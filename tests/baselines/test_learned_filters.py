"""Unit tests for the learned filters: LBF, SLBF and Ada-BF."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # the learned baselines train in numpy

from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
from repro.baselines.learned.lbf import LearnedBloomFilter
from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter
from repro.errors import ConfigurationError, ConstructionError
from repro.metrics.fpr import false_positive_rate

ALL_LEARNED = [LearnedBloomFilter, SandwichedLearnedBloomFilter, AdaptiveLearnedBloomFilter]


@pytest.fixture(scope="session")
def built_learned(small_shalla):
    """Build each learned filter once on the shared Shalla-like dataset."""
    total_bits = int(10 * small_shalla.num_positives)
    return {
        cls.algorithm_name: cls.build(
            positives=small_shalla.positives,
            negatives=small_shalla.negatives,
            total_bits=total_bits,
            seed=4,
        )
        for cls in ALL_LEARNED
    }


class TestConstructionValidation:
    @pytest.mark.parametrize("cls", ALL_LEARNED)
    def test_total_bits_must_be_positive(self, cls):
        with pytest.raises(ConfigurationError):
            cls(total_bits=0)

    @pytest.mark.parametrize("cls", ALL_LEARNED)
    def test_build_requires_both_classes(self, cls):
        with pytest.raises(ConstructionError):
            cls.build(positives=[], negatives=["n"], total_bits=1000)
        with pytest.raises(ConstructionError):
            cls.build(positives=["p"], negatives=[], total_bits=1000)

    @pytest.mark.parametrize("cls", ALL_LEARNED)
    def test_query_before_build_rejected(self, cls):
        filt = cls(total_bits=1000)
        with pytest.raises(ConstructionError):
            filt.contains("anything")

    def test_adabf_group_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLearnedBloomFilter(total_bits=1000, num_groups=1)


class TestZeroFalseNegatives:
    @pytest.mark.parametrize("name", ["LBF", "SLBF", "Ada-BF"])
    def test_all_positives_found(self, built_learned, small_shalla, name):
        filt = built_learned[name]
        missing = [key for key in small_shalla.positives if key not in filt]
        assert not missing, f"{name} produced {len(missing)} false negatives"


class TestAccuracy:
    @pytest.mark.parametrize("name", ["LBF", "SLBF", "Ada-BF"])
    def test_fpr_is_bounded(self, built_learned, small_shalla, name):
        fpr = false_positive_rate(built_learned[name], small_shalla.negatives)
        assert fpr < 0.25

    def test_structured_keys_help_lbf(self, small_shalla, small_ycsb):
        """The classifier should do better on Shalla-like keys than YCSB-like keys."""
        bits = 9
        shalla_lbf = LearnedBloomFilter.build(
            small_shalla.positives,
            small_shalla.negatives,
            total_bits=bits * small_shalla.num_positives,
            seed=4,
        )
        ycsb_lbf = LearnedBloomFilter.build(
            small_ycsb.positives,
            small_ycsb.negatives,
            total_bits=bits * small_ycsb.num_positives,
            seed=4,
        )
        shalla_fpr = false_positive_rate(shalla_lbf, small_shalla.negatives)
        ycsb_fpr = false_positive_rate(ycsb_lbf, small_ycsb.negatives)
        assert shalla_fpr <= ycsb_fpr + 0.02


class TestStructure:
    def test_lbf_exposes_threshold_and_backup(self, built_learned):
        lbf = built_learned["LBF"]
        assert 0.0 <= lbf.threshold <= 1.0
        assert lbf.model.is_trained
        assert lbf.size_in_bits() > 0

    def test_slbf_has_initial_filter(self, built_learned):
        slbf = built_learned["SLBF"]
        assert slbf.initial is not None
        assert slbf.initial.num_items > 0
        assert slbf.size_in_bits() > slbf.model.size_in_bits()

    def test_adabf_groups_are_monotonic(self, built_learned):
        adabf = built_learned["Ada-BF"]
        hashes = adabf.group_hashes
        assert len(hashes) == 4
        assert all(a >= b for a, b in zip(hashes, hashes[1:]))
        assert len(adabf.thresholds) == 3

    @pytest.mark.parametrize("name", ["LBF", "SLBF", "Ada-BF"])
    def test_size_accounting(self, built_learned, name):
        filt = built_learned[name]
        assert filt.size_in_bytes() == (filt.size_in_bits() + 7) // 8
