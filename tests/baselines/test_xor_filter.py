"""Unit tests for the Xor filter baseline."""

from __future__ import annotations

import pytest

from repro.baselines.xor_filter import XorFilter, fingerprint_bits_for_budget
from repro.errors import ConfigurationError


def make_keys(prefix, count):
    return [f"{prefix}#{i}" for i in range(count)]


class TestConstruction:
    def test_needs_keys(self):
        with pytest.raises(ConfigurationError):
            XorFilter([], fingerprint_bits=8)

    def test_invalid_fingerprint_bits(self):
        with pytest.raises(ConfigurationError):
            XorFilter(["a"], fingerprint_bits=0)
        with pytest.raises(ConfigurationError):
            XorFilter(["a"], fingerprint_bits=33)

    def test_duplicates_are_deduplicated(self):
        xor = XorFilter(["a", "b", "a", "b", "c"], fingerprint_bits=8)
        assert xor.num_keys == 3
        assert "a" in xor and "b" in xor and "c" in xor

    @pytest.mark.parametrize("count", [1, 2, 10, 500, 3000])
    def test_various_sizes_build(self, count):
        keys = make_keys("k", count)
        xor = XorFilter(keys, fingerprint_bits=8)
        assert all(key in xor for key in keys)


class TestMembership:
    def test_no_false_negatives(self):
        keys = make_keys("member", 2000)
        xor = XorFilter(keys, fingerprint_bits=8)
        assert all(xor.contains(key) for key in keys)

    def test_fpr_close_to_analytic(self):
        keys = make_keys("member", 2000)
        others = make_keys("other", 4000)
        xor = XorFilter(keys, fingerprint_bits=8)
        fpr = sum(1 for key in others if key in xor) / len(others)
        # Analytic FPR is 2^-8 ≈ 0.39%; allow a factor ~4 of sampling noise.
        assert fpr < 4 * xor.expected_fpr()

    def test_larger_fingerprints_reduce_fpr(self):
        keys = make_keys("member", 1500)
        others = make_keys("other", 3000)
        small = XorFilter(keys, fingerprint_bits=4)
        large = XorFilter(keys, fingerprint_bits=12)
        fpr_small = sum(1 for key in others if key in small) / len(others)
        fpr_large = sum(1 for key in others if key in large) / len(others)
        assert fpr_large <= fpr_small


class TestAccounting:
    def test_size_in_bits(self):
        keys = make_keys("k", 100)
        xor = XorFilter(keys, fingerprint_bits=8)
        assert xor.size_in_bits() >= int(1.23 * 100) * 8
        assert xor.size_in_bytes() == (xor.size_in_bits() + 7) // 8

    def test_expected_fpr(self):
        xor = XorFilter(["a"], fingerprint_bits=10)
        assert xor.expected_fpr() == pytest.approx(2 ** -10)

    def test_fingerprint_bits_for_budget(self):
        assert fingerprint_bits_for_budget(10.0, 1000) == int(10 / 1.23 + 32 / 1000)
        with pytest.raises(ConfigurationError):
            fingerprint_bits_for_budget(0, 10)

    def test_from_bits_per_key(self):
        keys = make_keys("k", 1000)
        xor = XorFilter.from_bits_per_key(keys, 10.0)
        assert xor.fingerprint_bits == fingerprint_bits_for_budget(10.0, 1000)
        assert all(key in xor for key in keys)
