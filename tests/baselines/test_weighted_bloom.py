"""Unit tests for the Weighted Bloom filter baseline."""

from __future__ import annotations

import pytest

from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.errors import ConfigurationError
from repro.metrics.fpr import weighted_fpr


def make_keys(prefix, count):
    return [f"{prefix}.{i}" for i in range(count)]


class TestConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            WeightedBloomFilter(num_bits=0, default_hashes=3)
        with pytest.raises(ConfigurationError):
            WeightedBloomFilter(num_bits=100, default_hashes=0)
        with pytest.raises(ConfigurationError):
            WeightedBloomFilter(num_bits=100, default_hashes=5, max_hashes=3)
        with pytest.raises(ConfigurationError):
            WeightedBloomFilter(num_bits=100, default_hashes=3, cache_fraction=1.5)

    def test_build_requires_positives(self):
        with pytest.raises(ConfigurationError):
            WeightedBloomFilter.build(positives=[], negatives=["x"])

    def test_cache_populated_from_expensive_negatives(self):
        positives = make_keys("p", 300)
        negatives = make_keys("n", 300)
        costs = {key: float(i) for i, key in enumerate(negatives)}
        wbf = WeightedBloomFilter.build(
            positives, negatives, costs, bits_per_key=10, cache_fraction=0.1
        )
        assert wbf.cache_size == 30
        most_expensive = negatives[-1]
        cheapest = negatives[0]
        assert wbf.cached_hashes(most_expensive) is not None
        assert wbf.cached_hashes(most_expensive) > wbf.default_hashes
        assert wbf.cached_hashes(cheapest) is None


class TestMembership:
    def test_no_false_negatives(self):
        positives = make_keys("p", 1000)
        negatives = make_keys("n", 1000)
        costs = {key: 1.0 + (i % 7) for i, key in enumerate(negatives)}
        wbf = WeightedBloomFilter.build(positives, negatives, costs, bits_per_key=10)
        assert all(key in wbf for key in positives)

    def test_expensive_negatives_get_better_protection(self):
        positives = make_keys("p", 2000)
        negatives = make_keys("n", 2000)
        # Top 10% of negatives carry huge costs.
        costs = {key: (500.0 if i % 10 == 0 else 1.0) for i, key in enumerate(negatives)}
        wbf = WeightedBloomFilter.build(
            positives, negatives, costs, bits_per_key=6, cache_fraction=0.1
        )
        plain = WeightedBloomFilter.build(
            positives, [], {}, bits_per_key=6, cache_fraction=0.0
        )
        assert weighted_fpr(wbf, negatives, costs) <= weighted_fpr(plain, negatives, costs)

    def test_uncached_keys_use_default_hashes(self):
        wbf = WeightedBloomFilter(num_bits=1000, default_hashes=4)
        wbf.add("present")
        assert "present" in wbf
        assert wbf.cached_hashes("present") is None


class TestAccounting:
    def test_sizes(self):
        positives = make_keys("p", 100)
        wbf = WeightedBloomFilter.build(positives, total_bits=1000)
        assert wbf.size_in_bits() == 1000
        assert wbf.size_in_bytes() == 125

    def test_cache_memory_accounted_separately(self):
        positives = make_keys("p", 200)
        negatives = make_keys("n", 200)
        costs = {key: float(i) for i, key in enumerate(negatives)}
        wbf = WeightedBloomFilter.build(positives, negatives, costs, bits_per_key=8)
        assert wbf.cache_size_in_bytes() > 0
        no_cache = WeightedBloomFilter.build(positives, [], {}, bits_per_key=8)
        assert no_cache.cache_size_in_bytes() == 0
