"""Unit tests for the KeyScoreModel classifier."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.baselines.learned.model import KeyScoreModel
from repro.errors import ConfigurationError


class TestConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            KeyScoreModel(num_features=4)
        with pytest.raises(ConfigurationError):
            KeyScoreModel(ngram_sizes=())
        with pytest.raises(ConfigurationError):
            KeyScoreModel(epochs=0)

    def test_fit_requires_both_classes(self):
        model = KeyScoreModel()
        with pytest.raises(ConfigurationError):
            model.fit([], ["n"])
        with pytest.raises(ConfigurationError):
            model.fit(["p"], [])

    def test_size_in_bits(self):
        model = KeyScoreModel(num_features=128, weight_bits=32)
        assert model.size_in_bits() == (128 + 1) * 32


class TestTraining:
    def test_separates_structured_classes(self, small_shalla):
        """URLs with category structure should be classified well above chance."""
        dataset = small_shalla
        model = KeyScoreModel(num_features=256, epochs=40, seed=2)
        model.fit(dataset.positives, dataset.negatives)
        assert model.is_trained
        accuracy = model.accuracy(dataset.positives, dataset.negatives)
        assert accuracy > 0.8

    def test_struggles_on_unstructured_keys(self, small_ycsb):
        """YCSB-style keys carry no signal, so accuracy stays near chance."""
        dataset = small_ycsb
        model = KeyScoreModel(num_features=256, epochs=30, seed=2)
        model.fit(dataset.positives, dataset.negatives)
        accuracy = model.accuracy(dataset.positives, dataset.negatives)
        assert accuracy < 0.7

    def test_scores_are_probabilities(self, small_shalla):
        model = KeyScoreModel(num_features=128, epochs=10, seed=2)
        model.fit(small_shalla.positives[:200], small_shalla.negatives[:200])
        scores = model.scores(small_shalla.positives[:50])
        assert scores.shape == (50,)
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)

    def test_deterministic_given_seed(self, small_shalla):
        kwargs = dict(num_features=64, epochs=5, seed=9)
        a = KeyScoreModel(**kwargs).fit(small_shalla.positives[:100], small_shalla.negatives[:100])
        b = KeyScoreModel(**kwargs).fit(small_shalla.positives[:100], small_shalla.negatives[:100])
        key = small_shalla.positives[0]
        assert a.score(key) == pytest.approx(b.score(key))

    def test_empty_scores(self):
        model = KeyScoreModel()
        assert model.scores([]).shape == (0,)

    def test_score_single_key_matches_batch(self, small_shalla):
        model = KeyScoreModel(num_features=64, epochs=5, seed=9)
        model.fit(small_shalla.positives[:100], small_shalla.negatives[:100])
        key = small_shalla.negatives[0]
        assert model.score(key) == pytest.approx(float(model.scores([key])[0]))
