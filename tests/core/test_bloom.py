"""Unit tests for the standard Bloom filter."""

from __future__ import annotations

import pytest

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.errors import ConfigurationError
from repro.hashing.double_hashing import DoubleHashFamily
from repro.hashing.registry import build_family


class TestOptimalNumHashes:
    def test_ln2_rule(self):
        assert optimal_num_hashes(10) == 7
        assert optimal_num_hashes(8) == 6
        assert optimal_num_hashes(1) == 1

    def test_minimum_is_one(self):
        assert optimal_num_hashes(0.5) == 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            optimal_num_hashes(0)


class TestConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=0, num_hashes=3)
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=100, num_hashes=0)
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=100, num_hashes=23)  # larger than Table II

    def test_selection_length_must_match(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=100, num_hashes=3, selection=[0, 1])

    def test_custom_family(self):
        family = build_family(["fnv", "djb", "sdbm"])
        bloom = BloomFilter(num_bits=128, num_hashes=2, family=family)
        assert bloom.family is family
        assert bloom.initial_selection == [0, 1]

    def test_double_hash_family(self):
        family = DoubleHashFamily(size=4)
        bloom = BloomFilter(num_bits=256, num_hashes=4, family=family)
        bloom.add("key")
        assert bloom.contains("key")


class TestMembership:
    def test_no_false_negatives(self, tiny_keys):
        bloom = BloomFilter(num_bits=1024, num_hashes=4)
        bloom.add_all(tiny_keys)
        assert all(bloom.contains(key) for key in tiny_keys)
        assert all(key in bloom for key in tiny_keys)

    def test_empty_filter_rejects_everything(self, tiny_keys):
        bloom = BloomFilter(num_bits=1024, num_hashes=4)
        assert not any(bloom.contains(key) for key in tiny_keys)

    def test_fpr_is_reasonable(self):
        positives = [f"member-{i}" for i in range(1000)]
        negatives = [f"other-{i}" for i in range(2000)]
        bloom = BloomFilter(num_bits=10_000, num_hashes=7)
        bloom.add_all(positives)
        false_positives = sum(1 for key in negatives if key in bloom)
        # Analytic FPR at 10 bits/key, k=7 is ~0.8%; allow generous headroom.
        assert false_positives / len(negatives) < 0.05

    def test_expected_fpr_tracks_load(self):
        bloom = BloomFilter(num_bits=1000, num_hashes=4)
        assert bloom.expected_fpr() == 0.0
        bloom.add_all(f"k{i}" for i in range(100))
        mid = bloom.expected_fpr()
        bloom.add_all(f"j{i}" for i in range(400))
        assert bloom.expected_fpr() > mid > 0.0

    def test_int_and_bytes_keys(self):
        bloom = BloomFilter(num_bits=512, num_hashes=3)
        bloom.add(12345)
        bloom.add(b"\x00\x01binary")
        assert 12345 in bloom
        assert b"\x00\x01binary" in bloom


class TestSelections:
    def test_contains_with_alternate_selection(self):
        bloom = BloomFilter(num_bits=2048, num_hashes=3)
        bloom.add_with_selection("special", [5, 6, 7])
        assert bloom.contains_with_selection("special", [5, 6, 7])
        # With an untouched, very sparse filter the default H0 should miss.
        assert not bloom.contains("special")

    def test_bit_positions_match_selection(self):
        bloom = BloomFilter(num_bits=997, num_hashes=3)
        default_positions = bloom.bit_positions("k")
        explicit = bloom.bit_positions("k", bloom.initial_selection)
        assert default_positions == explicit
        assert len(default_positions) == 3
        assert all(0 <= p < 997 for p in default_positions)

    def test_set_and_clear_position(self):
        bloom = BloomFilter(num_bits=64, num_hashes=2)
        bloom.set_position(10)
        assert bloom.bits.test(10)
        bloom.clear_position(10)
        assert not bloom.bits.test(10)


class TestAccounting:
    def test_sizes(self):
        bloom = BloomFilter(num_bits=100, num_hashes=2)
        assert bloom.size_in_bits() == 100
        assert bloom.size_in_bytes() == 13
        assert bloom.num_bits == 100
        assert bloom.num_hashes == 2

    def test_num_items(self):
        bloom = BloomFilter(num_bits=100, num_hashes=2)
        bloom.add_all(["a", "b", "c"])
        assert bloom.num_items == 3

    def test_fill_ratio_increases(self):
        bloom = BloomFilter(num_bits=100, num_hashes=2)
        before = bloom.fill_ratio()
        bloom.add("x")
        assert bloom.fill_ratio() > before
