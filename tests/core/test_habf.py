"""Unit tests for HABF and FastHABF."""

from __future__ import annotations

import pytest

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.habf import HABF, FastHABF
from repro.core.params import HABFParams
from repro.errors import ConfigurationError, ConstructionError
from repro.metrics.fpr import false_positive_rate, weighted_fpr


def make_keys(prefix, count):
    return [f"{prefix}:{i}" for i in range(count)]


class TestConstruction:
    def test_build_requires_positives(self):
        with pytest.raises(ConstructionError):
            HABF.build(positives=[], negatives=["x"])

    def test_disjointness_enforced(self):
        with pytest.raises(ConstructionError):
            HABF.build(positives=["a", "b"], negatives=["b", "c"], bits_per_key=16)

    def test_double_fit_rejected(self):
        habf = HABF.build(positives=make_keys("p", 50), negatives=make_keys("n", 50), bits_per_key=12)
        with pytest.raises(ConstructionError):
            habf.fit(make_keys("p", 50))

    def test_k_cannot_exceed_family(self):
        params = HABFParams(total_bits=10_000, k=3)
        HABF(params)  # fine
        with pytest.raises(ConfigurationError):
            HABF(HABFParams(total_bits=10_000, k=23))

    def test_params_derived_from_bits_per_key(self):
        positives = make_keys("p", 300)
        habf = HABF.build(positives, make_keys("n", 300), bits_per_key=9.0)
        assert habf.params.total_bits == pytest.approx(9 * 300, abs=1)

    def test_zero_delta_degenerates_to_bloom(self):
        positives = make_keys("p", 300)
        negatives = make_keys("n", 300)
        params = HABFParams(total_bits=3000, delta=0.0)
        habf = HABF.build(positives, negatives, params=params)
        assert habf.expressor is None
        assert all(key in habf for key in positives)

    def test_no_negatives_still_builds(self):
        positives = make_keys("p", 200)
        habf = HABF.build(positives, negatives=[], bits_per_key=10)
        assert all(key in habf for key in positives)
        assert habf.construction_stats.initial_collisions == 0


class TestZeroFalseNegatives:
    @pytest.mark.parametrize("bits_per_key", [6.0, 8.0, 12.0])
    def test_all_positives_found(self, bits_per_key):
        positives = make_keys("member", 1000)
        negatives = make_keys("outsider", 1000)
        habf = HABF.build(positives, negatives, bits_per_key=bits_per_key)
        assert all(key in habf for key in positives)

    def test_fast_habf_has_no_false_negatives(self):
        positives = make_keys("member", 800)
        negatives = make_keys("outsider", 800)
        fast = FastHABF.build(positives, negatives, bits_per_key=8.0)
        assert all(key in fast for key in positives)

    def test_contains_many_matches_contains(self):
        positives = make_keys("p", 100)
        negatives = make_keys("n", 100)
        habf = HABF.build(positives, negatives, bits_per_key=10)
        sample = positives[:10] + negatives[:10]
        assert habf.contains_many(sample) == [habf.contains(k) for k in sample]


class TestAccuracy:
    def test_beats_equal_space_bloom_filter(self, small_shalla):
        """The headline claim: at equal space, HABF has fewer false positives."""
        dataset = small_shalla
        total_bits = int(8 * dataset.num_positives)
        params = HABFParams(total_bits=total_bits, seed=3)
        habf = HABF.build(dataset.positives, dataset.negatives, params=params)
        bloom = BloomFilter(num_bits=total_bits, num_hashes=optimal_num_hashes(8))
        bloom.add_all(dataset.positives)
        habf_fpr = false_positive_rate(habf, dataset.negatives)
        bloom_fpr = false_positive_rate(bloom, dataset.negatives)
        assert habf_fpr < bloom_fpr

    def test_cost_awareness_lowers_weighted_fpr(self, small_shalla, skewed_costs):
        """Supplying skewed costs must protect the expensive keys specifically."""
        dataset = small_shalla
        total_bits = int(7 * dataset.num_positives)
        aware = HABF.build(
            dataset.positives,
            dataset.negatives,
            costs=skewed_costs,
            params=HABFParams(total_bits=total_bits, seed=3),
        )
        weighted = weighted_fpr(aware, dataset.negatives, skewed_costs)
        unweighted = false_positive_rate(aware, dataset.negatives)
        # The weighted FPR should not exceed the unweighted one when the
        # optimiser explicitly protects the heavy keys first.
        assert weighted <= unweighted + 1e-9

    def test_fast_habf_trades_accuracy_for_speed(self, small_shalla):
        dataset = small_shalla
        total_bits = int(8 * dataset.num_positives)
        params = HABFParams(total_bits=total_bits, seed=3)
        habf = HABF.build(dataset.positives, dataset.negatives, params=params)
        fast = FastHABF.build(dataset.positives, dataset.negatives, params=params)
        habf_fpr = false_positive_rate(habf, dataset.negatives)
        fast_fpr = false_positive_rate(fast, dataset.negatives)
        bloom = BloomFilter(num_bits=total_bits, num_hashes=optimal_num_hashes(8))
        bloom.add_all(dataset.positives)
        bloom_fpr = false_positive_rate(bloom, dataset.negatives)
        # f-HABF sits between HABF and the plain Bloom filter (with slack for noise).
        assert fast_fpr <= bloom_fpr
        assert habf_fpr <= fast_fpr + 0.01


class TestAccounting:
    def test_size_within_budget(self):
        positives = make_keys("p", 500)
        negatives = make_keys("n", 500)
        params = HABFParams(total_bits=5000)
        habf = HABF.build(positives, negatives, params=params)
        assert habf.size_in_bits() <= params.total_bits
        assert habf.size_in_bytes() == (habf.size_in_bits() + 7) // 8

    def test_construction_stats_exposed(self):
        positives = make_keys("p", 400)
        negatives = make_keys("n", 400)
        habf = HABF.build(positives, negatives, bits_per_key=7)
        stats = habf.construction_stats
        assert stats is not None
        assert stats.num_positive == 400
        assert stats.num_negative == 400

    def test_algorithm_names(self):
        assert HABF.algorithm_name == "HABF"
        assert FastHABF.algorithm_name == "f-HABF"

    def test_repr_mentions_components(self):
        habf = HABF.build(make_keys("p", 50), make_keys("n", 50), bits_per_key=12)
        text = repr(habf)
        assert "HABF" in text and "k=" in text
